//! The cross-validation harness of §5: leave-one-source-as-universe.
//!
//! "We consider a particular source *i* as the 'universe' of possible IPv4
//! addresses. We apply CR to the addresses/subnets in *i* that are also in
//! the other k−1 sources, to estimate the number of individuals unique to
//! source *i*. Since we know the true number of individuals unique to *i*,
//! we can evaluate the effectiveness of CR."
//!
//! Drives Table 3 (RMSE/MAE over model-selection settings) and Fig 3 (per
//! source normalised estimate ranges for one window).
//!
//! Two entry points:
//!
//! * [`cross_validate_window`] — one window, one granularity, sequential.
//!   Infallible: each held-out source lands in `results`, `skipped`
//!   (structurally impossible, e.g. too few remaining sources) or `failed`
//!   (a genuine fit failure) of the returned [`CvReport`].
//! * [`cross_validate_batch`] — every (window × granularity × held-out
//!   source) cell as one flat work list through the deterministic parallel
//!   engine; per-cell worker panics are isolated into `failed`.

use ghosts_core::ci::EstimateRange;
use ghosts_core::{
    estimate_table, estimate_table_with_range, ContingencyTable, CrConfig, EstimateError,
    Parallelism,
};
use ghosts_net::{AddrSet, SubnetSet};
use ghosts_pipeline::dataset::WindowData;
use ghosts_pipeline::time::TimeWindow;
use ghosts_stats::summary::{mae, rmse};

/// Which identifier population to cross-validate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    /// Individual IPv4 addresses.
    Addresses,
    /// /24 subnets.
    Subnets,
}

impl Granularity {
    /// A stable lowercase label for tables and trace events.
    pub fn label(self) -> &'static str {
        match self {
            Granularity::Addresses => "addresses",
            Granularity::Subnets => "subnets",
        }
    }
}

/// Cross-validation outcome for one held-out source.
#[derive(Debug, Clone)]
pub struct CrossValResult {
    /// The held-out source's name.
    pub source: String,
    /// `|i|` — the true universe size (all individuals of source *i*).
    pub truth: u64,
    /// Individuals of *i* seen by at least one other source.
    pub observed_by_others: u64,
    /// Individuals of *i* seen by the ICMP census among the other sources
    /// (the "Obs ping" bar of Fig 3); `None` when IPING is held out or
    /// absent from the window.
    pub observed_by_ping: Option<u64>,
    /// The CR estimate of `|i|`.
    pub estimate: f64,
    /// Profile-likelihood range, when requested.
    pub range: Option<EstimateRange>,
}

impl CrossValResult {
    /// Signed estimation error `estimate − truth`.
    pub fn error(&self) -> f64 {
        self.estimate - self.truth as f64
    }
}

/// A held-out source that was structurally impossible to estimate —
/// removing it left fewer than two observing sources. Not a failure: the
/// experiment simply does not apply to this cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CvSkip {
    /// The held-out source's name.
    pub source: String,
    /// How many sources remained after holding it out.
    pub remaining: usize,
}

/// A held-out source whose estimate genuinely failed (fit/selection/CI
/// error, or a worker panic in the batched engine).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CvFailure {
    /// The held-out source's name.
    pub source: String,
    /// The error's stable class label (`fit`, `ci`, `panic`, …).
    pub kind: String,
    /// Human-readable error description.
    pub error: String,
}

/// Everything one window × granularity cross-validation produced. The
/// three buckets are disjoint and cover every source of the window:
/// `results.len() + skipped.len() + failed.len() == sources`.
#[derive(Debug, Clone, Default)]
pub struct CvReport {
    /// Sources successfully estimated.
    pub results: Vec<CrossValResult>,
    /// Sources whose cell was structurally impossible (not enough
    /// remaining sources) — previously conflated with `failed`.
    pub skipped: Vec<CvSkip>,
    /// Sources whose estimate failed outright.
    pub failed: Vec<CvFailure>,
}

impl CvReport {
    /// Whether every source produced an estimate.
    pub fn is_complete(&self) -> bool {
        self.skipped.is_empty() && self.failed.is_empty()
    }

    /// Aggregate RMSE/MAE over the successful results, `None` when none
    /// succeeded.
    pub fn errors(&self) -> Option<CvErrors> {
        if self.results.is_empty() {
            None
        } else {
            Some(aggregate_errors(&self.results))
        }
    }
}

/// The inputs of one held-out-source estimation, assembled up front so the
/// expensive part can run on any worker thread.
struct CvCellInput {
    source: String,
    table: ContingencyTable,
    truth: u64,
    observed_by_others: u64,
    observed_by_ping: Option<u64>,
}

/// Builds the restricted table for held-out source `i`: the other sources
/// intersected with `i`'s universe.
fn build_cell(
    data: &WindowData,
    subnet_sets: &[SubnetSet],
    i: usize,
    granularity: Granularity,
) -> CvCellInput {
    let names: Vec<&str> = data.sources.iter().map(|s| s.name.as_str()).collect();
    let name = names[i];
    let (table, truth, observed_by_others, observed_by_ping) = match granularity {
        Granularity::Addresses => {
            let universe: &AddrSet = &data.sources[i].addrs;
            let restricted: Vec<AddrSet> = data
                .sources
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, s)| s.addrs.intersect(universe))
                .collect();
            let refs: Vec<&AddrSet> = restricted.iter().collect();
            let table = ContingencyTable::from_addr_sets(&refs);
            let observed = table.observed_total();
            let ping = names
                .iter()
                .position(|n| *n == "IPING" && *n != name)
                .map(|j| data.sources[j].addrs.intersection_count(universe));
            (table, universe.len(), observed, ping)
        }
        Granularity::Subnets => {
            let universe = &subnet_sets[i];
            let restricted: Vec<SubnetSet> = subnet_sets
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, s)| s.intersect(universe))
                .collect();
            let refs: Vec<&SubnetSet> = restricted.iter().collect();
            let table = ContingencyTable::from_subnet_sets(&refs);
            let observed = table.observed_total();
            let ping = names
                .iter()
                .position(|n| *n == "IPING" && *n != name)
                .map(|j| subnet_sets[j].intersection_count(universe));
            (table, universe.len(), observed, ping)
        }
    };
    CvCellInput {
        source: name.to_string(),
        table,
        truth,
        observed_by_others,
        observed_by_ping,
    }
}

/// Estimates one prepared cell. The truncation limit is the held-out
/// universe size itself — finite and known, the ideal case for the
/// right-truncated cells.
fn estimate_cell(
    input: &CvCellInput,
    cfg: &CrConfig,
    with_ranges: bool,
) -> Result<CrossValResult, EstimateError> {
    let limit = Some(input.truth);
    let (estimate, range) = if with_ranges {
        let (est, range) = estimate_table_with_range(&input.table, limit, cfg)?;
        (est.total, Some(range))
    } else {
        (estimate_table(&input.table, limit, cfg)?.total, None)
    };
    Ok(CrossValResult {
        source: input.source.clone(),
        truth: input.truth,
        observed_by_others: input.observed_by_others,
        observed_by_ping: input.observed_by_ping,
        estimate,
        range,
    })
}

/// Routes one cell outcome into the right report bucket.
fn file_outcome(
    report: &mut CvReport,
    source: &str,
    remaining: usize,
    outcome: Result<CrossValResult, EstimateError>,
) {
    match outcome {
        Ok(r) => report.results.push(r),
        Err(EstimateError::NotEnoughSources { .. }) => report.skipped.push(CvSkip {
            source: source.to_string(),
            remaining,
        }),
        Err(e) => report.failed.push(CvFailure {
            source: source.to_string(),
            kind: e.kind().to_string(),
            error: e.to_string(),
        }),
    }
}

/// Runs leave-one-out cross-validation over every source of a window.
///
/// For each held-out source *i*, the other sources are intersected with
/// *i* and CR estimates `|i|`. `with_ranges` additionally computes
/// profile-likelihood ranges (significantly more expensive). Infallible:
/// a source whose cell cannot be estimated lands in `skipped` (too few
/// remaining sources) or `failed` (a genuine fit failure) instead of
/// aborting the whole window.
pub fn cross_validate_window(
    data: &WindowData,
    granularity: Granularity,
    cfg: &CrConfig,
    with_ranges: bool,
) -> CvReport {
    // Pre-project subnet sets once if needed.
    let subnet_sets: Vec<SubnetSet> = if granularity == Granularity::Subnets {
        data.sources.iter().map(|s| s.subnets()).collect()
    } else {
        Vec::new()
    };
    let remaining = data.sources.len().saturating_sub(1);
    let mut report = CvReport::default();
    for i in 0..data.sources.len() {
        let input = build_cell(data, &subnet_sets, i, granularity);
        let outcome = estimate_cell(&input, cfg, with_ranges);
        file_outcome(&mut report, &input.source, remaining, outcome);
    }
    report
}

/// One (window × granularity) cell of a batched cross-validation run.
#[derive(Debug, Clone)]
pub struct CvCell {
    /// Index of the window in the batch's input order.
    pub window_index: usize,
    /// The window itself.
    pub window: TimeWindow,
    /// The identifier population cross-validated.
    pub granularity: Granularity,
    /// The per-source report for this cell.
    pub report: CvReport,
}

/// The full result of a batched run: one [`CvCell`] per (window ×
/// granularity), in `windows`-major, `granularities`-minor input order —
/// independent of which workers computed what.
#[derive(Debug, Clone)]
pub struct CvBatchReport {
    /// All cells, in deterministic input order.
    pub cells: Vec<CvCell>,
}

impl CvBatchReport {
    /// Aggregate RMSE/MAE per cell (the Table 3 layout), skipping cells
    /// with no successful results.
    pub fn error_table(&self) -> Vec<(TimeWindow, Granularity, CvErrors)> {
        self.cells
            .iter()
            .filter_map(|c| c.report.errors().map(|e| (c.window, c.granularity, e)))
            .collect()
    }

    /// Totals over every cell: (results, skipped, failed).
    pub fn totals(&self) -> (usize, usize, usize) {
        self.cells.iter().fold((0, 0, 0), |acc, c| {
            (
                acc.0 + c.report.results.len(),
                acc.1 + c.report.skipped.len(),
                acc.2 + c.report.failed.len(),
            )
        })
    }
}

/// Runs every (window × held-out source × granularity) cell of a batch
/// concurrently through the deterministic parallel engine.
///
/// The flat work list is scheduled with [`ghosts_core::try_par_map`]:
/// worker panics are isolated per cell (they land in the owning report's
/// `failed` bucket as kind `panic`) and results are merged in input order,
/// so the report is bit-identical at every thread count. When the outer
/// fan-out is parallel the inner model-selection search is forced
/// sequential — nested parallelism would oversubscribe without changing
/// any result.
pub fn cross_validate_batch<W: std::borrow::Borrow<WindowData>>(
    windows: &[W],
    granularities: &[Granularity],
    cfg: &CrConfig,
    with_ranges: bool,
) -> CvBatchReport {
    // Assemble the flat work list up front (cheap set intersections), then
    // fan out the expensive estimation. Accepting `Borrow<WindowData>`
    // lets callers hand over `&[WindowData]` or cached `&[Arc<WindowData>]`
    // without deep-copying the address sets.
    let mut inputs: Vec<(usize, usize, usize, CvCellInput)> = Vec::new();
    for (w, data) in windows.iter().map(W::borrow).enumerate() {
        for (g, &granularity) in granularities.iter().enumerate() {
            let subnet_sets: Vec<SubnetSet> = if granularity == Granularity::Subnets {
                data.sources.iter().map(|s| s.subnets()).collect()
            } else {
                Vec::new()
            };
            for i in 0..data.sources.len() {
                inputs.push((w, g, i, build_cell(data, &subnet_sets, i, granularity)));
            }
        }
    }

    let mut inner = cfg.clone();
    if cfg.parallelism.threads() > 1 && inputs.len() > 1 {
        inner.selection.parallelism = Parallelism::SEQUENTIAL;
    }
    let outcomes = ghosts_core::try_par_map(cfg.parallelism, &inputs, |idx, item| {
        let (w, _, _, input) = item;
        let mut cell_cfg = inner.clone();
        cell_cfg.obs = cfg
            .obs
            .child_idx("cv_window", *w as u64)
            .child_idx("cv_cell", idx as u64);
        estimate_cell(input, &cell_cfg, with_ranges)
    });
    cfg.obs
        .volatile_add("crossval.par_map_tasks", inputs.len() as u64);
    cfg.obs.volatile_max(
        "crossval.par_map_workers",
        cfg.parallelism.threads().min(inputs.len().max(1)) as u64,
    );

    // Deterministic reassembly in (window, granularity) input order.
    let mut cells: Vec<CvCell> = Vec::with_capacity(windows.len() * granularities.len());
    for (w, data) in windows.iter().map(W::borrow).enumerate() {
        for &granularity in granularities {
            cells.push(CvCell {
                window_index: w,
                window: data.window,
                granularity,
                report: CvReport::default(),
            });
        }
    }
    for ((w, g, _i, input), outcome) in inputs.iter().zip(outcomes) {
        let remaining = W::borrow(&windows[*w]).sources.len().saturating_sub(1);
        let cell = &mut cells[w * granularities.len() + g];
        match outcome {
            Ok(result) => file_outcome(&mut cell.report, &input.source, remaining, result),
            Err(panic) => cell.report.failed.push(CvFailure {
                source: input.source.clone(),
                kind: "panic".to_string(),
                error: panic,
            }),
        }
    }
    let batch = CvBatchReport { cells };
    if cfg.obs.is_enabled() {
        for cell in &batch.cells {
            let (ok, skipped, failed) = (
                cell.report.results.len(),
                cell.report.skipped.len(),
                cell.report.failed.len(),
            );
            let mut fields = vec![
                (
                    "window",
                    ghosts_obs::FieldValue::U64(cell.window_index as u64),
                ),
                (
                    "granularity",
                    ghosts_obs::FieldValue::Str(cell.granularity.label().to_string()),
                ),
                ("ok", ghosts_obs::FieldValue::U64(ok as u64)),
                ("skipped", ghosts_obs::FieldValue::U64(skipped as u64)),
                ("failed", ghosts_obs::FieldValue::U64(failed as u64)),
            ];
            if let Some(e) = cell.report.errors() {
                fields.push(("rmse", ghosts_obs::FieldValue::F64(e.rmse)));
                fields.push(("mae", ghosts_obs::FieldValue::F64(e.mae)));
            }
            cfg.obs.reliability("cv_cell", &fields);
        }
    }
    batch
}

/// Aggregate errors over many CV results (a cell of Table 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CvErrors {
    /// Root mean square error of the estimates against the truths.
    pub rmse: f64,
    /// Mean absolute error.
    pub mae: f64,
    /// Number of (source, window) cases aggregated.
    pub cases: usize,
}

/// Computes RMSE/MAE over a batch of results.
///
/// # Panics
///
/// Panics on an empty batch.
pub fn aggregate_errors(results: &[CrossValResult]) -> CvErrors {
    assert!(!results.is_empty(), "no CV results to aggregate");
    let pred: Vec<f64> = results.iter().map(|r| r.estimate).collect();
    let truth: Vec<f64> = results.iter().map(|r| r.truth as f64).collect();
    CvErrors {
        rmse: rmse(&pred, &truth),
        mae: mae(&pred, &truth),
        cases: results.len(),
    }
}

/// Baseline errors if one simply used the observed count as the estimate —
/// the comparison that shows CR is worth its complexity (§5.3).
pub fn observed_baseline_errors(results: &[CrossValResult]) -> CvErrors {
    assert!(!results.is_empty(), "no CV results to aggregate");
    let pred: Vec<f64> = results
        .iter()
        .map(|r| r.observed_by_others as f64)
        .collect();
    let truth: Vec<f64> = results.iter().map(|r| r.truth as f64).collect();
    CvErrors {
        rmse: rmse(&pred, &truth),
        mae: mae(&pred, &truth),
        cases: results.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghosts_pipeline::dataset::SourceDataset;
    use ghosts_pipeline::time::{Quarter, TimeWindow};
    use ghosts_stats::rng::component_rng;
    use rand::Rng;

    /// Builds a window with `k` synthetic heterogeneous sources over a
    /// known universe of `n` addresses.
    fn synthetic_window_k(n: u32, seed: u64, k: usize) -> WindowData {
        let mut rng = component_rng(seed, "cv-test");
        let mut sources: Vec<AddrSet> = (0..k).map(|_| AddrSet::new()).collect();
        for addr in 0..n {
            let sociable = rng.gen_bool(0.5);
            for set in sources.iter_mut() {
                let p = if sociable { 0.55 } else { 0.20 };
                if rng.gen_bool(p) {
                    // Stride 61 spreads the universe over many /24s so the
                    // subnet-granularity tables are not degenerate.
                    set.insert(addr * 61 + 0x0100_0000);
                }
            }
        }
        WindowData {
            window: TimeWindow {
                start: Quarter(0),
                len: 4,
            },
            sources: sources
                .into_iter()
                .enumerate()
                .map(|(i, s)| SourceDataset::new(format!("S{i}"), s, true))
                .collect(),
        }
    }

    fn synthetic_window(n: u32, seed: u64) -> WindowData {
        synthetic_window_k(n, seed, 4)
    }

    fn cfg() -> CrConfig {
        CrConfig {
            min_stratum_observed: 0,
            ..CrConfig::paper()
        }
    }

    #[test]
    fn cv_estimates_beat_observed_baseline() {
        let data = synthetic_window(8_000, 3);
        let report = cross_validate_window(&data, Granularity::Addresses, &cfg(), false);
        assert!(report.is_complete());
        assert_eq!(report.results.len(), 4);
        let cr = aggregate_errors(&report.results);
        let baseline = observed_baseline_errors(&report.results);
        assert!(
            cr.mae < baseline.mae,
            "CR MAE {} should beat observed MAE {}",
            cr.mae,
            baseline.mae
        );
        assert!(cr.rmse < baseline.rmse);
    }

    #[test]
    fn cv_truth_and_observed_consistent() {
        let data = synthetic_window(3_000, 5);
        let report = cross_validate_window(&data, Granularity::Addresses, &cfg(), false);
        for r in &report.results {
            assert!(r.observed_by_others <= r.truth);
            assert!(r.estimate >= r.observed_by_others as f64 - 1e-9);
            // Truncation by the universe size keeps estimates plausible.
            assert!(r.estimate <= r.truth as f64 + 1e-9);
        }
    }

    #[test]
    fn cv_with_ranges_brackets_estimates() {
        let data = synthetic_window(2_000, 7);
        let report = cross_validate_window(&data, Granularity::Addresses, &cfg(), true);
        assert!(report.is_complete());
        for r in &report.results {
            let range = r.range.expect("ranges requested");
            assert!(range.lower <= r.estimate + 1e-6);
            assert!(range.upper >= r.estimate - 1e-6);
        }
    }

    #[test]
    fn subnet_granularity_runs() {
        let data = synthetic_window(4_000, 9);
        let report = cross_validate_window(&data, Granularity::Subnets, &cfg(), false);
        // All test addresses share few /24s, so truths are small but the
        // machinery must hold together.
        for r in &report.results {
            assert!(r.truth > 0);
            assert!(r.estimate.is_finite());
        }
    }

    #[test]
    fn two_source_window_is_skipped_not_failed() {
        // Holding one of two sources out leaves a single source: CR is
        // structurally impossible, so every cell must be a skip.
        let data = synthetic_window_k(1_000, 11, 2);
        let report = cross_validate_window(&data, Granularity::Addresses, &cfg(), false);
        assert!(report.results.is_empty());
        assert!(report.failed.is_empty(), "skips must not read as failures");
        assert_eq!(report.skipped.len(), 2);
        for s in &report.skipped {
            assert_eq!(s.remaining, 1);
        }
    }

    #[test]
    fn batch_matches_sequential_and_is_thread_invariant() {
        let windows: Vec<WindowData> = vec![
            synthetic_window(2_000, 21),
            synthetic_window(2_500, 22),
            synthetic_window_k(1_500, 23, 2), // all-skip window
        ];
        let grans = [Granularity::Addresses, Granularity::Subnets];
        let sequential = CrConfig {
            parallelism: Parallelism::SEQUENTIAL,
            ..cfg()
        };
        let parallel = CrConfig {
            parallelism: Parallelism::Fixed(4),
            ..cfg()
        };
        let a = cross_validate_batch(&windows, &grans, &sequential, false);
        let b = cross_validate_batch(&windows, &grans, &parallel, false);
        assert_eq!(a.cells.len(), windows.len() * grans.len());
        assert_eq!(a.cells.len(), b.cells.len());
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca.window_index, cb.window_index);
            assert_eq!(ca.granularity, cb.granularity);
            assert_eq!(ca.report.skipped, cb.report.skipped);
            assert_eq!(ca.report.failed, cb.report.failed);
            assert_eq!(ca.report.results.len(), cb.report.results.len());
            for (ra, rb) in ca.report.results.iter().zip(&cb.report.results) {
                assert_eq!(ra.source, rb.source);
                assert_eq!(
                    ra.estimate.to_bits(),
                    rb.estimate.to_bits(),
                    "bit-identical"
                );
            }
        }
        // Per-window sequential runs agree with the batch.
        for (w, data) in windows.iter().enumerate() {
            for (g, &gran) in grans.iter().enumerate() {
                let solo = cross_validate_window(data, gran, &sequential, false);
                let cell = &a.cells[w * grans.len() + g];
                assert_eq!(solo.results.len(), cell.report.results.len());
                for (rs, rc) in solo.results.iter().zip(&cell.report.results) {
                    assert_eq!(rs.estimate.to_bits(), rc.estimate.to_bits());
                }
            }
        }
        let (ok, skipped, failed) = a.totals();
        assert_eq!(ok, 2 * 2 * 4); // two 4-source windows × two granularities
        assert_eq!(skipped, 2 * 2); // the 2-source window skips everywhere
        assert_eq!(failed, 0);
        assert_eq!(a.error_table().len(), 4);
    }

    #[test]
    #[should_panic]
    fn aggregate_empty_panics() {
        aggregate_errors(&[]);
    }
}
