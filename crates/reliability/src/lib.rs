//! Reliability engine: how much should the estimates be trusted?
//!
//! The paper validates its capture–recapture estimates only by
//! leave-one-source-as-universe cross-validation (§5); You et al. 2021
//! showed that CR point estimates and intervals can be badly miscalibrated
//! and that their reliability must be measured empirically. This crate
//! composes the repo's pieces into that measurement:
//!
//! * [`bootstrap`] — a **parametric bootstrap** around one table: resample
//!   the 2^t contingency cells from the fitted model's expected means,
//!   refit + reselect per replicate (isolated failures), and summarise the
//!   estimator distribution (SE, percentile/basic intervals, selection
//!   stability).
//! * [`crossval`] — leave-one-source-out CV promoted to a first-class
//!   batched experiment running every (window × held-out source ×
//!   granularity) cell through the deterministic parallel engine.
//! * [`coverage`] — nominal-vs-empirical CI coverage curves over synthetic
//!   truth regimes (spoofing, NAT, source dropout).
//!
//! Everything is deterministic: replicate `r` of component `label` draws
//! from [`ghosts_stats::rng::indexed_rng`]`(seed, label, r)`, so results
//! are bit-identical at every thread count and invariant to completion
//! order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod coverage;
pub mod crossval;

pub use bootstrap::{bootstrap_table, BootstrapConfig, BootstrapSummary, ReplicateFailure};
pub use coverage::{coverage_curves, CiMethod, CoverageConfig, CoveragePoint, Regime, TruthModel};
pub use crossval::{
    aggregate_errors, cross_validate_batch, cross_validate_window, observed_baseline_errors,
    CrossValResult, CvBatchReport, CvCell, CvErrors, CvFailure, CvReport, CvSkip, Granularity,
};
