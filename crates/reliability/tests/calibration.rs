//! Statistical self-test: under a Poisson-independence truth — the model
//! the estimator searches over actually contains the generating process —
//! the interval procedures must recover their nominal coverage within
//! Monte-Carlo tolerance. Everything is seeded: these are regression
//! tests, not flaky statistics.

use ghosts_core::{CrConfig, Parallelism};
use ghosts_reliability::{
    bootstrap_table, coverage_curves, BootstrapConfig, CiMethod, CoverageConfig, Regime, TruthModel,
};

fn truth() -> TruthModel {
    TruthModel {
        population: 2_000,
        capture_probs: vec![0.5, 0.4, 0.3],
    }
}

fn cfg() -> CrConfig {
    CrConfig {
        min_stratum_observed: 0,
        truncated: false,
        ..CrConfig::paper()
    }
}

#[test]
fn profile_interval_recovers_nominal_coverage() {
    let ccfg = CoverageConfig {
        nominal: 0.95,
        repetitions: 60,
        seed: 1_234,
        method: CiMethod::Profile,
        parallelism: Parallelism::Auto,
    };
    let points = coverage_curves(&truth(), &[Regime::clean("independence")], &cfg(), &ccfg);
    let p = &points[0];
    assert_eq!(p.completed + p.failed, 60);
    assert!(
        p.failed == 0,
        "independence truth must not fail estimation ({} failures)",
        p.failed
    );
    // Binomial MC tolerance at K=60, p=0.95: SD ≈ 0.028. Allow ~3 SD
    // below nominal (and coverage can legitimately reach 1.0).
    assert!(
        p.empirical >= 0.86,
        "nominal 95% interval covered only {:.3}",
        p.empirical
    );
    eprintln!(
        "profile coverage: empirical={:.3} mean_truth={:.1} mean_estimate={:.1}",
        p.empirical, p.mean_truth, p.mean_estimate
    );
}

#[test]
fn bootstrap_percentile_recovers_nominal_coverage() {
    let ccfg = CoverageConfig {
        nominal: 0.95,
        repetitions: 40,
        seed: 99,
        method: CiMethod::BootstrapPercentile { replicates: 60 },
        parallelism: Parallelism::Auto,
    };
    let points = coverage_curves(&truth(), &[Regime::clean("independence")], &cfg(), &ccfg);
    let p = &points[0];
    assert_eq!(p.completed + p.failed, 40);
    // Percentile bootstrap is known to slightly undercover at moderate B;
    // K=40 adds SD ≈ 0.034. Allow a generous but meaningful floor.
    assert!(
        p.empirical >= 0.80,
        "nominal 95% bootstrap interval covered only {:.3}",
        p.empirical
    );
    eprintln!(
        "bootstrap coverage: empirical={:.3} completed={} failed={}",
        p.empirical, p.completed, p.failed
    );
}

#[test]
fn bootstrap_se_tracks_replicate_spread() {
    // On an independence truth the bootstrap SE must be positive, finite
    // and small relative to the point estimate, and the percentile
    // interval must bracket the truth used to generate the table.
    use ghosts_core::ContingencyTable;
    use ghosts_stats::rng::component_rng;
    use rand::Rng;

    let t = truth();
    let mut rng = component_rng(4_321, "calibration");
    let mut table = ContingencyTable::new(t.capture_probs.len());
    for _ in 0..t.population {
        let mut mask = 0u16;
        for (j, &p) in t.capture_probs.iter().enumerate() {
            if rng.gen_bool(p) {
                mask |= 1 << j;
            }
        }
        table.record(mask);
    }
    let summary = bootstrap_table(
        &table,
        None,
        &cfg(),
        &BootstrapConfig {
            replicates: 120,
            seed: 5,
            alpha: 0.05,
            parallelism: Parallelism::Auto,
        },
    )
    .expect("bootstrap runs");
    assert_eq!(summary.completed, 120, "no replicate failures expected");
    let se = summary.se.expect("se");
    assert!(se > 0.0 && se < summary.point * 0.2, "se {se} implausible");
    let (lo, hi) = summary.percentile.expect("interval");
    let truth_f = t.population as f64;
    assert!(
        lo <= truth_f && truth_f <= hi,
        "95% interval [{lo:.1}, {hi:.1}] misses truth {truth_f}"
    );
    // Selection stability: the independence model family is simple enough
    // that one model should dominate re-selection.
    assert!(
        summary.selection_agreement() > 0.5,
        "selection agreement {:.2} too unstable for independence",
        summary.selection_agreement()
    );
}
