//! Determinism regression: the bootstrap replicate stream must be
//! bit-identical for `--threads 1` vs `--threads 4`, and the summary JSON
//! is golden-pinned so any change to the replicate RNG discipline, the
//! merge order, or the JSON rendering shows up as a diff in review.

use ghosts_core::{ContingencyTable, CrConfig, Parallelism};
use ghosts_reliability::{
    bootstrap_table, coverage_curves, BootstrapConfig, CiMethod, CoverageConfig, Regime, TruthModel,
};

fn fixture_table() -> ContingencyTable {
    // Small fixed 3-source table: enough mass for a stable fit, small
    // enough that the golden JSON stays reviewable.
    let mut t = ContingencyTable::new(3);
    let counts: [(u16, u64); 7] = [
        (0b001, 120),
        (0b010, 90),
        (0b100, 70),
        (0b011, 45),
        (0b101, 32),
        (0b110, 28),
        (0b111, 19),
    ];
    for (mask, n) in counts {
        for _ in 0..n {
            t.record(mask);
        }
    }
    t
}

fn cfg() -> CrConfig {
    CrConfig {
        min_stratum_observed: 0,
        truncated: false,
        ..CrConfig::paper()
    }
}

fn bcfg(par: Parallelism) -> BootstrapConfig {
    BootstrapConfig {
        replicates: 24,
        seed: 7,
        alpha: 0.05,
        parallelism: par,
    }
}

#[test]
fn bootstrap_summary_is_bit_identical_across_thread_counts() {
    let table = fixture_table();
    let one = bootstrap_table(&table, None, &cfg(), &bcfg(Parallelism::Fixed(1)))
        .expect("sequential bootstrap");
    let four = bootstrap_table(&table, None, &cfg(), &bcfg(Parallelism::Fixed(4)))
        .expect("parallel bootstrap");
    assert_eq!(
        one.to_json(),
        four.to_json(),
        "thread count leaked into results"
    );
    for (a, b) in one.estimates.iter().zip(four.estimates.iter()) {
        assert_eq!(a.to_bits(), b.to_bits(), "replicate stream differs");
    }
}

#[test]
fn bootstrap_summary_json_matches_golden_pin() {
    let table = fixture_table();
    let summary =
        bootstrap_table(&table, None, &cfg(), &bcfg(Parallelism::Fixed(4))).expect("bootstrap");
    let json = summary.to_json();
    let golden = r#"{"alpha":0.05,"basic":[569.8565644416994,671.8926481765623],"completed":24,"estimates":[684.5265360466233,632.4042274109211,621.9440610317006,649.4718170467343,592.7788604764206,673.2895752061354,646.1152854114841,658.7935802470179,643.5000000003715,618.7731773882529,665.9871297431004,638.2311873701076,629.9943361308158,591.8737918215653,581.346439179169,568.8352877657829,617.4361307180984,629.1354076659961,667.9783184257055,609.3340121356397,585.0000000000016,610.0051478277605,658.6462104386055,651.9433950089801],"failures":[],"model":"[1][2][3]","observed":404,"percentile":[576.0291998284799,678.0652835633427],"point":623.9609240025211,"requested":24,"se":31.455186680617164,"selection_counts":{"[1][2][3]":24}}"#;
    assert_eq!(json, golden, "bootstrap summary drifted from golden pin");
}

#[test]
fn coverage_points_are_bit_identical_across_thread_counts() {
    let truth = TruthModel {
        population: 600,
        capture_probs: vec![0.55, 0.45, 0.35],
    };
    let regimes = [
        Regime::clean("clean"),
        Regime {
            name: "nat_spoof".into(),
            spoof_rate: 0.01,
            nat_density: 0.10,
            dropped_sources: 0,
        },
    ];
    let run = |par: Parallelism| {
        coverage_curves(
            &truth,
            &regimes,
            &cfg(),
            &CoverageConfig {
                nominal: 0.95,
                repetitions: 12,
                seed: 11,
                method: CiMethod::Profile,
                parallelism: par,
            },
        )
    };
    let one = run(Parallelism::Fixed(1));
    let four = run(Parallelism::Fixed(4));
    assert_eq!(one.len(), four.len());
    for (a, b) in one.iter().zip(four.iter()) {
        assert_eq!(a.regime, b.regime);
        assert_eq!(a.empirical.to_bits(), b.empirical.to_bits());
        assert_eq!(a.mean_estimate.to_bits(), b.mean_estimate.to_bits());
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.failed, b.failed);
    }
}
