//! What the server serves *from*: a [`Backend`] resolves window/strata
//! requests into contingency tables and answers address-membership
//! queries. The serve crate itself ships only [`InlineBackend`] (inline
//! tables plus a static routed/observed view, enough for every test);
//! the bench crate provides the reproduction-scenario backend that the
//! `serve` subcommand runs in production.

use crate::request::{EstimateRequest, Target};
use ghosts_core::ContingencyTable;
use ghosts_net::{bogons, AddrSet, Prefix, RoutedTable};

/// Tables resolved for one estimate request.
#[derive(Debug, Clone)]
pub struct TableSpec {
    /// One table per stratum (a single unstratified table is `len() == 1`
    /// with empty `labels`).
    pub tables: Vec<ContingencyTable>,
    /// Per-stratum routed-space bounds for truncated cells, parallel to
    /// `tables`. `None` means unbounded.
    pub limits: Option<Vec<u64>>,
    /// Stratum labels, parallel to `tables`; empty for unstratified.
    pub labels: Vec<String>,
}

/// Why a request could not be resolved to tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// The named window/strata does not exist → `404 Not Found`.
    NotFound(String),
    /// The combination is understood but unservable → `422 Unprocessable`.
    Invalid(String),
}

impl BackendError {
    /// The HTTP status the server maps this error to.
    pub fn status(&self) -> u16 {
        match self {
            BackendError::NotFound(_) => 404,
            BackendError::Invalid(_) => 422,
        }
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        match self {
            BackendError::NotFound(m) | BackendError::Invalid(m) => m,
        }
    }
}

/// One address's standing relative to the backend's data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Membership {
    /// The queried address.
    pub addr: u32,
    /// Most specific routed prefix covering the address, if any.
    pub routed: Option<Prefix>,
    /// Whether the address falls in reserved/bogon space.
    pub bogon: bool,
    /// Whether any source observed the address.
    pub observed: bool,
}

/// A source of tables and membership answers. Implementations must be
/// deterministic: the content-addressed cache assumes a digest-equal
/// request resolves to byte-identical results for the process lifetime.
pub trait Backend: Send + Sync {
    /// Resolves a request to the tables it should be estimated over.
    /// Inline-table requests never reach this method — the server
    /// materialises those itself.
    fn resolve(&self, request: &EstimateRequest) -> Result<TableSpec, BackendError>;

    /// Answers `GET /v1/membership/<addr>`.
    fn membership(&self, addr: u32) -> Membership;

    /// Static key/value pairs for `/healthz` and the run manifest
    /// (backend name, window count, denominator, ...).
    fn info(&self) -> Vec<(String, String)>;
}

/// A self-contained backend over fixed address sets: the union of the
/// sets is "observed", a supplied [`RoutedTable`] answers routedness, and
/// window requests resolve against the single window `0` built from the
/// sets. Exists so the serve crate's tests (and the examples) need
/// nothing outside this crate's dependencies.
pub struct InlineBackend {
    routed: RoutedTable,
    sources: Vec<AddrSet>,
    observed: AddrSet,
}

impl InlineBackend {
    /// Builds the backend from per-source observation sets.
    pub fn new(routed: RoutedTable, sources: Vec<AddrSet>) -> Self {
        let mut observed = AddrSet::new();
        for s in &sources {
            observed.union_with(s);
        }
        Self {
            routed,
            sources,
            observed,
        }
    }
}

impl Backend for InlineBackend {
    fn resolve(&self, request: &EstimateRequest) -> Result<TableSpec, BackendError> {
        match request.window {
            Some(0) => {}
            Some(w) => {
                return Err(BackendError::NotFound(format!(
                    "window {w} does not exist (inline backend has only window 0)"
                )))
            }
            None => {
                return Err(BackendError::Invalid(
                    "inline backend needs a window".to_string(),
                ))
            }
        }
        if request.target == Target::Subnet {
            return Err(BackendError::Invalid(
                "inline backend serves only target \"addr\"".to_string(),
            ));
        }
        if let Some(name) = &request.strata {
            return Err(BackendError::NotFound(format!(
                "stratification {name:?} does not exist (inline backend is unstratified)"
            )));
        }
        // Straight into the word-wise kernel: the sources' backing bitmap
        // planes produce all 2^t cells without a per-address loop.
        let planes: Vec<_> = self.sources.iter().map(|s| s.plane()).collect();
        let table = ContingencyTable::from_planes(&planes);
        let limit = request.limit.unwrap_or_else(|| self.routed.address_count());
        Ok(TableSpec {
            tables: vec![table],
            limits: Some(vec![limit]),
            labels: Vec::new(),
        })
    }

    fn membership(&self, addr: u32) -> Membership {
        // Two O(prefix-length) walks and one bit probe: `longest_match` is
        // a single descent of the routed table's compact trie
        // (`PrefixPlane`), and `observed` tests one bit of the union's
        // segmented bitmap plane.
        Membership {
            addr,
            routed: self.routed.longest_match(addr),
            bogon: bogons::is_reserved(addr),
            observed: self.observed.contains(addr),
        }
    }

    fn info(&self) -> Vec<(String, String)> {
        vec![
            ("backend".to_string(), "inline".to_string()),
            ("windows".to_string(), "1".to_string()),
            ("sources".to_string(), self.sources.len().to_string()),
            (
                "routed_addresses".to_string(),
                self.routed.address_count().to_string(),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghosts_obs::json::parse;

    fn backend() -> InlineBackend {
        let routed = RoutedTable::from_prefixes(["8.0.0.0/8".parse().expect("prefix")]);
        let mut a = AddrSet::new();
        let mut b = AddrSet::new();
        for i in 0..300u32 {
            a.insert(0x0800_0000 + i);
        }
        for i in 150..450u32 {
            b.insert(0x0800_0000 + i);
        }
        InlineBackend::new(routed, vec![a, b])
    }

    fn req(text: &str) -> EstimateRequest {
        EstimateRequest::parse(&parse(text).expect("json")).expect("valid request")
    }

    #[test]
    fn resolves_window_zero() {
        let spec = backend()
            .resolve(&req(r#"{"window":0}"#))
            .expect("resolves");
        assert_eq!(spec.tables.len(), 1);
        assert!(spec.labels.is_empty());
        assert_eq!(spec.tables[0].num_sources(), 2);
        assert_eq!(spec.tables[0].observed_total(), 450);
        assert_eq!(spec.limits, Some(vec![1 << 24]));
    }

    #[test]
    fn unknown_window_and_strata_are_not_found() {
        let b = backend();
        assert_eq!(
            b.resolve(&req(r#"{"window":3}"#))
                .expect_err("404")
                .status(),
            404
        );
        assert_eq!(
            b.resolve(&req(r#"{"window":0,"strata":"rir"}"#))
                .expect_err("404")
                .status(),
            404
        );
        assert_eq!(
            b.resolve(&req(r#"{"window":0,"target":"subnet"}"#))
                .expect_err("422")
                .status(),
            422
        );
    }

    #[test]
    fn membership_reports_all_three_axes() {
        let b = backend();
        let m = b.membership(0x0800_0005);
        assert!(m.routed.is_some());
        assert!(m.observed);
        assert!(!m.bogon);
        let m = b.membership(0x0850_0000);
        assert!(m.routed.is_some());
        assert!(!m.observed);
        // 127.0.0.1: bogon, unrouted here, unobserved.
        let m = b.membership(0x7f00_0001);
        assert!(m.bogon);
        assert!(m.routed.is_none());
        assert!(!m.observed);
    }
}
