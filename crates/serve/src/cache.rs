//! The content-addressed estimate cache.
//!
//! Keyed by the request digest (see [`crate::digest`]), the cache stores
//! the exact response bytes of successful estimates so identical queries
//! are byte-identical replays. Two tiers:
//!
//! * an in-memory LRU bounded by entry count, and
//! * an optional on-disk JSON spill (`<cache-dir>/<digest-hex>.json`)
//!   that survives restarts and absorbs LRU evictions.
//!
//! Spill files are written atomically (temp + fsync + rename, via
//! `ghosts_durable::atomic_write`) and carry a CRC-32 of the body that is
//! verified on load: a file that fails schema, digest or CRC validation
//! is **quarantined** — renamed to `<name>.corrupt` and reported as
//! [`Lookup::Quarantined`] so the server can count it — never silently
//! served and never left to fail again on the next lookup.
//!
//! Only `200 OK` and `203 Non-Authoritative` (degraded-but-served)
//! responses are cached: errors are cheap to recompute and must not be
//! pinned. The cache itself never counts hits and misses — the server
//! translates a [`Lookup`] into the `serve.cache.*` counters so metrics
//! stay in one place.

use crate::digest::{digest_hex, parse_digest_hex};
use ghosts_durable::{atomic_write, crc32};
use ghosts_obs::json::{parse, JsonValue};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::sync::Mutex;

/// Schema tag written into every spill file. Version 2 adds the `crc`
/// field (CRC-32 of the body string); v1 files predate integrity checks
/// and are quarantined on sight rather than trusted.
pub const CACHE_SCHEMA: &str = "ghosts-cache/2";

/// A cached response: the status and exact body bytes to replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedResponse {
    /// HTTP status (200 or 203).
    pub status: u16,
    /// Exact response body (compact JSON).
    pub body: String,
}

/// Where a lookup was satisfied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lookup {
    /// Served from the in-memory LRU.
    Memory(Arc<CachedResponse>),
    /// Served from the disk spill (and promoted back into memory).
    Disk(Arc<CachedResponse>),
    /// A spill file existed but failed validation and was quarantined to
    /// `<name>.corrupt`; the caller must compute (and should count it).
    Quarantined,
    /// Not cached; the caller must compute.
    Miss,
}

struct Entry {
    response: Arc<CachedResponse>,
    last_used: u64,
}

struct Inner {
    entries: std::collections::BTreeMap<u64, Entry>,
    tick: u64,
}

/// The two-tier cache. All methods are `&self`; an internal mutex guards
/// the LRU so the worker pool shares one instance.
pub struct EstimateCache {
    inner: Mutex<Inner>,
    capacity: usize,
    dir: Option<PathBuf>,
}

impl EstimateCache {
    /// Creates a cache holding at most `capacity` in-memory entries
    /// (minimum 1), spilling to `dir` when given.
    pub fn new(capacity: usize, dir: Option<PathBuf>) -> Self {
        Self {
            inner: Mutex::new(Inner {
                entries: std::collections::BTreeMap::new(),
                tick: 0,
            }),
            capacity: capacity.max(1),
            dir,
        }
    }

    /// Number of entries currently in memory.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// Whether the in-memory tier is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up `digest`, trying memory then disk. A disk hit is promoted
    /// back into the LRU.
    pub fn lookup(&self, digest: u64) -> Lookup {
        {
            let mut inner = self.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.entries.get_mut(&digest) {
                entry.last_used = tick;
                return Lookup::Memory(Arc::clone(&entry.response));
            }
        }
        match self.load_spill(digest) {
            SpillRead::Valid(response) => {
                let response = Arc::new(response);
                self.insert_memory(digest, Arc::clone(&response));
                Lookup::Disk(response)
            }
            SpillRead::Corrupt => Lookup::Quarantined,
            SpillRead::Absent => Lookup::Miss,
        }
    }

    /// Stores a computed response under `digest` (memory + spill).
    /// The caller has already filtered on status.
    pub fn store(&self, digest: u64, response: CachedResponse) -> Arc<CachedResponse> {
        let response = Arc::new(response);
        self.insert_memory(digest, Arc::clone(&response));
        self.write_spill(digest, &response);
        response
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned cache mutex means a worker panicked while holding it;
        // the data is plain values, so recover rather than cascade.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn insert_memory(&self, digest: u64, response: Arc<CachedResponse>) {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.entries.insert(
            digest,
            Entry {
                response,
                last_used: tick,
            },
        );
        while inner.entries.len() > self.capacity {
            let oldest = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k);
            match oldest {
                Some(k) => inner.entries.remove(&k),
                None => break,
            };
        }
    }

    fn spill_path(&self, digest: u64) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{}.json", digest_hex(digest))))
    }

    fn load_spill(&self, digest: u64) -> SpillRead {
        let Some(path) = self.spill_path(digest) else {
            return SpillRead::Absent;
        };
        let Ok(text) = std::fs::read_to_string(&path) else {
            return SpillRead::Absent;
        };
        match parse_spill(&text, digest) {
            Some(response) => SpillRead::Valid(response),
            None => {
                // Validation failed: quarantine so the bytes survive for
                // forensics and the next lookup is a clean miss.
                let mut target = path.clone().into_os_string();
                target.push(".corrupt");
                let _ = std::fs::rename(&path, PathBuf::from(target));
                SpillRead::Corrupt
            }
        }
    }

    fn write_spill(&self, digest: u64, response: &CachedResponse) {
        let Some(path) = self.spill_path(digest) else {
            return;
        };
        if let Some(dir) = path.parent() {
            // Best effort: a read-only cache dir degrades to memory-only.
            let _ = std::fs::create_dir_all(dir);
        }
        let doc = JsonValue::Object(vec![
            (
                "schema".to_string(),
                JsonValue::Str(CACHE_SCHEMA.to_string()),
            ),
            ("digest".to_string(), JsonValue::Str(digest_hex(digest))),
            (
                "status".to_string(),
                JsonValue::UInt(u64::from(response.status)),
            ),
            ("body".to_string(), JsonValue::Str(response.body.clone())),
            (
                "crc".to_string(),
                JsonValue::UInt(u64::from(crc32(response.body.as_bytes()))),
            ),
        ]);
        // Atomic: a crash mid-write leaves the previous spill (or no
        // file), never a torn one.
        let _ = atomic_write(&path, doc.to_compact().as_bytes());
    }
}

/// How a spill file read out.
enum SpillRead {
    /// Parsed and validated: safe to serve.
    Valid(CachedResponse),
    /// Present but invalid; it has been quarantined.
    Corrupt,
    /// No spill for this digest (or the read itself failed).
    Absent,
}

/// Parses a spill file, validating schema, digest, status and body CRC;
/// anything invalid reads as `None` (never as wrong data).
fn parse_spill(text: &str, expected_digest: u64) -> Option<CachedResponse> {
    let doc = parse(text).ok()?;
    if doc.get("schema")?.as_str()? != CACHE_SCHEMA {
        return None;
    }
    let digest = parse_digest_hex(doc.get("digest")?.as_str()?)?;
    if digest != expected_digest {
        return None;
    }
    let status = doc.get("status")?.as_u64()?;
    if !(status == 200 || status == 203) {
        return None;
    }
    let body = doc.get("body")?.as_str()?;
    let want = doc.get("crc")?.as_u64()?;
    if u64::from(crc32(body.as_bytes())) != want {
        return None;
    }
    Some(CachedResponse {
        status: status as u16,
        body: body.to_string(),
    })
}

/// Walks a cache directory and returns the digests of valid spill files,
/// sorted. Used by `/healthz` reporting and tests.
pub fn spilled_digests(dir: &Path) -> Vec<u64> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name.strip_suffix(".json") else {
            continue;
        };
        if let Some(d) = parse_digest_hex(stem) {
            out.push(d);
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(tag: &str) -> CachedResponse {
        CachedResponse {
            status: 200,
            body: format!("{{\"tag\":\"{tag}\"}}"),
        }
    }

    #[test]
    fn memory_hit_after_store() {
        let cache = EstimateCache::new(4, None);
        assert_eq!(cache.lookup(7), Lookup::Miss);
        cache.store(7, resp("a"));
        match cache.lookup(7) {
            Lookup::Memory(r) => assert_eq!(r.body, "{\"tag\":\"a\"}"),
            other => panic!("expected memory hit, got {other:?}"),
        }
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = EstimateCache::new(2, None);
        cache.store(1, resp("one"));
        cache.store(2, resp("two"));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(matches!(cache.lookup(1), Lookup::Memory(_)));
        cache.store(3, resp("three"));
        assert_eq!(cache.len(), 2);
        assert!(matches!(cache.lookup(1), Lookup::Memory(_)));
        assert!(matches!(cache.lookup(3), Lookup::Memory(_)));
        assert_eq!(cache.lookup(2), Lookup::Miss);
    }

    #[test]
    fn spill_round_trips_and_promotes() {
        let dir =
            std::env::temp_dir().join(format!("ghosts-serve-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let cache = EstimateCache::new(1, Some(dir.clone()));
        cache.store(
            10,
            CachedResponse {
                status: 203,
                body: "{\"degraded\":true}".to_string(),
            },
        );
        cache.store(11, resp("evictor")); // evicts 10 from memory
        assert_eq!(cache.len(), 1);
        // 10 must come back from disk, byte-identical, status preserved.
        match cache.lookup(10) {
            Lookup::Disk(r) => {
                assert_eq!(r.status, 203);
                assert_eq!(r.body, "{\"degraded\":true}");
            }
            other => panic!("expected disk hit, got {other:?}"),
        }
        // ... and is now promoted back to memory.
        assert!(matches!(cache.lookup(10), Lookup::Memory(_)));
        assert_eq!(spilled_digests(&dir), vec![10, 11]);

        // A fresh cache over the same dir sees the spill (restart survival).
        let cache2 = EstimateCache::new(4, Some(dir.clone()));
        assert!(matches!(cache2.lookup(11), Lookup::Disk(_)));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_or_mismatched_spills_read_as_miss() {
        assert_eq!(parse_spill("not json", 1), None);
        assert_eq!(parse_spill("{}", 1), None);
        let good = format!(
            "{{\"schema\":\"{CACHE_SCHEMA}\",\"digest\":\"{}\",\"status\":200,\"body\":\"x\",\"crc\":{}}}",
            digest_hex(5),
            crc32(b"x")
        );
        assert!(parse_spill(&good, 5).is_some());
        assert_eq!(parse_spill(&good, 6), None, "digest mismatch must miss");
        let bad_status = good.replace("200", "500");
        assert_eq!(parse_spill(&bad_status, 5), None);
        let bad_schema = good.replace(CACHE_SCHEMA, "ghosts-cache/0");
        assert_eq!(parse_spill(&bad_schema, 5), None);
        // A flipped body byte fails the CRC even though the JSON parses.
        let bad_body = good.replace("\"body\":\"x\"", "\"body\":\"y\"");
        assert_eq!(parse_spill(&bad_body, 5), None, "crc must catch bit rot");
        // v1 spills (no crc field) predate integrity checks: rejected.
        let v1 = format!(
            "{{\"schema\":\"ghosts-cache/1\",\"digest\":\"{}\",\"status\":200,\"body\":\"x\"}}",
            digest_hex(5)
        );
        assert_eq!(parse_spill(&v1, 5), None);
    }

    #[test]
    fn corrupt_spill_is_quarantined_once_then_misses_clean() {
        let dir = std::env::temp_dir().join(format!(
            "ghosts-serve-cache-quarantine-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = EstimateCache::new(4, Some(dir.clone()));
        cache.store(42, resp("victim"));
        let path = dir.join(format!("{}.json", digest_hex(42)));
        let mut bytes = std::fs::read(&path).expect("spill exists");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20; // flip a bit somewhere in the middle
        std::fs::write(&path, &bytes).expect("corrupt it");

        // A fresh cache over the same dir must quarantine, not serve.
        let cache2 = EstimateCache::new(4, Some(dir.clone()));
        assert_eq!(cache2.lookup(42), Lookup::Quarantined);
        assert!(!path.exists(), "corrupt spill renamed away");
        let mut quarantined = path.clone().into_os_string();
        quarantined.push(".corrupt");
        assert!(PathBuf::from(quarantined).exists());
        // The second lookup is a clean miss (no repeat quarantine).
        assert_eq!(cache2.lookup(42), Lookup::Miss);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
