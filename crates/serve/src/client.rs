//! A tiny HTTP/1.1 client over `std::net::TcpStream` — just enough to
//! talk to [`crate::server::Server`] from tests, the CI smoke step and
//! the bench binary's `serve req` subcommand. One request per
//! connection, mirroring the server's `Connection: close` contract.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Headers with lowercased names, in wire order.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy — server bodies are always UTF-8 JSON or
    /// text, so this is exact in practice).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Issues one request and reads the full response.
///
/// # Errors
///
/// Any socket failure, or a malformed response head.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> std::io::Result<ClientResponse> {
    let mut stream = TcpStream::connect(addr)?;
    let timeout = Some(Duration::from_secs(30));
    stream.set_read_timeout(timeout)?;
    stream.set_write_timeout(timeout)?;

    let body = body.unwrap_or(b"");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response"))
}

/// Convenience: `GET path` expecting a UTF-8 body.
///
/// # Errors
///
/// See [`request`].
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<ClientResponse> {
    request(addr, "GET", path, None)
}

/// Convenience: `POST path` with a JSON body.
///
/// # Errors
///
/// See [`request`].
pub fn post_json(addr: SocketAddr, path: &str, json: &str) -> std::io::Result<ClientResponse> {
    request(addr, "POST", path, Some(json.as_bytes()))
}

fn parse_response(raw: &[u8]) -> Option<ClientResponse> {
    let head_end = raw.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = std::str::from_utf8(&raw[..head_end]).ok()?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next()?;
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next()?;
    if !version.starts_with("HTTP/1.") {
        return None;
    }
    let status: u16 = parts.next()?.parse().ok()?;
    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line.split_once(':')?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let body = raw[head_end + 4..].to_vec();
    // Trust content-length when present (the server always sends it).
    if let Some(len) = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
    {
        if body.len() < len {
            return None; // truncated
        }
    }
    Some(ClientResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_response() {
        let raw = b"HTTP/1.1 203 Non-Authoritative Information\r\ncontent-type: application/json\r\ncontent-length: 2\r\n\r\n{}";
        let r = parse_response(raw).expect("parses");
        assert_eq!(r.status, 203);
        assert_eq!(r.header("Content-Type"), Some("application/json"));
        assert_eq!(r.body_text(), "{}");
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert!(parse_response(b"not http").is_none());
        assert!(parse_response(b"HTTP/1.1 200 OK\r\ncontent-length: 5\r\n\r\nab").is_none());
    }
}
