//! A tiny HTTP/1.1 client over `std::net::TcpStream` — just enough to
//! talk to [`crate::server::Server`] from tests, the CI smoke step and
//! the bench binary's `serve req` subcommand. One request per
//! connection, mirroring the server's `Connection: close` contract.
//!
//! [`request_with_retry`] adds the durable-ingest client discipline: a
//! deterministic jittered exponential backoff (seeded through
//! `ghosts_stats::rng`, so a retry schedule is reproducible from its
//! seed), honouring `Retry-After` on `429`/`503`, and carrying an
//! idempotency key header so a retry after an ambiguous outcome (ack
//! lost to a crash) dedups server-side instead of double-applying.

use ghosts_stats::rng::indexed_rng;
use rand::Rng;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Headers with lowercased names, in wire order.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy — server bodies are always UTF-8 JSON or
    /// text, so this is exact in practice).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Issues one request and reads the full response.
///
/// # Errors
///
/// Any socket failure, or a malformed response head.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> std::io::Result<ClientResponse> {
    request_with_headers(addr, method, path, body, &[])
}

/// Issues one request with extra headers (e.g. `idempotency-key`) and
/// reads the full response.
///
/// # Errors
///
/// Any socket failure, or a malformed response head.
pub fn request_with_headers(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
    headers: &[(String, String)],
) -> std::io::Result<ClientResponse> {
    let mut stream = TcpStream::connect(addr)?;
    let timeout = Some(Duration::from_secs(30));
    stream.set_read_timeout(timeout)?;
    stream.set_write_timeout(timeout)?;

    let body = body.unwrap_or(b"");
    let mut head = format!("{method} {path} HTTP/1.1\r\nhost: {addr}\r\n");
    for (name, value) in headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str(&format!(
        "content-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    ));
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response"))
}

/// The retry discipline for [`request_with_retry`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = single shot).
    pub retries: u32,
    /// Base backoff before jitter; attempt `n` waits ~`base << n`.
    pub base_delay_ms: u64,
    /// Hard cap on any single wait (also caps honoured `Retry-After`).
    pub max_delay_ms: u64,
    /// Master seed for the deterministic jitter schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            retries: 3,
            base_delay_ms: 50,
            max_delay_ms: 2_000,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The wait before retry number `attempt` (0-based), in milliseconds:
    /// exponential base with ±50% deterministic jitter, capped. Exposed so
    /// tests can assert the schedule without sleeping through it.
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let base = self
            .base_delay_ms
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.max_delay_ms);
        // Jitter in [base/2, base*3/2): spreads synchronized retriers
        // without losing reproducibility (same seed → same schedule).
        let mut rng = indexed_rng(self.seed, "client.retry", u64::from(attempt));
        let jitter = rng.gen::<u64>() % base.max(1);
        (base / 2 + jitter).min(self.max_delay_ms)
    }
}

/// Whether a response status is worth retrying (transient overload).
fn retryable_status(status: u16) -> bool {
    status == 429 || status == 503
}

/// Parses a `Retry-After: <seconds>` header value, capped by the policy.
fn retry_after_ms(response: &ClientResponse, policy: &RetryPolicy) -> Option<u64> {
    let seconds: u64 = response.header("retry-after")?.trim().parse().ok()?;
    Some(seconds.saturating_mul(1_000).min(policy.max_delay_ms))
}

/// Issues a request, retrying transport errors and `429`/`503` responses
/// with the policy's deterministic jittered backoff. A `Retry-After`
/// header from the server takes precedence over the computed delay.
/// Returns the last response (even an unretried error status) or the
/// last transport error once retries are exhausted.
///
/// # Errors
///
/// The final attempt's socket failure, if every attempt failed to get a
/// response at all.
pub fn request_with_retry(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
    headers: &[(String, String)],
    policy: &RetryPolicy,
) -> std::io::Result<ClientResponse> {
    let mut attempt = 0u32;
    loop {
        let outcome = request_with_headers(addr, method, path, body, headers);
        let give_up = attempt >= policy.retries;
        let wait_ms = match &outcome {
            Ok(response) if retryable_status(response.status) && !give_up => {
                retry_after_ms(response, policy).unwrap_or_else(|| policy.delay_ms(attempt))
            }
            Ok(_) => return outcome,
            Err(_) if !give_up => policy.delay_ms(attempt),
            Err(_) => return outcome,
        };
        std::thread::sleep(Duration::from_millis(wait_ms));
        attempt += 1;
    }
}

/// Convenience: `GET path` expecting a UTF-8 body.
///
/// # Errors
///
/// See [`request`].
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<ClientResponse> {
    request(addr, "GET", path, None)
}

/// Convenience: `POST path` with a JSON body.
///
/// # Errors
///
/// See [`request`].
pub fn post_json(addr: SocketAddr, path: &str, json: &str) -> std::io::Result<ClientResponse> {
    request(addr, "POST", path, Some(json.as_bytes()))
}

fn parse_response(raw: &[u8]) -> Option<ClientResponse> {
    let head_end = raw.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = std::str::from_utf8(&raw[..head_end]).ok()?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next()?;
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next()?;
    if !version.starts_with("HTTP/1.") {
        return None;
    }
    let status: u16 = parts.next()?.parse().ok()?;
    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line.split_once(':')?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let body = raw[head_end + 4..].to_vec();
    // Trust content-length when present (the server always sends it).
    if let Some(len) = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
    {
        if body.len() < len {
            return None; // truncated
        }
    }
    Some(ClientResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_response() {
        let raw = b"HTTP/1.1 203 Non-Authoritative Information\r\ncontent-type: application/json\r\ncontent-length: 2\r\n\r\n{}";
        let r = parse_response(raw).expect("parses");
        assert_eq!(r.status, 203);
        assert_eq!(r.header("Content-Type"), Some("application/json"));
        assert_eq!(r.body_text(), "{}");
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert!(parse_response(b"not http").is_none());
        assert!(parse_response(b"HTTP/1.1 200 OK\r\ncontent-length: 5\r\n\r\nab").is_none());
    }

    #[test]
    fn retry_schedule_is_deterministic_jittered_and_capped() {
        let policy = RetryPolicy {
            retries: 6,
            base_delay_ms: 50,
            max_delay_ms: 400,
            seed: 7,
        };
        let a: Vec<u64> = (0..6).map(|n| policy.delay_ms(n)).collect();
        let b: Vec<u64> = (0..6).map(|n| policy.delay_ms(n)).collect();
        assert_eq!(a, b, "same seed must give the same schedule");
        for (n, d) in a.iter().enumerate() {
            assert!(*d <= 400, "attempt {n} exceeds the cap: {d}");
            let base = (50u64 << n).min(400);
            assert!(*d >= base / 2, "attempt {n} under-waits: {d}");
        }
        let other = RetryPolicy { seed: 8, ..policy };
        let c: Vec<u64> = (0..6).map(|n| other.delay_ms(n)).collect();
        assert_ne!(a, c, "different seeds must de-synchronise retriers");
    }

    #[test]
    fn retry_after_header_is_honoured_and_capped() {
        let policy = RetryPolicy::default();
        let response = ClientResponse {
            status: 429,
            headers: vec![("retry-after".to_string(), "1".to_string())],
            body: Vec::new(),
        };
        assert_eq!(retry_after_ms(&response, &policy), Some(1_000));
        let slow = ClientResponse {
            status: 503,
            headers: vec![("retry-after".to_string(), "3600".to_string())],
            body: Vec::new(),
        };
        assert_eq!(
            retry_after_ms(&slow, &policy),
            Some(policy.max_delay_ms),
            "an hour-long retry-after is capped by the policy"
        );
        assert!(retryable_status(429) && retryable_status(503));
        assert!(!retryable_status(500) && !retryable_status(200));
    }
}
