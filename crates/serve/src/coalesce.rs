//! Request coalescing (single flight).
//!
//! When N digest-equal requests arrive concurrently, exactly one worker
//! (the *leader*) computes; the rest (*waiters*) block on a condvar and
//! replay the leader's bytes. If the leader fails — its handler panics or
//! errors before publishing — the flight is *poisoned*: waiters wake with
//! `None` and fall back to computing independently, so one bad request
//! can't wedge its whole digest class.

use crate::cache::CachedResponse;
use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex};

#[derive(Default)]
struct FlightState {
    /// `Some(Some(_))` published, `Some(None)` poisoned, `None` pending.
    outcome: Option<Option<Arc<CachedResponse>>>,
}

struct Flight {
    state: Mutex<FlightState>,
    cv: Condvar,
}

struct Inner {
    flights: Mutex<BTreeMap<u64, Arc<Flight>>>,
}

/// The per-digest flight table. Cloning shares the table; workers each
/// hold a clone.
#[derive(Clone)]
pub struct SingleFlight {
    inner: Arc<Inner>,
}

impl Default for SingleFlight {
    fn default() -> Self {
        Self::new()
    }
}

/// What [`SingleFlight::join`] decided for the calling worker.
pub enum Role {
    /// This worker computes; it MUST consume the guard via
    /// [`FlightGuard::complete`] (dropping it unpublished poisons the
    /// flight, which is exactly right on panic).
    Leader(FlightGuard),
    /// Another worker computed. `Some` carries its response; `None` means
    /// the leader failed and the caller should compute for itself
    /// (without leading — the flight is already gone).
    Waiter(Option<Arc<CachedResponse>>),
}

/// Leadership of one in-flight digest. Held across the computation;
/// its `Drop` guarantees waiters are released no matter how the
/// computation ends.
pub struct FlightGuard {
    owner: Arc<Inner>,
    digest: u64,
    flight: Arc<Flight>,
    published: bool,
}

impl SingleFlight {
    /// Creates an empty flight table.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner {
                flights: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// Joins the flight for `digest`: the first caller becomes the
    /// leader, later callers block until the leader publishes or fails.
    pub fn join(&self, digest: u64) -> Role {
        let flight = {
            let mut flights = lock(&self.inner.flights);
            match flights.get(&digest) {
                Some(f) => Arc::clone(f),
                None => {
                    let f = Arc::new(Flight {
                        state: Mutex::new(FlightState::default()),
                        cv: Condvar::new(),
                    });
                    flights.insert(digest, Arc::clone(&f));
                    return Role::Leader(FlightGuard {
                        owner: Arc::clone(&self.inner),
                        digest,
                        flight: f,
                        published: false,
                    });
                }
            }
        };
        let mut state = lock(&flight.state);
        while state.outcome.is_none() {
            state = match flight.cv.wait(state) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        Role::Waiter(state.outcome.clone().unwrap_or(None))
    }

    /// Number of digests currently in flight (test observability).
    pub fn in_flight(&self) -> usize {
        lock(&self.inner.flights).len()
    }
}

impl FlightGuard {
    /// Publishes the leader's response to every waiter and retires the
    /// flight.
    pub fn complete(mut self, response: Arc<CachedResponse>) {
        self.finish(Some(response));
        self.published = true;
    }

    fn finish(&mut self, outcome: Option<Arc<CachedResponse>>) {
        {
            let mut flights = lock(&self.owner.flights);
            flights.remove(&self.digest);
        }
        let mut state = lock(&self.flight.state);
        state.outcome = Some(outcome);
        self.flight.cv.notify_all();
    }
}

impl Drop for FlightGuard {
    fn drop(&mut self) {
        if !self.published {
            // Leader died (panic/error path): poison, releasing waiters to
            // compute for themselves.
            self.finish(None);
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;

    fn resp(tag: &str) -> Arc<CachedResponse> {
        Arc::new(CachedResponse {
            status: 200,
            body: tag.to_string(),
        })
    }

    #[test]
    fn leader_publishes_to_waiters() {
        let sf = SingleFlight::new();
        let guard = match sf.join(1) {
            Role::Leader(g) => g,
            Role::Waiter(_) => panic!("first join must lead"),
        };
        let computed = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let sf = sf.clone();
            let computed = Arc::clone(&computed);
            handles.push(thread::spawn(move || match sf.join(1) {
                Role::Leader(_) => {
                    computed.fetch_add(1, Ordering::SeqCst);
                    String::new()
                }
                Role::Waiter(r) => r.expect("published").body.clone(),
            }));
        }
        // Wait until all four waiters hold the flight (each clones its Arc
        // inside join before blocking; table + guard account for 2), then
        // publish. A waiter that has cloned but not yet blocked still sees
        // the published outcome without waiting.
        while Arc::strong_count(&guard.flight) < 6 {
            thread::yield_now();
        }
        guard.complete(resp("answer"));
        for h in handles {
            assert_eq!(h.join().expect("thread"), "answer");
        }
        assert_eq!(computed.load(Ordering::SeqCst), 0);
        assert_eq!(sf.in_flight(), 0);
    }

    #[test]
    fn dropped_guard_poisons_flight() {
        let sf = SingleFlight::new();
        let guard = match sf.join(9) {
            Role::Leader(g) => g,
            Role::Waiter(_) => panic!("first join must lead"),
        };
        let sf2 = sf.clone();
        let waiter = thread::spawn(move || match sf2.join(9) {
            Role::Leader(_) => panic!("second join must wait"),
            Role::Waiter(r) => r.is_none(),
        });
        // Handshake as above: don't drop until the waiter holds the flight.
        while Arc::strong_count(&guard.flight) < 3 {
            thread::yield_now();
        }
        drop(guard); // leader "panics"
        assert!(waiter.join().expect("thread"), "waiter must see poison");
        // The digest is free again: a fresh join leads.
        assert!(matches!(sf.join(9), Role::Leader(_)));
    }

    #[test]
    fn distinct_digests_fly_independently() {
        let sf = SingleFlight::new();
        let g1 = match sf.join(1) {
            Role::Leader(g) => g,
            Role::Waiter(_) => panic!(),
        };
        let g2 = match sf.join(2) {
            Role::Leader(g) => g,
            Role::Waiter(_) => panic!(),
        };
        assert_eq!(sf.in_flight(), 2);
        g1.complete(resp("a"));
        g2.complete(resp("b"));
        assert_eq!(sf.in_flight(), 0);
    }
}
