//! Content addressing for estimate requests.
//!
//! The cache key of a request is the FNV-1a hash of its *canonical* JSON
//! form: object keys sorted recursively, every optional knob materialised
//! with its default, serialised compactly by the workspace's own writer.
//! Two requests that differ only in key order, whitespace or
//! spelled-out-default fields therefore share one digest — and one cached,
//! byte-identical response. FNV-1a is the same deterministic hash the
//! recorder uses for shard selection; it only has to be deterministic and
//! well-spread, not adversarially strong (the cache is keyed, not trusted).

use ghosts_obs::json::JsonValue;

/// FNV-1a offset basis (the constant the whole workspace uses).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte string.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// A digest as the 16 lowercase hex characters used in spill filenames,
/// `X-Cache-Key` headers and trace events.
pub fn digest_hex(digest: u64) -> String {
    format!("{digest:016x}")
}

/// Parses [`digest_hex`] back (strict: exactly 16 lowercase hex chars).
pub fn parse_digest_hex(text: &str) -> Option<u64> {
    if text.len() != 16
        || !text
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    {
        return None;
    }
    u64::from_str_radix(text, 16).ok()
}

/// Recursively sorts object keys (duplicates keep first occurrence),
/// leaving arrays and scalars untouched. The result serialises to the
/// canonical byte form that gets hashed.
pub fn canonicalize(value: &JsonValue) -> JsonValue {
    match value {
        JsonValue::Object(map) => {
            let mut entries: Vec<(String, JsonValue)> = Vec::with_capacity(map.len());
            for (k, v) in map {
                if !entries.iter().any(|(seen, _)| seen == k) {
                    entries.push((k.clone(), canonicalize(v)));
                }
            }
            entries.sort_by(|(a, _), (b, _)| a.cmp(b));
            JsonValue::Object(entries)
        }
        JsonValue::Array(items) => JsonValue::Array(items.iter().map(canonicalize).collect()),
        other => other.clone(),
    }
}

/// The content digest of a canonicalised value.
pub fn digest_of(canonical: &JsonValue) -> u64 {
    fnv1a64(canonical.to_compact().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghosts_obs::json::parse;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hex_round_trips() {
        for d in [0u64, 1, 0xdead_beef, u64::MAX] {
            assert_eq!(parse_digest_hex(&digest_hex(d)), Some(d));
        }
        assert_eq!(parse_digest_hex("xyz"), None);
        assert_eq!(parse_digest_hex("ABCDEF0123456789"), None); // uppercase
        assert_eq!(parse_digest_hex("0123456789abcde"), None); // short
    }

    #[test]
    fn canonical_form_is_key_order_invariant() {
        let a = parse(r#"{"b":1,"a":{"y":2,"x":[3,{"q":4,"p":5}]}}"#).expect("parses");
        let b = parse(r#"{"a":{"x":[3,{"p":5,"q":4}],"y":2},"b":1}"#).expect("parses");
        assert_eq!(canonicalize(&a), canonicalize(&b));
        assert_eq!(digest_of(&canonicalize(&a)), digest_of(&canonicalize(&b)));
    }

    #[test]
    fn canonical_form_keeps_array_order() {
        let a = parse("[1,2]").expect("parses");
        let b = parse("[2,1]").expect("parses");
        assert_ne!(
            digest_of(&canonicalize(&a)),
            digest_of(&canonicalize(&b)),
            "array order is semantic and must stay in the digest"
        );
    }

    #[test]
    fn duplicate_keys_keep_first() {
        let v = parse(r#"{"a":1,"a":2}"#).expect("parses");
        assert_eq!(canonicalize(&v).to_compact(), r#"{"a":1}"#);
    }
}
