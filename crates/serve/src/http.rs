//! A minimal HTTP/1.1 subset: enough to parse one request and write one
//! response over a blocking stream, with hard limits everywhere.
//!
//! The server speaks *one request per connection* (`Connection: close` on
//! every response). That keeps the state machine trivial — there is no
//! keep-alive bookkeeping, no pipelining, no chunked framing — and the
//! in-repo [`client`](crate::client) reads to EOF, so framing can never
//! drift. Bodies require an explicit `Content-Length`; header and body
//! sizes are capped so a hostile peer cannot balloon memory.
//!
//! The parser must never panic on arbitrary bytes (a property test feeds
//! it garbage): every failure is a typed [`ParseError`] that maps onto a
//! 4xx status via [`ParseError::status`].

use std::io::{Read, Write};

/// Maximum bytes of request line + headers.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Maximum bytes of request body.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, …) as sent.
    pub method: String,
    /// The request target, e.g. `/v1/estimate`.
    pub target: String,
    /// Headers in arrival order; names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum ParseError {
    /// The peer closed before sending a full request head. Includes the
    /// zero-byte probe connections the shutdown path makes; not worth a
    /// response.
    Eof,
    /// Transport failure mid-read (a socket timeout surfaces here).
    Io(std::io::Error),
    /// Request line / header syntax the subset does not accept.
    BadRequest(&'static str),
    /// Request head exceeded [`MAX_HEAD_BYTES`].
    HeadTooLarge,
    /// Declared `Content-Length` exceeded [`MAX_BODY_BYTES`].
    BodyTooLarge,
}

impl ParseError {
    /// The response status this failure maps to (`Eof` gets no response;
    /// callers special-case it).
    pub fn status(&self) -> u16 {
        match self {
            ParseError::Eof => 400,
            ParseError::Io(_) => 408,
            ParseError::BadRequest(_) => 400,
            ParseError::HeadTooLarge => 431,
            ParseError::BodyTooLarge => 413,
        }
    }

    /// Short machine-readable label for error bodies and trace events.
    pub fn label(&self) -> &'static str {
        match self {
            ParseError::Eof => "eof",
            ParseError::Io(_) => "io",
            ParseError::BadRequest(_) => "bad-request",
            ParseError::HeadTooLarge => "head-too-large",
            ParseError::BodyTooLarge => "body-too-large",
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Eof => f.write_str("connection closed before a full request"),
            ParseError::Io(e) => write!(f, "transport error: {e}"),
            ParseError::BadRequest(why) => write!(f, "malformed request: {why}"),
            ParseError::HeadTooLarge => write!(f, "request head exceeds {MAX_HEAD_BYTES} bytes"),
            ParseError::BodyTooLarge => write!(f, "request body exceeds {MAX_BODY_BYTES} bytes"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Reads and parses one request from `stream`.
///
/// # Errors
///
/// Any [`ParseError`]; see [`ParseError::status`] for the response
/// mapping.
pub fn read_request<R: Read>(stream: &mut R) -> Result<Request, ParseError> {
    // Accumulate the head byte-wise in small chunks until CRLFCRLF. Any
    // bytes read past the head separator belong to the body.
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() >= MAX_HEAD_BYTES {
            return Err(ParseError::HeadTooLarge);
        }
        let n = stream.read(&mut chunk).map_err(ParseError::Io)?;
        if n == 0 {
            return if buf.is_empty() {
                Err(ParseError::Eof)
            } else {
                Err(ParseError::BadRequest("truncated request head"))
            };
        }
        // lint: allow(panic-path) read() returns n <= chunk.len()
        buf.extend_from_slice(&chunk[..n]);
    };
    if head_end > MAX_HEAD_BYTES {
        return Err(ParseError::HeadTooLarge);
    }
    // lint: allow(panic-path) head_end was found inside buf by the scan above
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| ParseError::BadRequest("request head is not utf-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or(ParseError::BadRequest("missing request line"))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty() && m.bytes().all(|b| b.is_ascii_uppercase()))
        .ok_or(ParseError::BadRequest("bad method token"))?;
    let target = parts
        .next()
        .filter(|t| t.starts_with('/'))
        .ok_or(ParseError::BadRequest("bad request target"))?;
    let version = parts
        .next()
        .ok_or(ParseError::BadRequest("missing http version"))?;
    if parts.next().is_some() {
        return Err(ParseError::BadRequest("extra tokens on request line"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ParseError::BadRequest("unsupported http version"));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(ParseError::BadRequest("header line without ':'"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(ParseError::BadRequest("bad header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        None => 0usize,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| ParseError::BadRequest("unparseable content-length"))?,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(ParseError::BodyTooLarge);
    }

    // Body: whatever we over-read past the head, then the remainder.
    let body_start = head_end + 4;
    let mut body: Vec<u8> = buf.get(body_start..).unwrap_or(&[]).to_vec();
    if body.len() > content_length {
        return Err(ParseError::BadRequest("body longer than content-length"));
    }
    while body.len() < content_length {
        let want = (content_length - body.len()).min(chunk.len());
        // lint: allow(panic-path) want is clamped to chunk.len() on the line above
        let n = stream.read(&mut chunk[..want]).map_err(ParseError::Io)?;
        if n == 0 {
            return Err(ParseError::BadRequest("truncated body"));
        }
        // lint: allow(panic-path) read() returns n <= want <= chunk.len()
        body.extend_from_slice(&chunk[..n]);
    }

    Ok(Request {
        method: method.to_string(),
        target: target.to_string(),
        headers,
        body,
    })
}

/// Byte offset of the first `\r\n\r\n`, if any.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// A response about to be written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers (`Content-Length`, `Content-Type` and
    /// `Connection: close` are always emitted by [`Response::write_to`]).
    pub headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response (`Content-Type: application/json`).
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            headers: vec![("Content-Type".to_string(), "application/json".to_string())],
            body: body.into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: &str) -> Self {
        Self {
            status,
            headers: vec![(
                "Content-Type".to_string(),
                "text/plain; charset=utf-8".to_string(),
            )],
            body: body.as_bytes().to_vec(),
        }
    }

    /// Adds a header (builder style).
    #[must_use]
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// The canonical reason phrase for the status codes this server emits.
    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            203 => "Non-Authoritative Information",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serialises status line, headers and body. Deliberately no `Date`
    /// header: responses must be byte-identical replays of their cached
    /// form, and wall time belongs in the volatile metrics lane.
    ///
    /// # Errors
    ///
    /// Propagates transport errors from `w`.
    pub fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        let mut head = format!("HTTP/1.1 {} {}\r\n", self.status, Self::reason(self.status));
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        head.push_str("Connection: close\r\n\r\n");
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &[u8]) -> Result<Request, ParseError> {
        let mut cursor = raw;
        read_request(&mut cursor)
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").expect("parses");
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_body_and_overread() {
        let req = parse(b"POST /v1/estimate HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"a\"")
            .expect("parses");
        assert_eq!(req.body, b"{\"a\"");
    }

    #[test]
    fn rejects_malformed_heads() {
        for raw in [
            &b"bogus\r\n\r\n"[..],
            b"GET /x HTTP/2.0\r\n\r\n",
            b"GET x HTTP/1.1\r\n\r\n",
            b"get /x HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"GET /x HTTP/1.1\r\nContent-Length: no\r\n\r\n",
        ] {
            assert!(
                matches!(parse(raw), Err(ParseError::BadRequest(_))),
                "{raw:?}"
            );
        }
    }

    #[test]
    fn rejects_truncation_and_eof() {
        assert!(matches!(parse(b""), Err(ParseError::Eof)));
        assert!(matches!(
            parse(b"GET /x HTTP/1.1\r\n"),
            Err(ParseError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nab"),
            Err(ParseError::BadRequest(_))
        ));
    }

    #[test]
    fn enforces_size_limits() {
        let mut huge_head = b"GET /x HTTP/1.1\r\n".to_vec();
        huge_head.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 16));
        assert!(matches!(parse(&huge_head), Err(ParseError::HeadTooLarge)));

        let oversized = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            parse(oversized.as_bytes()),
            Err(ParseError::BodyTooLarge)
        ));
    }

    #[test]
    fn response_serialisation_is_framed() {
        let resp = Response::json(200, "{\"ok\":true}".to_string()).with_header("X-Cache", "miss");
        let mut out = Vec::new();
        resp.write_to(&mut out).expect("write");
        let text = String::from_utf8(out).expect("utf-8");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("X-Cache: miss\r\n"));
        assert!(text.contains("Connection: close\r\n\r\n{\"ok\":true}"));
    }
}
