//! The durable observation-ingestion plane (DESIGN.md §16).
//!
//! `POST /v1/observations` accepts a batch of observed addresses for one
//! source, identified by a client-chosen **idempotency key**. The handler
//! appends the batch's canonical JSON to the write-ahead log, fsyncs, and
//! only then acknowledges — so every `201 Created` ack survives `kill -9`.
//! A duplicate key acks `200 {"status":"duplicate"}` without re-applying,
//! which makes client retries after an ambiguous crash safe.
//!
//! The in-memory [`IngestStore`] is a pure fold over the acknowledged
//! payload sequence: `state = replay(checkpoint ++ wal_suffix)`. Its
//! [`IngestStore::digest`] fingerprints the canonical snapshot bytes, so
//! two servers that acked the same batches — whatever the crash/restart
//! history or worker count — report the same digest and serve
//! byte-identical live estimates.

use crate::digest::fnv1a64;
use ghosts_core::ContingencyTable;
use ghosts_net::{addr_from_str, addr_to_string, AddrSet};
use ghosts_obs::json::{parse as parse_json, JsonValue};
use std::collections::{BTreeMap, BTreeSet};

/// Cap on idempotency-key length (sanity bound, not a protocol limit).
pub const MAX_KEY_BYTES: usize = 128;

/// Cap on addresses per batch (the 1 MiB body cap binds earlier in
/// practice; this keeps pathological bodies from ballooning the WAL).
pub const MAX_BATCH_ADDRS: usize = 50_000;

/// A validated observation batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObservationBatch {
    /// Client-chosen idempotency key (duplicate delivery acks as a no-op).
    pub key: String,
    /// Source (vantage point) name the addresses were observed from.
    pub source: String,
    /// Observed addresses.
    pub addrs: Vec<u32>,
}

impl ObservationBatch {
    /// Parses and validates a request body document.
    ///
    /// # Errors
    ///
    /// A human-readable message describing the first invalid field.
    pub fn parse(doc: &JsonValue) -> Result<ObservationBatch, String> {
        let key = doc
            .get("key")
            .and_then(JsonValue::as_str)
            .ok_or("missing string field: key")?;
        if key.is_empty() || key.len() > MAX_KEY_BYTES {
            return Err(format!("key must be 1..={MAX_KEY_BYTES} bytes"));
        }
        let source = doc
            .get("source")
            .and_then(JsonValue::as_str)
            .ok_or("missing string field: source")?;
        if source.is_empty() || source.len() > MAX_KEY_BYTES {
            return Err(format!("source must be 1..={MAX_KEY_BYTES} bytes"));
        }
        let raw_addrs = doc
            .get("addrs")
            .and_then(JsonValue::as_array)
            .ok_or("missing array field: addrs")?;
        if raw_addrs.len() > MAX_BATCH_ADDRS {
            return Err(format!("addrs exceeds the {MAX_BATCH_ADDRS}-address cap"));
        }
        let mut addrs = Vec::with_capacity(raw_addrs.len());
        for raw in raw_addrs {
            let text = raw.as_str().ok_or("addrs must be IPv4 strings")?;
            let addr = addr_from_str(text).map_err(|_| format!("not an IPv4 address: {text}"))?;
            addrs.push(addr);
        }
        Ok(ObservationBatch {
            key: key.to_string(),
            source: source.to_string(),
            addrs,
        })
    }

    /// The canonical WAL payload for this batch: compact JSON with sorted
    /// keys and sorted, deduplicated addresses — the bytes that get
    /// appended, acked and replayed.
    pub fn canonical_payload(&self) -> String {
        let mut addrs = self.addrs.clone();
        addrs.sort_unstable();
        addrs.dedup();
        JsonValue::Object(vec![
            (
                "addrs".to_string(),
                JsonValue::Array(
                    addrs
                        .iter()
                        .map(|&a| JsonValue::Str(addr_to_string(a)))
                        .collect(),
                ),
            ),
            ("key".to_string(), JsonValue::Str(self.key.clone())),
            ("source".to_string(), JsonValue::Str(self.source.clone())),
        ])
        .to_compact()
    }
}

/// How [`IngestStore::apply_payload`] disposed of a payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Applied {
    /// The batch was new and its addresses were folded in.
    Fresh {
        /// Addresses newly inserted (insertions minus pre-existing).
        new_addrs: u64,
    },
    /// The idempotency key was already applied; nothing changed.
    Duplicate,
}

/// The replayable in-memory state: per-source address sets plus the set
/// of applied idempotency keys. Deterministic by construction — every
/// container iterates in sorted order.
#[derive(Debug, Default)]
pub struct IngestStore {
    sources: BTreeMap<String, AddrSet>,
    keys: BTreeSet<String>,
}

impl IngestStore {
    /// An empty store.
    pub fn new() -> IngestStore {
        IngestStore::default()
    }

    /// Whether `key` has already been applied.
    pub fn contains_key(&self, key: &str) -> bool {
        self.keys.contains(key)
    }

    /// Applied batches so far.
    pub fn applied_batches(&self) -> u64 {
        self.keys.len() as u64
    }

    /// Distinct sources observed so far.
    pub fn source_count(&self) -> u64 {
        self.sources.len() as u64
    }

    /// Total addresses across all sources (union not taken: per-source).
    pub fn addr_count(&self) -> u64 {
        self.sources.values().map(AddrSet::len).sum()
    }

    /// Folds one canonical WAL payload into the state. Idempotent: a
    /// payload whose key was already applied is a [`Applied::Duplicate`]
    /// no-op, so replaying a WAL suffix over a checkpoint that already
    /// contains some of it converges.
    ///
    /// # Errors
    ///
    /// A message if the payload is not a valid canonical batch (possible
    /// only via foreign bytes — our own acked payloads always parse).
    pub fn apply_payload(&mut self, payload: &str) -> Result<Applied, String> {
        let doc = parse_json(payload).map_err(|e| format!("payload is not JSON: {e}"))?;
        let batch = ObservationBatch::parse(&doc)?;
        if self.keys.contains(&batch.key) {
            return Ok(Applied::Duplicate);
        }
        let set = self.sources.entry(batch.source.clone()).or_default();
        let mut new_addrs = 0u64;
        for addr in &batch.addrs {
            if set.insert(*addr) {
                new_addrs += 1;
            }
        }
        self.keys.insert(batch.key);
        Ok(Applied::Fresh { new_addrs })
    }

    /// The canonical snapshot: compact JSON with sorted keys, sorted key
    /// list and per-source sorted address lists. These are the checkpoint
    /// bytes — [`IngestStore::from_snapshot`] inverts them exactly.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let sources = JsonValue::Object(
            self.sources
                .iter()
                .map(|(name, set)| {
                    (
                        name.clone(),
                        JsonValue::Array(
                            set.iter()
                                .map(|a| JsonValue::Str(addr_to_string(a)))
                                .collect(),
                        ),
                    )
                })
                .collect(),
        );
        JsonValue::Object(vec![
            (
                "keys".to_string(),
                JsonValue::Array(
                    self.keys
                        .iter()
                        .map(|k| JsonValue::Str(k.clone()))
                        .collect(),
                ),
            ),
            (
                "schema".to_string(),
                JsonValue::Str("ghosts-ingest/1".to_string()),
            ),
            ("sources".to_string(), sources),
        ])
        .to_compact()
        .into_bytes()
    }

    /// Rebuilds a store from checkpoint bytes.
    ///
    /// # Errors
    ///
    /// A message if the bytes are not a valid snapshot (the caller treats
    /// this as a corrupt checkpoint and starts from the WAL alone).
    pub fn from_snapshot(bytes: &[u8]) -> Result<IngestStore, String> {
        let text = std::str::from_utf8(bytes).map_err(|_| "snapshot is not UTF-8".to_string())?;
        let doc = parse_json(text).map_err(|e| format!("snapshot is not JSON: {e}"))?;
        if doc.get("schema").and_then(JsonValue::as_str) != Some("ghosts-ingest/1") {
            return Err("snapshot schema tag mismatch".to_string());
        }
        let mut store = IngestStore::new();
        for key in doc
            .get("keys")
            .and_then(JsonValue::as_array)
            .ok_or("missing keys array")?
        {
            store
                .keys
                .insert(key.as_str().ok_or("keys must be strings")?.to_string());
        }
        for (name, addrs) in doc
            .get("sources")
            .and_then(JsonValue::as_object)
            .ok_or("missing sources object")?
        {
            let mut set = AddrSet::new();
            for raw in addrs.as_array().ok_or("source addrs must be an array")? {
                let text = raw.as_str().ok_or("source addrs must be strings")?;
                set.insert(
                    addr_from_str(text).map_err(|_| format!("bad snapshot address: {text}"))?,
                );
            }
            store.sources.insert(name.clone(), set);
        }
        Ok(store)
    }

    /// FNV-1a fingerprint of the canonical snapshot: equal digests ⇔
    /// equal acknowledged state. This is what the chaos harness compares
    /// across crash/restart and across worker counts.
    pub fn digest(&self) -> u64 {
        fnv1a64(&self.snapshot_bytes())
    }

    /// A contingency table over the current per-source sets (sources in
    /// sorted name order), for live estimates over ingested observations.
    pub fn table(&self) -> ContingencyTable {
        let sets: Vec<&AddrSet> = self.sources.values().collect();
        ContingencyTable::from_addr_sets(&sets)
    }

    /// Source names in sorted order (for the stats endpoint).
    pub fn source_names(&self) -> Vec<String> {
        self.sources.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::digest_hex;

    fn batch_doc(key: &str, source: &str, addrs: &[&str]) -> JsonValue {
        parse_json(&format!(
            "{{\"key\":\"{key}\",\"source\":\"{source}\",\"addrs\":[{}]}}",
            addrs
                .iter()
                .map(|a| format!("\"{a}\""))
                .collect::<Vec<_>>()
                .join(",")
        ))
        .expect("test doc")
    }

    #[test]
    fn parse_validates_and_canonicalizes() {
        let doc = batch_doc("k1", "probe-a", &["10.0.0.2", "10.0.0.1", "10.0.0.2"]);
        let batch = ObservationBatch::parse(&doc).expect("valid");
        // Canonical payload sorts and dedups addresses and sorts keys.
        assert_eq!(
            batch.canonical_payload(),
            "{\"addrs\":[\"10.0.0.1\",\"10.0.0.2\"],\"key\":\"k1\",\"source\":\"probe-a\"}"
        );
        let bad = batch_doc("k1", "probe-a", &["not-an-ip"]);
        assert!(ObservationBatch::parse(&bad).is_err());
        let no_key = parse_json("{\"source\":\"s\",\"addrs\":[]}").expect("doc");
        assert!(ObservationBatch::parse(&no_key).is_err());
    }

    #[test]
    fn apply_is_idempotent_by_key() {
        let mut store = IngestStore::new();
        let doc = batch_doc("k1", "s1", &["1.2.3.4", "1.2.3.5"]);
        let payload = ObservationBatch::parse(&doc)
            .expect("valid")
            .canonical_payload();
        assert_eq!(
            store.apply_payload(&payload).expect("apply"),
            Applied::Fresh { new_addrs: 2 }
        );
        let digest = store.digest();
        assert_eq!(
            store.apply_payload(&payload).expect("apply"),
            Applied::Duplicate
        );
        assert_eq!(store.digest(), digest, "duplicate must not change state");
        assert_eq!(store.applied_batches(), 1);
        assert_eq!(store.addr_count(), 2);
    }

    #[test]
    fn snapshot_round_trips_and_digest_is_order_independent() {
        let mut a = IngestStore::new();
        let mut b = IngestStore::new();
        let batches = [
            ("k1", "alpha", vec!["1.1.1.1", "1.1.1.2"]),
            ("k2", "beta", vec!["2.2.2.2"]),
            ("k3", "alpha", vec!["1.1.1.3"]),
        ];
        for (key, source, addrs) in &batches {
            let doc = batch_doc(key, source, &addrs.to_vec());
            let payload = ObservationBatch::parse(&doc)
                .expect("valid")
                .canonical_payload();
            a.apply_payload(&payload).expect("apply a");
        }
        for (key, source, addrs) in batches.iter().rev() {
            let doc = batch_doc(key, source, &addrs.to_vec());
            let payload = ObservationBatch::parse(&doc)
                .expect("valid")
                .canonical_payload();
            b.apply_payload(&payload).expect("apply b");
        }
        assert_eq!(a.digest(), b.digest(), "application order must not matter");

        let restored = IngestStore::from_snapshot(&a.snapshot_bytes()).expect("restore");
        assert_eq!(restored.digest(), a.digest());
        assert_eq!(restored.source_names(), vec!["alpha", "beta"]);
        assert!(restored.contains_key("k2"));
        // The digest is printable for transcripts.
        assert_eq!(digest_hex(a.digest()).len(), 16);
    }

    #[test]
    fn corrupt_snapshots_are_rejected() {
        assert!(IngestStore::from_snapshot(b"not json").is_err());
        assert!(IngestStore::from_snapshot(b"{}").is_err());
        assert!(IngestStore::from_snapshot(b"{\"schema\":\"ghosts-ingest/0\"}").is_err());
    }

    #[test]
    fn table_reflects_per_source_sets() {
        let mut store = IngestStore::new();
        for (key, source, addr) in [
            ("a", "s1", "9.9.9.9"),
            ("b", "s2", "9.9.9.9"),
            ("c", "s2", "9.9.9.10"),
        ] {
            let doc = batch_doc(key, source, &[addr]);
            let payload = ObservationBatch::parse(&doc)
                .expect("valid")
                .canonical_payload();
            store.apply_payload(&payload).expect("apply");
        }
        let table = store.table();
        // 9.9.9.9 seen by both sources, 9.9.9.10 by one.
        assert_eq!(table.observed_total(), 2);
    }
}
