//! `ghosts-serve` — a dependency-free estimation server.
//!
//! The paper's workload is query-shaped: a small, enumerable universe of
//! expensive-to-compute, cheap-to-cache results (stratified estimates per
//! RIR/country/prefix size over quarterly-stepped windows, §3.4/§4.3–4.4).
//! This crate turns the estimator into a long-lived process that serves
//! those queries over HTTP/1.1 on nothing but `std::net`:
//!
//! * `POST /v1/estimate` — inline contingency tables or backend
//!   window/strata requests, with a [`request`]-validated subset of
//!   `CrConfig` knobs;
//! * `GET /v1/membership/<addr>` — routed/bogon/observed lookups: one
//!   descent of the routed table's `PrefixPlane` trie for the longest
//!   match plus a single bit test of the observed union's segmented
//!   bitmap plane (`ghosts_addrplane`);
//! * `GET /healthz`, `GET /manifest`, `GET /metrics` — liveness, a
//!   `ghosts-manifest/1` document, and a text exposition of the
//!   cumulative `ghosts_obs` counters and histograms.
//!
//! Three mechanisms make it production-shaped (DESIGN.md §12):
//!
//! 1. **Content-addressed caching** ([`digest`], [`cache`]): requests are
//!    canonicalised and FNV-hashed; the digest keys an in-memory LRU plus
//!    an optional on-disk spill, so identical queries are byte-identical
//!    replays.
//! 2. **Single flight** ([`coalesce`]): concurrent digest-equal requests
//!    run the estimator once; waiters replay the leader's bytes.
//! 3. **Load shedding** ([`server`]): a bounded accept queue answers
//!    `503` + `Retry-After` at the door when full.
//!
//! Degraded estimates (PR 4's ladder) serve with HTTP `203` and the rung
//! in the body; handler panics (including fault-injected ones at
//! [`server::FAULT_SITE_HANDLER`]) answer `500` with a schema-valid
//! `ghosts-events` trace while the worker survives.
//!
//! PR 9 adds the **durable state plane** (DESIGN.md §16): `POST
//! /v1/observations` appends each batch's canonical payload to a
//! CRC-framed write-ahead log (`ghosts_durable`) and acks only after
//! fsync, with idempotency keys for exactly-once application, a bounded
//! ingest queue (`429` + `Retry-After`), periodic atomic checkpoints, and
//! `POST /v1/admin/drain` for a checkpoint-then-exit shutdown. Restart
//! recovery (newest valid checkpoint + WAL suffix) rebuilds the exact
//! acked state — `kill -9` at any instant loses no acknowledged batch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod cache;
pub mod client;
pub mod coalesce;
pub mod digest;
pub mod http;
pub mod ingest;
pub mod metrics;
pub mod request;
pub mod server;

pub use backend::{Backend, BackendError, InlineBackend, Membership, TableSpec};
pub use cache::{CachedResponse, EstimateCache, Lookup};
pub use ingest::{Applied, IngestStore, ObservationBatch};
pub use metrics::MetricsHub;
pub use request::EstimateRequest;
pub use server::{Server, ServerConfig, ServerHandle};
