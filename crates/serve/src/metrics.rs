//! The server's telemetry hub: the sharded lock-free metric registry, the
//! stage profiler, the cumulative trace log and the request-tail ring
//! behind `/metrics`, `/v1/trace/tail`, `/v1/profile` and `/manifest`.
//!
//! The hot path never takes a lock: request counters and the latency
//! histogram are pre-resolved [`Registry`] handles (relaxed atomics on
//! sharded cells), and every read surface is a **non-mutating merge
//! view** — a snapshot is a sum over cells plus a clone of the absorbed
//! trace log, never a drain, so two consecutive reads of a quiescent hub
//! are byte-identical. Per-request *traces* still flow through short-lived
//! [`Recorder`]s in the server and are folded in via [`MetricsHub::absorb`].
//!
//! Two lanes keep the determinism contract: deterministic series (request
//! counts, cache dispositions) are pure functions of the request sequence
//! at any worker count, while anything clock-shaped (latency quantiles,
//! stage durations) follows the hub's [`Clock`] and renders under a
//! `lane="volatile"` label. [`MetricsHub::logical`] swaps in a
//! [`LogicalClock`] so even the volatile lane becomes deterministic —
//! that is what the 1-vs-N-worker byte-identity tests run against.

use ghosts_obs::json::JsonValue;
use ghosts_obs::{
    Clock, Counter, EventLog, FieldValue, Histogram, LogLinearHist, LogicalClock, Recorder,
    Registry, RegistrySnapshot, RunManifest, StageProfiler, TailClass, TailEntry, TailRing,
    WallClock,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Requests per metrics epoch: every `EPOCH_EVERY`-th finished request
/// closes an epoch, pushing the delta into the registry's window ring.
pub const EPOCH_EVERY: u64 = 8;

/// Epochs the `/metrics` sliding-window section merges.
pub const WINDOW_EPOCHS: usize = 8;

/// Entries the request-tail ring retains.
pub const TAIL_CAPACITY: usize = 256;

/// OK-request admission sampling for the tail: one in every
/// `TAIL_OK_SAMPLE` routine successes is kept (errors, degraded answers,
/// shed rejections and slow outliers are always kept).
pub const TAIL_OK_SAMPLE: u64 = 2;

/// Requests at or above this latency (in the hub clock's unit) are
/// classed [`TailClass::Slow`].
pub const SLOW_REQUEST_US: u64 = 250_000;

/// Pre-resolved hot-path handles: one relaxed `fetch_add` per bump, no
/// name lookup, no lock.
pub struct HotStats {
    /// Every request read off a connection.
    pub requests: Counter,
    /// Connections answered 503 at the door.
    pub shed: Counter,
    /// Unparseable or invalid requests.
    pub bad_request: Counter,
    /// `/v1/membership` lookups.
    pub membership: Counter,
    /// Handler panics trapped into 500s.
    pub panic: Counter,
    /// Estimate requests received.
    pub estimate_received: Counter,
    /// Estimator runs actually executed.
    pub estimate_computed: Counter,
    /// Backend window/strata resolutions.
    pub backend_resolve: Counter,
    /// In-memory cache hits.
    pub cache_hit_mem: Counter,
    /// On-disk cache hits.
    pub cache_hit_disk: Counter,
    /// Cache misses.
    pub cache_miss: Counter,
    /// Cache bypasses (fault-injected).
    pub cache_bypassed: Counter,
    /// Requests that replayed a single-flight leader's bytes.
    pub singleflight_waited: Counter,
    /// Requests whose single-flight leader failed.
    pub singleflight_leader_failed: Counter,
    /// Observation batches received on `POST /v1/observations`.
    pub ingest_received: Counter,
    /// Observation batches durably applied (acked `201`).
    pub ingest_applied: Counter,
    /// Duplicate idempotency keys acked without re-applying.
    pub ingest_duplicate: Counter,
    /// Batches rejected `429` by ingest backpressure.
    pub ingest_rejected: Counter,
    /// WAL appends acknowledged (append → fsync → ack completed).
    pub wal_appends: Counter,
    /// WAL appends that failed (the batch was NOT acknowledged).
    pub wal_append_errors: Counter,
    /// WAL records replayed during recovery at startup.
    pub wal_recovered_records: Counter,
    /// Torn-tail bytes truncated during recovery.
    pub wal_torn_truncated: Counter,
    /// WAL segments quarantined to `*.corrupt` during recovery.
    pub wal_segments_quarantined: Counter,
    /// Checkpoints written (periodic and drain-triggered).
    pub checkpoint_written: Counter,
    /// Checkpoint writes that failed (the WAL still covers the state).
    pub checkpoint_failed: Counter,
    /// Checkpoint files quarantined during recovery.
    pub checkpoints_quarantined: Counter,
    /// Corrupt cache spill files quarantined to `*.corrupt` on load.
    pub cache_quarantined: Counter,
    /// Request latency sketch (volatile lane: follows the hub clock).
    pub request_us: Histogram,
}

/// Shared registry + profiler + cumulative trace log + request tail.
pub struct MetricsHub {
    registry: Registry,
    stats: HotStats,
    profiler: StageProfiler,
    clock: Arc<dyn Clock>,
    cumulative: Mutex<EventLog>,
    tail: Mutex<TailRing>,
    tail_seq: AtomicU64,
    served: AtomicU64,
}

impl MetricsHub {
    fn with_clock(clock: Arc<dyn Clock>) -> Arc<Self> {
        let registry = Registry::new();
        let stats = HotStats {
            requests: registry.counter("serve.requests"),
            shed: registry.counter("serve.shed"),
            bad_request: registry.counter("serve.http.bad_request"),
            membership: registry.counter("serve.membership"),
            panic: registry.counter("serve.panic"),
            estimate_received: registry.counter("serve.estimate.received"),
            estimate_computed: registry.counter("serve.estimate.computed"),
            backend_resolve: registry.counter("serve.backend.resolve"),
            cache_hit_mem: registry.counter("serve.cache.hit_mem"),
            cache_hit_disk: registry.counter("serve.cache.hit_disk"),
            cache_miss: registry.counter("serve.cache.miss"),
            cache_bypassed: registry.counter("serve.cache.bypassed"),
            singleflight_waited: registry.counter("serve.singleflight.waited"),
            singleflight_leader_failed: registry.counter("serve.singleflight.leader_failed"),
            ingest_received: registry.counter("serve.ingest.received"),
            ingest_applied: registry.counter("serve.ingest.applied"),
            ingest_duplicate: registry.counter("serve.ingest.duplicate"),
            ingest_rejected: registry.counter("serve.ingest.rejected"),
            wal_appends: registry.counter("serve.wal.appends"),
            wal_append_errors: registry.counter("serve.wal.append_errors"),
            wal_recovered_records: registry.counter("serve.wal.recovered_records"),
            wal_torn_truncated: registry.counter("serve.wal.torn_truncated_bytes"),
            wal_segments_quarantined: registry.counter("serve.wal.segments_quarantined"),
            checkpoint_written: registry.counter("serve.checkpoint.written"),
            checkpoint_failed: registry.counter("serve.checkpoint.failed"),
            checkpoints_quarantined: registry.counter("serve.checkpoint.quarantined"),
            cache_quarantined: registry.counter("serve.cache.quarantined"),
            request_us: registry.volatile_hist("serve.request_us"),
        };
        Arc::new(Self {
            registry,
            stats,
            profiler: StageProfiler::enabled(Arc::clone(&clock)),
            clock,
            cumulative: Mutex::new(EventLog::default()),
            tail: Mutex::new(TailRing::new(TAIL_CAPACITY, TAIL_OK_SAMPLE)),
            tail_seq: AtomicU64::new(0),
            served: AtomicU64::new(0),
        })
    }

    /// A hub driven by wall time (the serving default: latencies and stage
    /// durations are real microseconds, confined to the volatile lane).
    pub fn wall() -> Arc<Self> {
        Self::with_clock(Arc::new(WallClock::new()))
    }

    /// A hub driven by a [`LogicalClock`]: every surface — including
    /// latency quantiles and stage durations — becomes a deterministic
    /// function of the request sequence. Used by the byte-identity tests.
    pub fn logical() -> Arc<Self> {
        Self::with_clock(Arc::new(LogicalClock::new()))
    }

    /// The hub clock's current reading.
    pub fn now(&self) -> u64 {
        self.clock.now()
    }

    /// The lock-free metric registry (cold-path name resolution).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The pre-resolved hot-path handles.
    pub fn stats(&self) -> &HotStats {
        &self.stats
    }

    /// The stage profiler; layers receive scoped handles
    /// (`profiler().scoped("estimate")`).
    pub fn profiler(&self) -> &StageProfiler {
        &self.profiler
    }

    /// Folds a flushed per-request trace log into the cumulative totals.
    pub fn absorb(&self, log: &EventLog) {
        lock(&self.cumulative).merge(log);
    }

    /// A non-mutating clone of the cumulative trace log. Reading never
    /// drains: consecutive calls on a quiescent hub return equal logs.
    pub fn trace_log(&self) -> EventLog {
        lock(&self.cumulative).clone()
    }

    /// Marks one request finished; every [`EPOCH_EVERY`]-th call closes a
    /// metrics epoch.
    pub fn request_done(&self) {
        let n = self.served.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(EPOCH_EVERY) {
            self.registry.advance_epoch();
        }
    }

    /// Offers one wide event to the request tail; the hub assigns arrival
    /// ids so shed rejections (which never get a request id) still land in
    /// sequence.
    pub fn push_tail(&self, class: TailClass, status: u16, fields: Vec<(String, FieldValue)>) {
        let id = self.tail_seq.fetch_add(1, Ordering::Relaxed);
        lock(&self.tail).push(TailEntry {
            id,
            class,
            status,
            fields,
        });
    }

    /// The `/metrics` exposition: Prometheus-compatible text, name-sorted
    /// within every section, deterministic given the same history.
    ///
    /// ```text
    /// # TYPE serve_requests counter
    /// serve_requests 3
    /// # TYPE serve_request_us summary
    /// serve_request_us{lane="volatile",quantile="0.5"} 120
    /// ...
    /// serve_requests{window="8"} 3
    /// ```
    pub fn render_text(&self) -> String {
        let snap = self.registry.snapshot();
        let log = self.trace_log();
        let mut out = String::from("# ghosts-serve metrics\n");

        // Deterministic counters: registry totals merged with the
        // trace-derived counters (estimate.*, filter.*, …).
        let mut counters = snap.counters.clone();
        for (name, v) in &log.counters {
            let slot = counters.entry(name.clone()).or_insert(0);
            *slot = slot.saturating_add(*v);
        }
        for (name, v) in &counters {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }

        // Deterministic histograms: registry sketches with quantiles,
        // then the coarse trace histograms (count/sum/min/max only).
        for (name, h) in &snap.hists {
            render_summary(&mut out, &sanitize(name), &[], h);
        }
        for (name, h) in &log.hists {
            if h.count == 0 {
                continue;
            }
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} summary\n"));
            out.push_str(&format!("{n}_sum {}\n", h.sum));
            out.push_str(&format!("{n}_count {}\n", h.count));
            out.push_str(&format!("{n}_min {}\n", h.min));
            out.push_str(&format!("{n}_max {}\n", h.max));
        }

        // Volatile lane (labelled): wall durations under a wall clock,
        // deterministic ticks under a logical one.
        let mut volatile = snap.volatile_counters.clone();
        for (name, v) in &log.volatile {
            let slot = volatile.entry(name.clone()).or_insert(0);
            *slot = slot.saturating_add(*v);
        }
        for (name, v) in &volatile {
            let n = sanitize(name);
            out.push_str(&format!(
                "# TYPE {n} counter\n{n}{{lane=\"volatile\"}} {v}\n"
            ));
        }
        for (name, h) in &snap.volatile_hists {
            render_summary(&mut out, &sanitize(name), &["lane=\"volatile\""], h);
        }

        // Sliding window: the last WINDOW_EPOCHS closed epochs merged.
        out.push_str(&format!(
            "# window: last {WINDOW_EPOCHS} epochs of {} closed ({EPOCH_EVERY} requests each)\n",
            self.registry.epoch()
        ));
        let win = self.registry.window(WINDOW_EPOCHS);
        render_window(&mut out, &win);
        out
    }

    /// The `/v1/trace/tail` body: the most recent `n` retained wide
    /// events rendered as a schema-valid `ghosts-events/4` JSONL document
    /// (a `tail_retention` stats event followed by one `request` event per
    /// entry, errors on the error channel).
    pub fn render_tail(&self, n: usize) -> String {
        let tail = lock(&self.tail);
        let stats = tail.stats();
        let rec = Recorder::enabled(Arc::new(LogicalClock::new()));
        let root = rec.root("tail");
        root.event(
            "tail_retention",
            &[
                ("seen", FieldValue::U64(stats.seen)),
                ("kept", FieldValue::U64(stats.kept)),
                ("sampled_out", FieldValue::U64(stats.sampled_out)),
                ("evicted_ok", FieldValue::U64(stats.evicted_ok)),
                ("evicted", FieldValue::U64(stats.evicted)),
            ],
        );
        for entry in tail.recent(n) {
            let span = root.child_idx("request", entry.id);
            let mut fields: Vec<(&str, FieldValue)> = vec![
                ("class", FieldValue::Str(entry.class.label().to_string())),
                ("status", FieldValue::U64(u64::from(entry.status))),
            ];
            fields.extend(entry.fields.iter().map(|(k, v)| (k.as_str(), v.clone())));
            match entry.class {
                TailClass::Error | TailClass::Shed => span.error("request", &fields),
                _ => span.event("request", &fields),
            }
        }
        drop(tail);
        rec.flush().to_jsonl()
    }

    /// The `/v1/profile` body: the aggregated stage table as JSON. Call
    /// counts are deterministic; totals follow the hub clock (wall
    /// microseconds in production, ticks under [`MetricsHub::logical`]).
    pub fn render_profile(&self) -> String {
        let table = self.profiler.table();
        JsonValue::Object(vec![
            (
                "clock".to_string(),
                JsonValue::Str(
                    if table.clock_is_wall {
                        "wall"
                    } else {
                        "logical"
                    }
                    .to_string(),
                ),
            ),
            (
                "stages".to_string(),
                JsonValue::Array(
                    table
                        .rows
                        .iter()
                        .map(|r| {
                            JsonValue::Object(vec![
                                ("calls".to_string(), JsonValue::UInt(r.calls)),
                                ("path".to_string(), JsonValue::Str(r.path.clone())),
                                ("total_us".to_string(), JsonValue::UInt(r.total_us)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .to_compact()
    }

    /// The `/manifest` document: server configuration echoed through a
    /// [`RunManifest`] with cumulative metrics, robustness events and the
    /// stage-profile table ingested.
    pub fn render_manifest(&self, config: &[(String, String)]) -> String {
        let mut log = self.trace_log();
        let snap = self.registry.snapshot();
        for (name, v) in &snap.counters {
            let slot = log.counters.entry(name.clone()).or_insert(0);
            *slot = slot.saturating_add(*v);
        }
        for (name, v) in &snap.volatile_counters {
            let slot = log.volatile.entry(name.clone()).or_insert(0);
            *slot = slot.saturating_add(*v);
        }
        for (name, h) in &snap.volatile_hists {
            log.volatile.insert(format!("{name}.count"), h.count());
            log.volatile.insert(format!("{name}.sum"), h.sum);
        }
        let mut manifest = RunManifest::new();
        for (key, value) in config {
            manifest.set_config(key, value.clone());
        }
        manifest.ingest_metrics(&log);
        manifest.ingest_events(&log, &[]);
        manifest.ingest_stage_table(&self.profiler.table());
        manifest.to_json()
    }

    /// One cumulative counter: the registry total plus any trace-derived
    /// contribution (test and shed-policy observability).
    pub fn counter(&self, name: &str) -> u64 {
        let traced = lock(&self.cumulative)
            .counters
            .get(name)
            .copied()
            .unwrap_or(0);
        self.registry.counter_value(name).saturating_add(traced)
    }
}

/// Metric-name sanitisation for the text exposition: Prometheus accepts
/// `[a-zA-Z0-9_:]`, so dotted internal names map onto underscores.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Renders one log-linear sketch as a Prometheus summary: the four
/// standing quantiles plus `_sum`/`_count`/`_min`/`_max`.
fn render_summary(out: &mut String, name: &str, labels: &[&str], h: &LogLinearHist) {
    if h.is_empty() {
        return;
    }
    out.push_str(&format!("# TYPE {name} summary\n"));
    for (q, tag) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99"), (0.999, "0.999")] {
        let mut all: Vec<String> = labels.iter().map(|l| (*l).to_string()).collect();
        all.push(format!("quantile=\"{tag}\""));
        out.push_str(&format!("{name}{{{}}} {}\n", all.join(","), h.quantile(q)));
    }
    let suffix = |out: &mut String, part: &str, v: u64| {
        if labels.is_empty() {
            out.push_str(&format!("{name}_{part} {v}\n"));
        } else {
            out.push_str(&format!("{name}_{part}{{{}}} {v}\n", labels.join(",")));
        }
    };
    suffix(out, "sum", h.sum);
    suffix(out, "count", h.count());
    suffix(out, "min", h.min);
    suffix(out, "max", h.max);
}

/// Renders the sliding-window section: every series re-labelled with
/// `window="N"` so scrapes can tell rates from lifetime totals.
fn render_window(out: &mut String, win: &RegistrySnapshot) {
    let window_label = format!("window=\"{WINDOW_EPOCHS}\"");
    for (name, v) in &win.counters {
        out.push_str(&format!("{}{{{window_label}}} {v}\n", sanitize(name)));
    }
    for (name, h) in &win.hists {
        render_summary(out, &sanitize(name), &[&window_label], h);
    }
    for (name, v) in &win.volatile_counters {
        out.push_str(&format!(
            "{}{{lane=\"volatile\",{window_label}}} {v}\n",
            sanitize(name)
        ));
    }
    for (name, h) in &win.volatile_hists {
        render_summary(
            out,
            &sanitize(name),
            &["lane=\"volatile\"", &window_label],
            h,
        );
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Renders a `Membership` answer (shared by server and tests so bodies
/// stay byte-identical).
pub fn membership_json(m: &crate::backend::Membership) -> String {
    JsonValue::Object(vec![
        (
            "addr".to_string(),
            JsonValue::Str(ghosts_net::addr_to_string(m.addr)),
        ),
        ("bogon".to_string(), JsonValue::Bool(m.bogon)),
        ("observed".to_string(), JsonValue::Bool(m.observed)),
        (
            "routed".to_string(),
            m.routed.map_or(JsonValue::Null, |p| {
                JsonValue::Str(format!(
                    "{}/{}",
                    ghosts_net::addr_to_string(p.base()),
                    p.len()
                ))
            }),
        ),
    ])
    .to_compact()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghosts_obs::validate_jsonl;

    #[test]
    fn counters_accumulate_without_draining() {
        let hub = MetricsHub::wall();
        hub.stats().requests.inc();
        assert_eq!(hub.counter("serve.requests"), 1);
        hub.stats().requests.add(2);
        assert_eq!(hub.counter("serve.requests"), 3);
        let text = hub.render_text();
        assert!(text.contains("serve_requests 3\n"), "{text}");
    }

    #[test]
    fn reads_are_non_mutating_merge_views() {
        // The v1 hub drained its recorder on every read, so interleaved
        // readers each saw a different partial total. Reads are now pure:
        // two consecutive renders of a quiescent hub are byte-identical,
        // and a counter read between them changes nothing.
        let hub = MetricsHub::logical();
        hub.stats().requests.add(5);
        hub.stats().request_us.record(120);
        let mut log = EventLog::default();
        log.counters.insert("estimate.cells".to_string(), 7);
        hub.absorb(&log);
        hub.request_done();

        let first = hub.render_text();
        assert_eq!(hub.counter("serve.requests"), 5);
        assert_eq!(hub.counter("estimate.cells"), 7);
        let second = hub.render_text();
        assert_eq!(first, second, "metrics reads must not drain");
        assert_eq!(hub.trace_log().counters, hub.trace_log().counters);
    }

    #[test]
    fn exposition_renders_quantiles_and_lanes() {
        let hub = MetricsHub::wall();
        for v in [100u64, 200, 400, 800] {
            hub.stats().request_us.record(v);
        }
        let text = hub.render_text();
        assert!(
            text.contains("serve_request_us{lane=\"volatile\",quantile=\"0.5\"}"),
            "{text}"
        );
        assert!(text.contains("serve_request_us_sum{lane=\"volatile\"} 1500"));
        assert!(text.contains("serve_request_us_count{lane=\"volatile\"} 4"));
    }

    #[test]
    fn window_section_tracks_recent_epochs_only() {
        let hub = MetricsHub::wall();
        // Two epochs of traffic, then a quiet stretch long enough to
        // push both out of the window ring.
        for _ in 0..2 * EPOCH_EVERY {
            hub.stats().requests.inc();
            hub.request_done();
        }
        let busy = hub.render_text();
        assert!(busy.contains(&format!("serve_requests{{window=\"{WINDOW_EPOCHS}\"}} 16")));
        for _ in 0..(WINDOW_EPOCHS as u64 + 2) * EPOCH_EVERY {
            hub.request_done();
        }
        let quiet = hub.render_text();
        assert!(
            quiet.contains(&format!("serve_requests{{window=\"{WINDOW_EPOCHS}\"}} 0")),
            "{quiet}"
        );
    }

    #[test]
    fn tail_renders_schema_valid_jsonl() {
        let hub = MetricsHub::wall();
        hub.push_tail(
            TailClass::Ok,
            200,
            vec![("target".to_string(), FieldValue::Str("/healthz".into()))],
        );
        hub.push_tail(
            TailClass::Error,
            500,
            vec![("target".to_string(), FieldValue::Str("/v1/estimate".into()))],
        );
        let body = hub.render_tail(16);
        let summary = validate_jsonl(&body).expect("tail must be schema-valid ghosts-events");
        assert_eq!(summary.events, 2, "tail_retention + the OK request");
        assert_eq!(summary.errors, 1, "the 500 renders on the error channel");
        assert!(body.contains("ghosts-events/4"), "{body}");
        assert!(body.contains("tail_retention"));
    }

    #[test]
    fn manifest_echoes_config_and_metrics() {
        let hub = MetricsHub::wall();
        hub.stats().requests.add(7);
        drop(hub.profiler().scoped("serve").enter("parse"));
        let config = vec![("workers".to_string(), "4".to_string())];
        let text = hub.render_manifest(&config);
        let manifest = RunManifest::from_json(&text).expect("round-trips");
        assert_eq!(manifest.to_json(), text);
        assert!(text.contains("serve.requests"));
        assert!(text.contains("serve/parse"));
    }
}
