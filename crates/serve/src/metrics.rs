//! The server's metrics hub.
//!
//! Every request gets its own short-lived recorder span, but
//! [`ghosts_obs::Recorder::flush`] *drains* — so a long-lived process
//! needs somewhere for the drained logs to accumulate. The hub owns the
//! process-wide [`Recorder`] plus a cumulative [`EventLog`] folded
//! together with [`EventLog::merge`]; `/metrics` and `/manifest` render
//! from the cumulative log, so counters are monotone across the process
//! lifetime exactly like a real metrics endpoint.

use ghosts_obs::json::JsonValue;
use ghosts_obs::{EventLog, Recorder, RunManifest, WallClock};
use std::sync::{Arc, Mutex};

/// Shared recorder + cumulative log.
pub struct MetricsHub {
    recorder: Recorder,
    cumulative: Mutex<EventLog>,
}

impl MetricsHub {
    /// A hub driven by wall time (the serving default: request latencies
    /// land in the volatile lane, never in deterministic output).
    pub fn wall() -> Arc<Self> {
        Arc::new(Self {
            recorder: Recorder::enabled(Arc::new(WallClock::new())),
            cumulative: Mutex::new(EventLog::default()),
        })
    }

    /// The process recorder (per-request spans hang off this).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Drains the recorder into the cumulative log and returns a snapshot
    /// of the totals.
    pub fn snapshot(&self) -> EventLog {
        let fresh = self.recorder.flush();
        let mut total = match self.cumulative.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        total.merge(&fresh);
        total.clone()
    }

    /// Folds an already-flushed log (e.g. a per-request trace recorder's)
    /// into the cumulative totals.
    pub fn absorb(&self, log: &EventLog) {
        let mut total = match self.cumulative.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        total.merge(log);
    }

    /// The `/metrics` text exposition: one line per series, lexicographic
    /// within each kind, deterministic given the same history.
    ///
    /// ```text
    /// # ghosts-serve metrics
    /// counter serve.requests 3
    /// hist serve.estimate_units count=2 sum=40 min=8 max=32
    /// volatile serve.request_wall_us 1520
    /// ```
    pub fn render_text(&self) -> String {
        let log = self.snapshot();
        let mut out = String::from("# ghosts-serve metrics\n");
        for (name, value) in &log.counters {
            out.push_str(&format!("counter {name} {value}\n"));
        }
        for (name, h) in &log.hists {
            let min = if h.count == 0 { 0 } else { h.min };
            out.push_str(&format!(
                "hist {name} count={} sum={} min={} max={}\n",
                h.count, h.sum, min, h.max
            ));
        }
        for (name, value) in &log.volatile {
            out.push_str(&format!("volatile {name} {value}\n"));
        }
        out
    }

    /// The `/manifest` document: server configuration echoed through a
    /// [`RunManifest`] with cumulative metrics and robustness events
    /// (errors, degradations, fired faults) ingested.
    pub fn render_manifest(&self, config: &[(String, String)]) -> String {
        let log = self.snapshot();
        let mut manifest = RunManifest::new();
        for (key, value) in config {
            manifest.set_config(key, value.clone());
        }
        manifest.ingest_metrics(&log);
        manifest.ingest_events(&log, &[]);
        manifest.to_json()
    }

    /// Reads one cumulative counter (test and shed-policy observability).
    pub fn counter(&self, name: &str) -> u64 {
        self.snapshot().counters.get(name).copied().unwrap_or(0)
    }
}

/// Renders a `Membership` answer (shared by server and tests so bodies
/// stay byte-identical).
pub fn membership_json(m: &crate::backend::Membership) -> String {
    JsonValue::Object(vec![
        (
            "addr".to_string(),
            JsonValue::Str(ghosts_net::addr_to_string(m.addr)),
        ),
        ("bogon".to_string(), JsonValue::Bool(m.bogon)),
        ("observed".to_string(), JsonValue::Bool(m.observed)),
        (
            "routed".to_string(),
            m.routed.map_or(JsonValue::Null, |p| {
                JsonValue::Str(format!(
                    "{}/{}",
                    ghosts_net::addr_to_string(p.base()),
                    p.len()
                ))
            }),
        ),
    ])
    .to_compact()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_across_snapshots() {
        let hub = MetricsHub::wall();
        hub.recorder().add("serve.requests", 1);
        assert_eq!(hub.counter("serve.requests"), 1);
        hub.recorder().add("serve.requests", 2);
        // flush() drained after the first snapshot; merge must keep totals.
        assert_eq!(hub.counter("serve.requests"), 3);
        let text = hub.render_text();
        assert!(text.contains("counter serve.requests 3\n"), "{text}");
    }

    #[test]
    fn manifest_echoes_config_and_metrics() {
        let hub = MetricsHub::wall();
        hub.recorder().add("serve.requests", 7);
        let config = vec![("workers".to_string(), "4".to_string())];
        let text = hub.render_manifest(&config);
        let manifest = RunManifest::from_json(&text).expect("round-trips");
        assert_eq!(manifest.to_json(), text);
    }
}
