//! The `POST /v1/estimate` request schema: parsing, validation, defaults
//! and the canonical form that content-addresses the result cache.
//!
//! ```json
//! {
//!   "target": "addr",            // or "subnet" — backend granularity
//!   "window": 10,                // backend window index (omit with "table")
//!   "strata": "rir",             // stratification name, or null
//!   "table": {                   // inline mode: bring your own table
//!     "sources": 3,
//!     "histories": [[1, 300], [2, 200], [3, 60]]
//!   },
//!   "limit": 150000,             // routed-space bound for truncated cells
//!   "config": {
//!     "truncated": true,
//!     "degrade": true,
//!     "min_stratum_observed": 200,
//!     "threads": 1
//!   }
//! }
//! ```
//!
//! Every field is optional except that exactly one of `window` or `table`
//! must be present. Unknown keys are rejected (a typo would otherwise
//! silently fork the cache key space). [`EstimateRequest::canonical`]
//! materialises all defaults in sorted key order, so the digest of a
//! request is invariant under key order and spelled-out defaults.

use crate::digest::{canonicalize, digest_of};
use ghosts_core::{ContingencyTable, CrConfig, Parallelism};
use ghosts_obs::json::JsonValue;

/// Granularity of a backend-resolved estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Individual IPv4 addresses.
    Addr,
    /// /24 subnets.
    Subnet,
}

impl Target {
    /// Stable wire spelling.
    pub fn name(self) -> &'static str {
        match self {
            Target::Addr => "addr",
            Target::Subnet => "subnet",
        }
    }
}

/// An inline contingency table: capture-history masks and their counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InlineTable {
    /// Number of sources `t` (`2 ..= 16`).
    pub sources: usize,
    /// `(mask, count)` pairs; masks non-zero and `< 2^t`.
    pub histories: Vec<(u16, u64)>,
}

impl InlineTable {
    /// Materialises the [`ContingencyTable`].
    pub fn to_table(&self) -> ContingencyTable {
        let mut table = ContingencyTable::new(self.sources);
        for &(mask, count) in &self.histories {
            for _ in 0..count {
                table.record(mask);
            }
        }
        table
    }
}

/// The estimator knobs a request may set. A deliberate subset of
/// [`CrConfig`]: everything exposed here is deterministic-safe and cheap
/// to canonicalise; the rest of the config keeps its paper defaults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Knobs {
    /// Right-truncated Poisson cells (needs a `limit`).
    pub truncated: bool,
    /// Walk the graceful-degradation ladder instead of failing.
    pub degrade: bool,
    /// Minimum observed individuals for a stratum to be estimated.
    pub min_stratum_observed: u64,
    /// Worker threads for stratified fan-out (identical bytes at any
    /// setting — see `ghosts_core::parallel`).
    pub threads: u64,
}

impl Default for Knobs {
    fn default() -> Self {
        Self {
            truncated: true,
            degrade: true,
            min_stratum_observed: 200,
            threads: 1,
        }
    }
}

/// A parsed, validated estimate request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EstimateRequest {
    /// Estimate granularity (backend mode).
    pub target: Target,
    /// Backend window index.
    pub window: Option<u64>,
    /// Stratification name (backend mode).
    pub strata: Option<String>,
    /// Inline table (inline mode).
    pub table: Option<InlineTable>,
    /// Routed-space bound for truncated cells (inline mode; backends
    /// supply their own limits).
    pub limit: Option<u64>,
    /// Estimator knobs.
    pub knobs: Knobs,
}

impl EstimateRequest {
    /// Parses and validates a request document.
    ///
    /// # Errors
    ///
    /// A human-readable message describing the first problem; the server
    /// maps it to `400 Bad Request`.
    pub fn parse(doc: &JsonValue) -> Result<Self, String> {
        let map = doc.as_object().ok_or("request must be a JSON object")?;
        for (key, _) in map {
            if !matches!(
                key.as_str(),
                "target" | "window" | "strata" | "table" | "limit" | "config"
            ) {
                return Err(format!("unknown field {key:?}"));
            }
        }

        let target = match doc.get("target") {
            None | Some(JsonValue::Null) => Target::Addr,
            Some(v) => match v.as_str() {
                Some("addr") => Target::Addr,
                Some("subnet") => Target::Subnet,
                _ => return Err("target must be \"addr\" or \"subnet\"".to_string()),
            },
        };
        let window = opt_u64(doc, "window")?;
        let strata = match doc.get("strata") {
            None | Some(JsonValue::Null) => None,
            Some(v) => Some(
                v.as_str()
                    .ok_or("strata must be a string or null")?
                    .to_string(),
            ),
        };
        let limit = opt_u64(doc, "limit")?;
        let table = match doc.get("table") {
            None | Some(JsonValue::Null) => None,
            Some(v) => Some(parse_inline_table(v)?),
        };
        if table.is_some() == window.is_some() {
            return Err("exactly one of \"window\" or \"table\" is required".to_string());
        }
        if table.is_some() && strata.is_some() {
            return Err("\"strata\" applies only to window requests".to_string());
        }

        let mut knobs = Knobs::default();
        if let Some(cfg) = doc.get("config") {
            let cfg_map = cfg.as_object().ok_or("config must be an object")?;
            for (key, value) in cfg_map {
                match key.as_str() {
                    "truncated" => knobs.truncated = as_bool(value, "config.truncated")?,
                    "degrade" => knobs.degrade = as_bool(value, "config.degrade")?,
                    "min_stratum_observed" => {
                        knobs.min_stratum_observed = value
                            .as_u64()
                            .ok_or("config.min_stratum_observed must be a non-negative integer")?;
                    }
                    "threads" => {
                        let t = value
                            .as_u64()
                            .ok_or("config.threads must be a positive integer")?;
                        if t == 0 || t > 64 {
                            return Err("config.threads must be in 1..=64".to_string());
                        }
                        knobs.threads = t;
                    }
                    other => return Err(format!("unknown config field {other:?}")),
                }
            }
        }

        Ok(Self {
            target,
            window,
            strata,
            table,
            limit,
            knobs,
        })
    }

    /// The canonical form: every field materialised (defaults included),
    /// keys sorted recursively. Serialising this compactly yields the
    /// bytes the cache digest is computed over.
    pub fn canonical(&self) -> JsonValue {
        let knobs = JsonValue::Object(vec![
            ("degrade".to_string(), JsonValue::Bool(self.knobs.degrade)),
            (
                "min_stratum_observed".to_string(),
                JsonValue::UInt(self.knobs.min_stratum_observed),
            ),
            ("threads".to_string(), JsonValue::UInt(self.knobs.threads)),
            (
                "truncated".to_string(),
                JsonValue::Bool(self.knobs.truncated),
            ),
        ]);
        let table = match &self.table {
            None => JsonValue::Null,
            Some(t) => {
                let mut pairs = t.histories.clone();
                pairs.sort_unstable();
                JsonValue::Object(vec![
                    (
                        "histories".to_string(),
                        JsonValue::Array(
                            pairs
                                .iter()
                                .map(|&(mask, count)| {
                                    JsonValue::Array(vec![
                                        JsonValue::UInt(u64::from(mask)),
                                        JsonValue::UInt(count),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    ("sources".to_string(), JsonValue::UInt(t.sources as u64)),
                ])
            }
        };
        canonicalize(&JsonValue::Object(vec![
            ("config".to_string(), knobs),
            (
                "limit".to_string(),
                self.limit.map_or(JsonValue::Null, JsonValue::UInt),
            ),
            (
                "strata".to_string(),
                self.strata
                    .as_ref()
                    .map_or(JsonValue::Null, |s| JsonValue::Str(s.clone())),
            ),
            ("table".to_string(), table),
            (
                "target".to_string(),
                JsonValue::Str(self.target.name().to_string()),
            ),
            (
                "window".to_string(),
                self.window.map_or(JsonValue::Null, JsonValue::UInt),
            ),
        ]))
    }

    /// The content digest keying the result cache.
    pub fn digest(&self) -> u64 {
        digest_of(&self.canonical())
    }

    /// Builds the [`CrConfig`] this request asks for (obs scope attached
    /// by the server per request).
    pub fn cr_config(&self) -> CrConfig {
        let mut cfg = CrConfig {
            truncated: self.knobs.truncated,
            degrade: self.knobs.degrade,
            min_stratum_observed: self.knobs.min_stratum_observed,
            parallelism: Parallelism::Fixed(self.knobs.threads as usize),
            ..CrConfig::paper()
        };
        cfg.selection.parallelism = cfg.parallelism;
        cfg
    }
}

fn opt_u64(doc: &JsonValue, key: &str) -> Result<Option<u64>, String> {
    match doc.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("{key} must be a non-negative integer")),
    }
}

fn as_bool(v: &JsonValue, what: &str) -> Result<bool, String> {
    match v {
        JsonValue::Bool(b) => Ok(*b),
        _ => Err(format!("{what} must be a boolean")),
    }
}

fn parse_inline_table(v: &JsonValue) -> Result<InlineTable, String> {
    let map = v.as_object().ok_or("table must be an object")?;
    for (key, _) in map {
        if !matches!(key.as_str(), "sources" | "histories") {
            return Err(format!("unknown table field {key:?}"));
        }
    }
    let sources = v
        .get("sources")
        .and_then(JsonValue::as_u64)
        .ok_or("table.sources must be an integer")?;
    if !(2..=16).contains(&sources) {
        return Err("table.sources must be in 2..=16".to_string());
    }
    let sources = sources as usize;
    let histories = v
        .get("histories")
        .and_then(JsonValue::as_array)
        .ok_or("table.histories must be an array of [mask, count] pairs")?;
    if histories.is_empty() {
        return Err("table.histories must not be empty".to_string());
    }
    if histories.len() > (1usize << sources) {
        return Err("table.histories has more entries than capture histories".to_string());
    }
    let mut parsed = Vec::with_capacity(histories.len());
    let mut total: u64 = 0;
    for pair in histories {
        let pair = pair
            .as_array()
            .filter(|p| p.len() == 2)
            .ok_or("each history must be a [mask, count] pair")?;
        // lint: allow(panic-path) pair.len() == 2 checked by the filter above
        let mask = pair[0]
            .as_u64()
            .filter(|&m| m > 0 && m < (1u64 << sources))
            .ok_or("history mask must be non-zero and < 2^sources")?;
        // lint: allow(panic-path) pair.len() == 2 checked by the filter above
        let count = pair[1].as_u64().ok_or("history count must be an integer")?;
        total = total
            .checked_add(count)
            .ok_or("history counts overflow u64")?;
        parsed.push((mask as u16, count));
    }
    const MAX_INLINE_INDIVIDUALS: u64 = 100_000_000;
    if total > MAX_INLINE_INDIVIDUALS {
        return Err(format!(
            "inline table holds {total} individuals; limit is {MAX_INLINE_INDIVIDUALS}"
        ));
    }
    Ok(InlineTable {
        sources,
        histories: parsed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghosts_obs::json::parse;

    fn req(text: &str) -> Result<EstimateRequest, String> {
        EstimateRequest::parse(&parse(text).expect("valid json"))
    }

    #[test]
    fn window_request_with_defaults() {
        let r = req(r#"{"window":10}"#).expect("parses");
        assert_eq!(r.window, Some(10));
        assert_eq!(r.target, Target::Addr);
        assert_eq!(r.knobs, Knobs::default());
    }

    #[test]
    fn digest_invariant_under_key_order_and_defaults() {
        let a = req(r#"{"window":10,"target":"addr"}"#).expect("parses");
        let b = req(r#"{"target":"addr","config":{"threads":1,"degrade":true},"window":10}"#)
            .expect("parses");
        assert_eq!(a.digest(), b.digest());
        let c = req(r#"{"window":10,"config":{"threads":2}}"#).expect("parses");
        assert_ne!(a.digest(), c.digest(), "knob changes must change the key");
    }

    #[test]
    fn inline_table_digest_is_history_order_invariant() {
        let a = req(r#"{"table":{"sources":2,"histories":[[1,5],[2,7],[3,2]]}}"#).expect("parses");
        let b = req(r#"{"table":{"sources":2,"histories":[[3,2],[1,5],[2,7]]}}"#).expect("parses");
        assert_eq!(a.digest(), b.digest());
        let t = a.table.expect("inline").to_table();
        assert_eq!(t.observed_total(), 14);
        assert_eq!(t.num_sources(), 2);
    }

    #[test]
    fn rejects_invalid_requests() {
        for (text, needle) in [
            (r#"[]"#, "object"),
            (r#"{"window":10,"bogus":1}"#, "unknown field"),
            (r#"{}"#, "exactly one of"),
            (
                r#"{"window":1,"table":{"sources":2,"histories":[[1,1]]}}"#,
                "exactly one of",
            ),
            (r#"{"window":1,"target":"planet"}"#, "target must be"),
            (r#"{"window":1,"config":{"threads":0}}"#, "1..=64"),
            (
                r#"{"window":1,"config":{"zeal":9}}"#,
                "unknown config field",
            ),
            (r#"{"table":{"sources":1,"histories":[[1,1]]}}"#, "2..=16"),
            (r#"{"table":{"sources":2,"histories":[[4,1]]}}"#, "mask"),
            (r#"{"table":{"sources":2,"histories":[[0,1]]}}"#, "mask"),
            (r#"{"table":{"sources":2,"histories":[]}}"#, "not be empty"),
            (r#"{"table":{"sources":2},"strata":"rir"}"#, "histories"),
        ] {
            let err = req(text).expect_err(text);
            assert!(err.contains(needle), "{text}: {err} (wanted {needle:?})");
        }
    }

    #[test]
    fn strata_only_with_windows() {
        let err = req(r#"{"table":{"sources":2,"histories":[[1,1]]},"strata":"rir"}"#)
            .expect_err("must fail");
        assert!(err.contains("window requests"), "{err}");
    }

    #[test]
    fn cr_config_reflects_knobs() {
        let r = req(
            r#"{"window":3,"config":{"truncated":false,"degrade":false,"threads":4,"min_stratum_observed":50}}"#,
        )
        .expect("parses");
        let cfg = r.cr_config();
        assert!(!cfg.truncated);
        assert!(!cfg.degrade);
        assert_eq!(cfg.min_stratum_observed, 50);
        assert_eq!(cfg.parallelism.threads(), 4);
        assert_eq!(cfg.selection.parallelism.threads(), 4);
    }
}
