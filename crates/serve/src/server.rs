//! The server proper: listener, fixed worker pool, bounded accept queue
//! with load shedding, routing, and the estimate handler that ties the
//! cache, the single-flight table and the fault probes together.
//!
//! Concurrency model (deliberately boring): one acceptor thread pushes
//! connections into a bounded queue; `workers` threads pop and serve one
//! request per connection (`Connection: close`). When the queue is full
//! the *acceptor* answers `503` + `Retry-After` immediately — overload
//! sheds at the door instead of growing an invisible backlog.
//!
//! Determinism contract: response *bodies* are pure functions of the
//! canonical request (the content digest), so cache replays are
//! byte-identical. Anything wall-clock-shaped — request latency, socket
//! timeouts — lives in headers, the volatile metrics lane, or socket
//! options, never in a body.

use crate::backend::Backend;
use crate::cache::{CachedResponse, EstimateCache, Lookup};
use crate::coalesce::{Role, SingleFlight};
use crate::digest::digest_hex;
use crate::http::{read_request, ParseError, Request, Response};
use crate::ingest::{Applied, IngestStore, ObservationBatch, MAX_KEY_BYTES};
use crate::metrics::{membership_json, MetricsHub, SLOW_REQUEST_US, TAIL_CAPACITY};
use crate::request::EstimateRequest;
use ghosts_core::{
    estimate_stratified, estimate_table, CrConfig, CrEstimate, Degradation, StratifiedEstimate,
};
use ghosts_durable::{DurableLog, WalError};
use ghosts_faultinject as faults;
use ghosts_obs::json::{parse as parse_json, JsonValue};
use ghosts_obs::{FieldValue, LogicalClock, Recorder, Scope, TailClass};
use std::collections::VecDeque;
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Fault-probe site for the estimate handler (worker-panic → 500 path).
pub const FAULT_SITE_HANDLER: &str = "serve.handler";
/// Fault-probe site for the result cache (drop-source → bypass path).
pub const FAULT_SITE_CACHE: &str = "serve.cache";

/// Tuning knobs for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Worker threads (minimum 1).
    pub workers: usize,
    /// Accepted-but-unserved connections tolerated before shedding.
    pub max_pending: usize,
    /// In-memory cache entries.
    pub cache_capacity: usize,
    /// On-disk spill directory for the cache.
    pub cache_dir: Option<std::path::PathBuf>,
    /// Socket read/write timeout in milliseconds (wall time is confined
    /// to the socket layer; bodies never depend on it).
    pub io_timeout_ms: u64,
    /// Durable state directory for `POST /v1/observations`. `None`
    /// disables the ingest plane (the endpoints answer 404 with a hint).
    pub ingest_dir: Option<std::path::PathBuf>,
    /// Observation batches admitted concurrently before the ingest plane
    /// answers `429` + `Retry-After` (the bounded ingest queue).
    pub max_inflight: usize,
    /// Auto-checkpoint after every N applied batches (0 disables; the
    /// drain endpoint always checkpoints).
    pub checkpoint_every: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            max_pending: 64,
            cache_capacity: 256,
            cache_dir: None,
            io_timeout_ms: 10_000,
            ingest_dir: None,
            max_inflight: 32,
            checkpoint_every: 32,
        }
    }
}

/// The durable ingest plane: the WAL+checkpoint pair and the replayed
/// in-memory state, guarded by one mutex (appends serialize on fsync
/// anyway), plus the backpressure counter and the drain latch.
struct IngestPlane {
    state: Mutex<(DurableLog, IngestStore)>,
    inflight: AtomicU64,
    draining: AtomicBool,
    /// What recovery found at bind time, frozen for the stats endpoint.
    recovery: ghosts_durable::RecoveryReport,
}

impl IngestPlane {
    /// Opens the state directory, runs recovery (checkpoint + WAL
    /// suffix), folds the report into the hub's durability counters and
    /// emits the `wal_recovered` / `wal_quarantined` events.
    fn open(dir: &std::path::Path, hub: &MetricsHub) -> std::io::Result<IngestPlane> {
        let (log, recovery) = DurableLog::open(dir).map_err(wal_to_io)?;
        let mut store = match &recovery.checkpoint {
            Some(c) => IngestStore::from_snapshot(&c.state).map_err(|m| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("checkpoint state does not decode: {m}"),
                )
            })?,
            None => IngestStore::new(),
        };
        let mut replayed = 0u64;
        for (_, payload) in &recovery.replay {
            // Acked payloads always parse (they were validated before the
            // append); duplicates converge via the key set.
            if let Ok(text) = std::str::from_utf8(payload) {
                if store.apply_payload(text).is_ok() {
                    replayed += 1;
                }
            }
        }
        let report = &recovery.report;
        let stats = hub.stats();
        stats.wal_recovered_records.add(report.wal_records_replayed);
        stats.wal_torn_truncated.add(report.torn_tail_bytes);
        stats
            .wal_segments_quarantined
            .add(report.segments_quarantined);
        stats
            .checkpoints_quarantined
            .add(report.checkpoints_quarantined);

        let recorder = Recorder::enabled(Arc::new(LogicalClock::new()));
        let span = recorder.root("serve").child("recovery");
        span.event(
            "wal_recovered",
            &[
                (
                    "checkpoint_generation",
                    FieldValue::U64(report.checkpoint_generation.unwrap_or(0)),
                ),
                (
                    "records_scanned",
                    FieldValue::U64(report.wal_records_scanned),
                ),
                ("records_replayed", FieldValue::U64(replayed)),
                ("torn_tail_bytes", FieldValue::U64(report.torn_tail_bytes)),
            ],
        );
        if report.segments_quarantined > 0 || report.checkpoints_quarantined > 0 {
            span.error(
                "wal_quarantined",
                &[
                    ("segments", FieldValue::U64(report.segments_quarantined)),
                    (
                        "checkpoints",
                        FieldValue::U64(report.checkpoints_quarantined),
                    ),
                ],
            );
        }
        hub.absorb(&recorder.flush());

        Ok(IngestPlane {
            state: Mutex::new((log, store)),
            inflight: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            recovery: recovery.report,
        })
    }
}

fn wal_to_io(e: WalError) -> std::io::Error {
    match e {
        WalError::Io(io) => io,
        other => std::io::Error::other(other.to_string()),
    }
}

struct Queue {
    pending: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
}

struct Shared {
    backend: Arc<dyn Backend>,
    hub: Arc<MetricsHub>,
    cache: EstimateCache,
    flights: SingleFlight,
    queue: Queue,
    stop: AtomicBool,
    next_request: AtomicU64,
    ingest: Option<IngestPlane>,
    config: ServerConfig,
}

/// A running server. Dropping the handle does NOT stop it; call
/// [`ServerHandle::shutdown`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    local_addr: std::net::SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// The server entry point.
pub struct Server;

impl Server {
    /// Binds, spawns the acceptor and worker pool, and returns a handle.
    ///
    /// # Errors
    ///
    /// Propagates the bind error (address in use, permission, ...).
    pub fn bind(
        config: ServerConfig,
        backend: Arc<dyn Backend>,
        hub: Arc<MetricsHub>,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let cache = EstimateCache::new(config.cache_capacity, config.cache_dir.clone());
        // Recovery runs before the first connection is accepted: a client
        // can never observe a partially-replayed store.
        let ingest = match &config.ingest_dir {
            Some(dir) => Some(IngestPlane::open(dir, &hub)?),
            None => None,
        };
        let shared = Arc::new(Shared {
            backend,
            hub,
            cache,
            flights: SingleFlight::new(),
            queue: Queue {
                pending: Mutex::new(VecDeque::new()),
                ready: Condvar::new(),
            },
            stop: AtomicBool::new(false),
            next_request: AtomicU64::new(0),
            ingest,
            config,
        });

        let mut workers = Vec::with_capacity(shared.config.workers.max(1));
        for _ in 0..shared.config.workers.max(1) {
            let shared = Arc::clone(&shared);
            workers.push(std::thread::spawn(move || worker_loop(&shared)));
        }
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || acceptor_loop(&listener, &shared))
        };

        Ok(ServerHandle {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            workers,
        })
    }
}

impl ServerHandle {
    /// The bound address (use this to learn the ephemeral port).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// The metrics hub the server records into.
    pub fn hub(&self) -> &Arc<MetricsHub> {
        &self.shared.hub
    }

    /// Whether `POST /v1/admin/drain` has been accepted: the durable state
    /// is checkpointed and new observations are being refused, so the
    /// process can exit without losing an ack. Always `false` when the
    /// ingest plane is disabled.
    pub fn drain_requested(&self) -> bool {
        self.shared
            .ingest
            .as_ref()
            .is_some_and(|p| p.draining.load(Ordering::SeqCst))
    }

    /// Stops accepting, drains workers and joins every thread. Idempotent.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        self.shared.queue.ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn acceptor_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => continue,
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let timeout = Duration::from_millis(shared.config.io_timeout_ms.max(1));
        let _ = stream.set_read_timeout(Some(timeout));
        let _ = stream.set_write_timeout(Some(timeout));

        let mut pending = lock(&shared.queue.pending);
        if pending.len() >= shared.config.max_pending {
            drop(pending);
            shed(shared, stream);
            continue;
        }
        pending.push_back(stream);
        drop(pending);
        shared.queue.ready.notify_one();
    }
}

/// Overload: answer 503 from the acceptor without occupying a worker.
/// Shed rejections land in the request tail (always-retained class) even
/// though they never get a request id.
fn shed(shared: &Shared, stream: TcpStream) {
    shared.hub.stats().shed.inc();
    shared.hub.push_tail(
        TailClass::Shed,
        503,
        vec![(
            "reason".to_string(),
            FieldValue::Str("queue-full".to_string()),
        )],
    );
    let body = r#"{"error":"server overloaded, retry shortly"}"#;
    let response = Response::json(503, body.to_string()).with_header("retry-after", "1");
    respond_and_drain(stream, &response);
}

/// Writes a response to a peer whose request was not fully read, without
/// losing it to a TCP reset: FIN our side first (so the peer's read
/// completes), then drain a bounded amount of its unread input before
/// dropping the socket. Closing with unread bytes queued would send RST,
/// which discards the peer's receive buffer — including our response.
fn respond_and_drain(mut stream: TcpStream, response: &Response) {
    let _ = response.write_to(&mut stream);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut sink = [0u8; 4096];
    let mut drained = 0usize;
    while drained < 256 * 1024 {
        match std::io::Read::read(&mut stream, &mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut pending = lock(&shared.queue.pending);
            loop {
                if let Some(s) = pending.pop_front() {
                    break s;
                }
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                pending = match shared.queue.ready.wait(pending) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        shared.queue.ready.notify_one();
        handle_connection(shared, stream);
    }
}

fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let request = match read_request(&mut stream) {
        Ok(r) => r,
        Err(ParseError::Eof) => return, // closed before sending anything
        Err(e) => {
            shared.hub.stats().bad_request.inc();
            shared.hub.push_tail(
                TailClass::Error,
                e.status(),
                vec![("reason".to_string(), FieldValue::Str(e.label().to_string()))],
            );
            shared.hub.request_done();
            let body = format!(
                "{{\"error\":{}}}",
                JsonValue::Str(e.label().to_string()).to_compact()
            );
            // The request was not fully read (oversized head/body, garbage):
            // drain before closing so the error response survives delivery.
            respond_and_drain(stream, &Response::json(e.status(), body));
            return;
        }
    };
    if is_ops_read(&request) {
        // Ops-surface reads are observers, not workload: they bypass
        // request accounting entirely (no counter, no latency sample, no
        // tail entry, no epoch tick), so consecutive scrapes of a
        // quiescent server are byte-identical.
        let response = route(shared, &request);
        let _ = response.write_to(&mut stream);
        return;
    }
    let start = shared.hub.now();
    shared.hub.stats().requests.inc();
    let response = route(shared, &request);
    let elapsed = shared.hub.now().saturating_sub(start);
    shared.hub.stats().request_us.record(elapsed);
    push_request_tail(shared, &request, &response, elapsed);
    shared.hub.request_done();
    let _ = response.write_to(&mut stream);
}

/// Whether a request reads the telemetry plane rather than doing work.
fn is_ops_read(request: &Request) -> bool {
    request.method == "GET"
        && (request.target == "/metrics"
            || request.target == "/v1/profile"
            || request.target == "/v1/trace/tail"
            || request.target.starts_with("/v1/trace/tail?"))
}

/// Offers one finished request to the tail ring as a wide event. The
/// class drives retention: errors, degraded answers and slow outliers are
/// always kept; routine successes are admission-sampled.
fn push_request_tail(shared: &Shared, request: &Request, response: &Response, elapsed: u64) {
    let class = if response.status >= 400 {
        TailClass::Error
    } else if response.status == 203 {
        TailClass::Degraded
    } else if elapsed >= SLOW_REQUEST_US {
        TailClass::Slow
    } else {
        TailClass::Ok
    };
    let mut fields = vec![
        (
            "method".to_string(),
            FieldValue::Str(request.method.clone()),
        ),
        (
            "target".to_string(),
            FieldValue::Str(request.target.clone()),
        ),
    ];
    if let Some((_, disposition)) = response.headers.iter().find(|(k, _)| k == "x-cache") {
        fields.push(("cache".to_string(), FieldValue::Str(disposition.clone())));
    }
    fields.push(("latency_us".to_string(), FieldValue::U64(elapsed)));
    shared.hub.push_tail(class, response.status, fields);
}

fn route(shared: &Shared, request: &Request) -> Response {
    match (request.method.as_str(), request.target.as_str()) {
        ("GET", "/healthz") => healthz(shared),
        ("GET", "/metrics") => Response::text(200, &shared.hub.render_text()),
        ("GET", "/manifest") => {
            let mut config = server_config_pairs(shared);
            config.extend(shared.backend.info());
            Response::json(200, shared.hub.render_manifest(&config))
        }
        ("GET", "/v1/profile") => Response::json(200, shared.hub.render_profile()),
        ("GET", target) if target == "/v1/trace/tail" || target.starts_with("/v1/trace/tail?") => {
            trace_tail(shared, target)
        }
        ("GET", target) if target.starts_with("/v1/membership/") => {
            // lint: allow(panic-path) starts_with guarantees the ASCII prefix is a char boundary
            membership(shared, &target["/v1/membership/".len()..])
        }
        ("POST", "/v1/estimate") => estimate(shared, request),
        ("GET", "/v1/estimate") => {
            Response::json(405, r#"{"error":"use POST for /v1/estimate"}"#.to_string())
                .with_header("allow", "POST")
        }
        ("POST", "/v1/observations") => observations(shared, request),
        ("GET", "/v1/observations/stats") => observations_stats(shared),
        ("GET", "/v1/observations/estimate") => observations_estimate(shared),
        ("POST", "/v1/admin/drain") => drain(shared),
        _ => Response::json(404, r#"{"error":"no such resource"}"#.to_string()),
    }
}

/// The response when an ingest endpoint is hit without an ingest plane.
fn ingest_disabled() -> Response {
    Response::json(
        404,
        r#"{"error":"ingest disabled: start the server with an ingest directory (--ingest-dir)"}"#
            .to_string(),
    )
}

/// `POST /v1/observations` — durable ingestion with idempotency keys.
///
/// Admission control happens before any disk work: past `max_inflight`
/// concurrently admitted batches the endpoint sheds with `429` +
/// `Retry-After`, and a draining server refuses with `503`. An admitted
/// batch is acked (`201`) only after its canonical payload is fsynced to
/// the WAL; a duplicate idempotency key acks `200` without re-applying.
fn observations(shared: &Shared, request: &Request) -> Response {
    let Some(plane) = shared.ingest.as_ref() else {
        return ingest_disabled();
    };
    shared.hub.stats().ingest_received.inc();
    if plane.draining.load(Ordering::SeqCst) {
        shared.hub.stats().ingest_rejected.inc();
        return Response::json(
            503,
            r#"{"error":"server is draining; observations refused","retryable":true}"#.to_string(),
        )
        .with_header("retry-after", "1");
    }
    // Bounded ingest: claim a slot or shed. The counter (not the mutex)
    // carries the bound so rejections never queue behind an fsync.
    let slot = plane.inflight.fetch_add(1, Ordering::SeqCst);
    if slot >= shared.config.max_inflight as u64 {
        plane.inflight.fetch_sub(1, Ordering::SeqCst);
        shared.hub.stats().ingest_rejected.inc();
        return Response::json(
            429,
            r#"{"error":"ingest queue full, retry shortly","retryable":true}"#.to_string(),
        )
        .with_header("retry-after", "1");
    }

    let request_id = shared.next_request.fetch_add(1, Ordering::SeqCst);
    let recorder = Recorder::enabled(Arc::new(LogicalClock::new()));
    let span = recorder.root("serve").child_idx("ingest", request_id);
    let outcome = faults::task_scope(request_id as usize, || {
        catch_unwind(AssertUnwindSafe(|| {
            observations_inner(shared, plane, request, &span)
        }))
    });
    plane.inflight.fetch_sub(1, Ordering::SeqCst);
    shared.hub.absorb(&recorder.flush());
    match outcome {
        Ok(response) => response,
        Err(panic) => {
            shared.hub.stats().panic.inc();
            let body = format!(
                "{{\"error\":{}}}",
                JsonValue::Str(ghosts_core::panic_message(&panic)).to_compact()
            );
            Response::json(500, body)
        }
    }
}

fn observations_inner(
    shared: &Shared,
    plane: &IngestPlane,
    request: &Request,
    span: &Scope,
) -> Response {
    let doc = match std::str::from_utf8(&request.body)
        .ok()
        .and_then(|text| parse_json(text).ok())
    {
        Some(doc) => doc,
        None => {
            shared.hub.stats().ingest_rejected.inc();
            return Response::json(400, r#"{"error":"body is not valid JSON"}"#.to_string());
        }
    };
    let mut batch = match ObservationBatch::parse(&doc) {
        Ok(b) => b,
        Err(message) => {
            shared.hub.stats().ingest_rejected.inc();
            return Response::json(
                400,
                format!("{{\"error\":{}}}", JsonValue::Str(message).to_compact()),
            );
        }
    };
    // An `idempotency-key` header overrides the body key, so a retrying
    // client can stamp the key once and reuse it across attempts.
    if let Some(key) = request.header("idempotency-key") {
        if key.is_empty() || key.len() > MAX_KEY_BYTES {
            shared.hub.stats().ingest_rejected.inc();
            return Response::json(
                400,
                r#"{"error":"idempotency-key header must be 1..=128 bytes"}"#.to_string(),
            );
        }
        batch.key = key.to_string();
    }
    let payload = batch.canonical_payload();

    let mut state = lock(&plane.state);
    let (log, store) = &mut *state;
    if store.contains_key(&batch.key) {
        shared.hub.stats().ingest_duplicate.inc();
        span.event(
            "ingest_duplicate",
            &[("key", FieldValue::Str(batch.key.clone()))],
        );
        let body = JsonValue::Object(vec![
            ("key".to_string(), JsonValue::Str(batch.key)),
            (
                "status".to_string(),
                JsonValue::Str("duplicate".to_string()),
            ),
        ]);
        return Response::json(200, body.to_compact());
    }
    // Durability point: ack only after the append (write + fsync) returns.
    let lsn = match log.append(payload.as_bytes()) {
        Ok(lsn) => lsn,
        Err(e) => {
            shared.hub.stats().wal_append_errors.inc();
            let body = format!(
                "{{\"error\":{},\"retryable\":true}}",
                JsonValue::Str(format!("durable append failed, not acknowledged: {e}"))
                    .to_compact()
            );
            return Response::json(503, body).with_header("retry-after", "1");
        }
    };
    shared.hub.stats().wal_appends.inc();
    let new_addrs = match store.apply_payload(&payload) {
        Ok(Applied::Fresh { new_addrs }) => new_addrs,
        // A canonical payload that survived parse + dup-check re-applies
        // cleanly; this arm is unreachable but fails closed.
        Ok(Applied::Duplicate) | Err(_) => 0,
    };
    shared.hub.stats().ingest_applied.inc();
    span.event(
        "ingest",
        &[
            ("key", FieldValue::Str(batch.key.clone())),
            ("lsn", FieldValue::U64(lsn)),
            ("new_addrs", FieldValue::U64(new_addrs as u64)),
        ],
    );

    let every = shared.config.checkpoint_every;
    if every > 0 && store.applied_batches() % every == 0 {
        match log.checkpoint(&store.snapshot_bytes()) {
            Ok(generation) => {
                shared.hub.stats().checkpoint_written.inc();
                span.event(
                    "checkpoint_written",
                    &[("generation", FieldValue::U64(generation))],
                );
            }
            // The ack already happened at the WAL; a failed checkpoint
            // costs replay time, never data.
            Err(_) => shared.hub.stats().checkpoint_failed.inc(),
        }
    }

    let body = JsonValue::Object(vec![
        ("key".to_string(), JsonValue::Str(batch.key)),
        ("lsn".to_string(), JsonValue::UInt(lsn)),
        ("new_addrs".to_string(), JsonValue::UInt(new_addrs as u64)),
        ("status".to_string(), JsonValue::Str("applied".to_string())),
    ]);
    Response::json(201, body.to_compact())
}

/// `GET /v1/observations/stats` — the ingest plane's durable state: batch
/// and address counts, the order-independent state digest, the recovery
/// report from the last restart, and the WAL/checkpoint positions.
fn observations_stats(shared: &Shared) -> Response {
    let Some(plane) = shared.ingest.as_ref() else {
        return ingest_disabled();
    };
    let state = lock(&plane.state);
    let (log, store) = &*state;
    let body = JsonValue::Object(vec![
        ("addrs".to_string(), JsonValue::UInt(store.addr_count())),
        (
            "applied".to_string(),
            JsonValue::UInt(store.applied_batches()),
        ),
        (
            "digest".to_string(),
            JsonValue::Str(digest_hex(store.digest())),
        ),
        (
            "draining".to_string(),
            JsonValue::Bool(plane.draining.load(Ordering::SeqCst)),
        ),
        ("generation".to_string(), JsonValue::UInt(log.generation())),
        ("next_lsn".to_string(), JsonValue::UInt(log.next_lsn())),
        (
            "recovery".to_string(),
            JsonValue::Object(vec![
                (
                    "checkpoint_generation".to_string(),
                    plane
                        .recovery
                        .checkpoint_generation
                        .map_or(JsonValue::Null, JsonValue::UInt),
                ),
                (
                    "checkpoints_quarantined".to_string(),
                    JsonValue::UInt(plane.recovery.checkpoints_quarantined),
                ),
                (
                    "segments_quarantined".to_string(),
                    JsonValue::UInt(plane.recovery.segments_quarantined),
                ),
                (
                    "torn_tail_bytes".to_string(),
                    JsonValue::UInt(plane.recovery.torn_tail_bytes),
                ),
                (
                    "wal_records_replayed".to_string(),
                    JsonValue::UInt(plane.recovery.wal_records_replayed),
                ),
                (
                    "wal_records_scanned".to_string(),
                    JsonValue::UInt(plane.recovery.wal_records_scanned),
                ),
            ]),
        ),
        (
            "sources".to_string(),
            JsonValue::Array(
                store
                    .source_names()
                    .into_iter()
                    .map(JsonValue::Str)
                    .collect(),
            ),
        ),
    ]);
    Response::json(200, body.to_compact())
}

/// `GET /v1/observations/estimate` — runs the paper-configuration
/// estimator over the ingested per-source address sets. The body is the
/// same canonical form `/v1/estimate` produces, so crash-recovery byte-
/// identity can be asserted end to end.
fn observations_estimate(shared: &Shared) -> Response {
    let Some(plane) = shared.ingest.as_ref() else {
        return ingest_disabled();
    };
    let table = {
        let state = lock(&plane.state);
        if state.1.source_count() == 0 {
            return Response::json(
                422,
                r#"{"error":"no observations ingested yet"}"#.to_string(),
            );
        }
        state.1.table()
    };
    shared.hub.stats().estimate_computed.inc();
    match estimate_table(&table, None, &CrConfig::paper()) {
        Ok(est) => {
            let status = if est.degraded.is_some() { 203 } else { 200 };
            Response::json(status, estimate_json(&est))
        }
        Err(e) => Response::json(
            422,
            JsonValue::Object(vec![
                ("error".to_string(), JsonValue::Str(e.to_string())),
                ("kind".to_string(), JsonValue::Str(e.kind().to_string())),
            ])
            .to_compact(),
        ),
    }
}

/// `POST /v1/admin/drain` — graceful shutdown protocol: checkpoint the
/// durable state, then latch the drain flag so new observations are
/// refused (`503`) and the process owner (see the `serve` binary) knows
/// it is safe to exit. Idempotent; repeated drains re-checkpoint.
fn drain(shared: &Shared) -> Response {
    let Some(plane) = shared.ingest.as_ref() else {
        return ingest_disabled();
    };
    let recorder = Recorder::enabled(Arc::new(LogicalClock::new()));
    let span = recorder.root("serve").child("drain");
    let mut state = lock(&plane.state);
    let (log, store) = &mut *state;
    let response = match log.checkpoint(&store.snapshot_bytes()) {
        Ok(generation) => {
            shared.hub.stats().checkpoint_written.inc();
            plane.draining.store(true, Ordering::SeqCst);
            span.event(
                "drain",
                &[
                    ("generation", FieldValue::U64(generation)),
                    ("applied", FieldValue::U64(store.applied_batches())),
                ],
            );
            let body = JsonValue::Object(vec![
                (
                    "digest".to_string(),
                    JsonValue::Str(digest_hex(store.digest())),
                ),
                ("generation".to_string(), JsonValue::UInt(generation)),
                ("status".to_string(), JsonValue::Str("draining".to_string())),
            ]);
            Response::json(200, body.to_compact())
        }
        Err(e) => {
            shared.hub.stats().checkpoint_failed.inc();
            let body = format!(
                "{{\"error\":{},\"retryable\":true}}",
                JsonValue::Str(format!("drain checkpoint failed: {e}")).to_compact()
            );
            Response::json(503, body).with_header("retry-after", "1")
        }
    };
    drop(state);
    shared.hub.absorb(&recorder.flush());
    response
}

fn server_config_pairs(shared: &Shared) -> Vec<(String, String)> {
    vec![
        (
            "serve.workers".to_string(),
            shared.config.workers.to_string(),
        ),
        (
            "serve.max_pending".to_string(),
            shared.config.max_pending.to_string(),
        ),
        (
            "serve.cache_capacity".to_string(),
            shared.config.cache_capacity.to_string(),
        ),
        (
            "serve.cache_dir".to_string(),
            shared
                .config
                .cache_dir
                .as_ref()
                .map_or("(none)".to_string(), |d| d.display().to_string()),
        ),
        (
            "serve.ingest_dir".to_string(),
            shared
                .config
                .ingest_dir
                .as_ref()
                .map_or("(none)".to_string(), |d| d.display().to_string()),
        ),
        (
            "serve.max_inflight".to_string(),
            shared.config.max_inflight.to_string(),
        ),
        (
            "serve.checkpoint_every".to_string(),
            shared.config.checkpoint_every.to_string(),
        ),
    ]
}

fn healthz(shared: &Shared) -> Response {
    let mut entries = vec![
        ("status".to_string(), JsonValue::Str("ok".to_string())),
        (
            "workers".to_string(),
            JsonValue::UInt(shared.config.workers as u64),
        ),
        (
            "cache_entries".to_string(),
            JsonValue::UInt(shared.cache.len() as u64),
        ),
    ];
    for (k, v) in shared.backend.info() {
        entries.push((k, JsonValue::Str(v)));
    }
    entries.sort_by(|(a, _), (b, _)| a.cmp(b));
    entries.dedup_by(|(a, _), (b, _)| a == b);
    Response::json(200, JsonValue::Object(entries).to_compact())
}

/// `GET /v1/trace/tail?n=` — the most recent `n` retained wide events as
/// `ghosts-events/4` JSONL (default and cap: the ring capacity).
fn trace_tail(shared: &Shared, target: &str) -> Response {
    let parsed: Result<usize, _> = target
        .split_once('?')
        .and_then(|(_, query)| query.split('&').find_map(|kv| kv.strip_prefix("n=")))
        .map_or(Ok(TAIL_CAPACITY), str::parse);
    match parsed {
        Ok(n) => Response::text(200, &shared.hub.render_tail(n.min(TAIL_CAPACITY))),
        Err(_) => Response::json(
            400,
            r#"{"error":"n must be a non-negative integer"}"#.to_string(),
        ),
    }
}

fn membership(shared: &Shared, raw: &str) -> Response {
    match ghosts_net::addr_from_str(raw) {
        Ok(addr) => {
            shared.hub.stats().membership.inc();
            let m = shared.backend.membership(addr);
            Response::json(200, membership_json(&m))
        }
        Err(_) => Response::json(
            400,
            format!(
                "{{\"error\":{}}}",
                JsonValue::Str(format!("not an IPv4 address: {raw}")).to_compact()
            ),
        ),
    }
}

/// The estimate pipeline: parse → digest → (fault probe) cache →
/// single-flight → compute → store. Panics anywhere inside are caught
/// per-request; the worker survives and answers 500 with a trace.
fn estimate(shared: &Shared, request: &Request) -> Response {
    shared.hub.stats().estimate_received.inc();
    // The `serve/parse` stage covers body decode + request validation.
    let parse_stage = shared.hub.profiler().scoped("serve").enter("parse");
    let doc = match std::str::from_utf8(&request.body)
        .ok()
        .and_then(|text| parse_json(text).ok())
    {
        Some(doc) => doc,
        None => {
            shared.hub.stats().bad_request.inc();
            return Response::json(400, r#"{"error":"body is not valid JSON"}"#.to_string());
        }
    };
    let req = match EstimateRequest::parse(&doc) {
        Ok(r) => r,
        Err(message) => {
            shared.hub.stats().bad_request.inc();
            return Response::json(
                400,
                format!("{{\"error\":{}}}", JsonValue::Str(message).to_compact()),
            );
        }
    };
    drop(parse_stage);
    let request_id = shared.next_request.fetch_add(1, Ordering::SeqCst);
    let digest = req.digest();

    // Per-request trace recorder (logical clock: traces stay
    // deterministic; wall time lives in the hub's volatile lane). Kept
    // outside `catch_unwind` so events recorded before a panic survive
    // into the 500 response and the cumulative log.
    let recorder = Recorder::enabled(Arc::new(LogicalClock::new()));
    let span = recorder.root("serve").child_idx("request", request_id);
    span.event(
        "estimate",
        &[("digest", FieldValue::Str(digest_hex(digest)))],
    );

    let outcome = faults::task_scope(request_id as usize, || {
        catch_unwind(AssertUnwindSafe(|| {
            estimate_inner(shared, &req, digest, &span)
        }))
    });
    let response = match outcome {
        Ok(response) => response,
        Err(panic) => {
            shared.hub.stats().panic.inc();
            span.error(
                "handler-panic",
                &[
                    (
                        "message",
                        FieldValue::Str(ghosts_core::panic_message(&panic)),
                    ),
                    ("request", FieldValue::U64(request_id)),
                ],
            );
            let log = recorder.flush();
            let trace = log.to_jsonl();
            shared.hub.absorb(&log);
            let body = JsonValue::Object(vec![
                (
                    "error".to_string(),
                    JsonValue::Str("internal server error".to_string()),
                ),
                ("request".to_string(), JsonValue::UInt(request_id)),
                ("trace".to_string(), JsonValue::Str(trace)),
            ]);
            return Response::json(500, body.to_compact())
                .with_header("x-cache-key", &digest_hex(digest));
        }
    };
    shared.hub.absorb(&recorder.flush());
    response.with_header("x-cache-key", &digest_hex(digest))
}

fn estimate_inner(shared: &Shared, req: &EstimateRequest, digest: u64, span: &Scope) -> Response {
    // Handler fault probe: a worker-panic rule proves the 500 path.
    if let Some(fault) = faults::fire(FAULT_SITE_HANDLER) {
        span.fault_injected(
            FAULT_SITE_HANDLER,
            &[("kind", FieldValue::Str(fault.name().to_string()))],
        );
        if fault == faults::Fault::WorkerPanic {
            // lint: allow(panic-path) deliberate: injected fault, trapped by the handler's catch_unwind
            panic!("fault injection: {} at {FAULT_SITE_HANDLER}", fault.name());
        }
    }

    // Cache fault probe: a drop-source rule bypasses both tiers (and the
    // store below), proving results stay correct without the cache.
    let bypass_cache = match faults::fire(FAULT_SITE_CACHE) {
        Some(fault) => {
            span.fault_injected(
                FAULT_SITE_CACHE,
                &[("kind", FieldValue::Str(fault.name().to_string()))],
            );
            fault == faults::Fault::DropSource
        }
        None => false,
    };

    if bypass_cache {
        shared.hub.stats().cache_bypassed.inc();
        let (status, body) = compute(shared, req, span);
        return Response::json(status, body).with_header("x-cache", "bypass");
    }

    // The `serve/cache` stage covers the two-tier lookup only; stores ride
    // inside the compute path.
    let lookup = {
        let _stage = shared.hub.profiler().scoped("serve").enter("cache");
        shared.cache.lookup(digest)
    };
    match lookup {
        Lookup::Memory(r) => {
            shared.hub.stats().cache_hit_mem.inc();
            return Response::json(r.status, r.body.clone()).with_header("x-cache", "hit-mem");
        }
        Lookup::Disk(r) => {
            shared.hub.stats().cache_hit_disk.inc();
            return Response::json(r.status, r.body.clone()).with_header("x-cache", "hit-disk");
        }
        Lookup::Quarantined => {
            // A corrupt spill was renamed `*.corrupt` by the cache; the
            // request recomputes (and re-stores) as an ordinary miss.
            shared.hub.stats().cache_quarantined.inc();
            shared.hub.stats().cache_miss.inc();
        }
        Lookup::Miss => shared.hub.stats().cache_miss.inc(),
    }

    match shared.flights.join(digest) {
        Role::Leader(guard) => {
            let (status, body) = compute(shared, req, span);
            if status == 200 || status == 203 {
                let stored = shared.cache.store(
                    digest,
                    CachedResponse {
                        status,
                        body: body.clone(),
                    },
                );
                guard.complete(stored);
            }
            // On error statuses the guard drops here, poisoning the
            // flight: waiters recompute and see the error themselves.
            Response::json(status, body).with_header("x-cache", "miss")
        }
        Role::Waiter(Some(r)) => {
            shared.hub.stats().singleflight_waited.inc();
            Response::json(r.status, r.body.clone()).with_header("x-cache", "coalesced")
        }
        Role::Waiter(None) => {
            shared.hub.stats().singleflight_leader_failed.inc();
            let (status, body) = compute(shared, req, span);
            Response::json(status, body).with_header("x-cache", "miss")
        }
    }
}

/// Runs the estimator for a request. Returns `(status, body)`; bodies are
/// canonical compact JSON — the bytes that get cached and replayed.
fn compute(shared: &Shared, req: &EstimateRequest, span: &Scope) -> (u16, String) {
    shared.hub.stats().estimate_computed.inc();
    let spec = match &req.table {
        Some(inline) => crate::backend::TableSpec {
            tables: vec![inline.to_table()],
            limits: req.limit.map(|l| vec![l]),
            labels: Vec::new(),
        },
        None => {
            shared.hub.stats().backend_resolve.inc();
            match shared.backend.resolve(req) {
                Ok(spec) => spec,
                Err(e) => {
                    span.error(
                        "resolve",
                        &[("message", FieldValue::Str(e.message().to_string()))],
                    );
                    return (
                        e.status(),
                        format!(
                            "{{\"error\":{}}}",
                            JsonValue::Str(e.message().to_string()).to_compact()
                        ),
                    );
                }
            }
        }
    };

    let mut cfg = req.cr_config();
    cfg.obs = span.child("estimate");
    // The estimator attributes its own `fit`/`select`/`ci` stages under
    // `estimate/`; `serve/render` below covers body serialisation.
    cfg.profile = shared.hub.profiler().scoped("estimate");
    let render_stages = shared.hub.profiler().scoped("serve");

    if spec.tables.len() == 1 && spec.labels.is_empty() {
        // lint: allow(panic-path) tables.len() == 1 guard; limits is validated to match tables
        let limit = spec.limits.as_ref().map(|l| l[0]);
        // lint: allow(panic-path) tables.len() == 1 checked by the branch guard
        match estimate_table(&spec.tables[0], limit, &cfg) {
            Ok(est) => {
                let status = if est.degraded.is_some() { 203 } else { 200 };
                let _stage = render_stages.enter("render");
                (status, estimate_json(&est))
            }
            Err(e) => {
                span.error(
                    "estimate",
                    &[
                        ("kind", FieldValue::Str(e.kind().to_string())),
                        ("message", FieldValue::Str(e.to_string())),
                    ],
                );
                (
                    422,
                    JsonValue::Object(vec![
                        ("error".to_string(), JsonValue::Str(e.to_string())),
                        ("kind".to_string(), JsonValue::Str(e.kind().to_string())),
                    ])
                    .to_compact(),
                )
            }
        }
    } else {
        let stratified = estimate_stratified(&spec.tables, spec.limits.as_deref(), &cfg);
        let status = if stratified.is_clean() { 200 } else { 203 };
        let _stage = render_stages.enter("render");
        (status, stratified_json(&stratified, &spec.labels))
    }
}

fn degradation_json(d: &Degradation) -> JsonValue {
    JsonValue::Object(vec![
        ("from".to_string(), JsonValue::Str(d.from.clone())),
        ("model".to_string(), JsonValue::Str(d.model.clone())),
        ("reason".to_string(), JsonValue::Str(d.reason.clone())),
        (
            "rung".to_string(),
            JsonValue::Str(d.rung.name().to_string()),
        ),
        ("stage".to_string(), JsonValue::Str(d.stage.clone())),
    ])
}

/// Canonical single-estimate body (keys sorted).
pub fn estimate_json(est: &CrEstimate) -> String {
    estimate_value(est).to_compact()
}

fn estimate_value(est: &CrEstimate) -> JsonValue {
    JsonValue::Object(vec![
        (
            "degraded".to_string(),
            est.degraded
                .as_ref()
                .map_or(JsonValue::Null, degradation_json),
        ),
        ("divisor".to_string(), JsonValue::UInt(est.divisor)),
        ("ic".to_string(), JsonValue::Float(est.ic)),
        ("model".to_string(), JsonValue::Str(est.model.clone())),
        ("observed".to_string(), JsonValue::UInt(est.observed)),
        ("total".to_string(), JsonValue::Float(est.total)),
        ("unseen".to_string(), JsonValue::Float(est.unseen)),
    ])
}

/// Canonical stratified body (keys sorted, strata in stratum order).
pub fn stratified_json(s: &StratifiedEstimate, labels: &[String]) -> String {
    let strata = JsonValue::Array(
        s.strata
            .iter()
            .enumerate()
            .map(|(i, est)| {
                JsonValue::Object(vec![
                    (
                        "estimate".to_string(),
                        est.as_ref().map_or(JsonValue::Null, estimate_value),
                    ),
                    (
                        "label".to_string(),
                        labels
                            .get(i)
                            .map_or(JsonValue::Null, |l| JsonValue::Str(l.clone())),
                    ),
                ])
            })
            .collect(),
    );
    JsonValue::Object(vec![
        (
            "degraded".to_string(),
            JsonValue::Array(
                s.degraded
                    .iter()
                    .map(|&i| JsonValue::UInt(i as u64))
                    .collect(),
            ),
        ),
        (
            "estimated_total".to_string(),
            JsonValue::Float(s.estimated_total),
        ),
        (
            "excluded".to_string(),
            JsonValue::Array(
                s.excluded
                    .iter()
                    .map(|&i| JsonValue::UInt(i as u64))
                    .collect(),
            ),
        ),
        (
            "failed".to_string(),
            JsonValue::Array(
                s.failed
                    .iter()
                    .map(|&i| JsonValue::UInt(i as u64))
                    .collect(),
            ),
        ),
        (
            "observed_total".to_string(),
            JsonValue::UInt(s.observed_total),
        ),
        ("strata".to_string(), strata),
    ])
    .to_compact()
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}
