//! The server proper: listener, fixed worker pool, bounded accept queue
//! with load shedding, routing, and the estimate handler that ties the
//! cache, the single-flight table and the fault probes together.
//!
//! Concurrency model (deliberately boring): one acceptor thread pushes
//! connections into a bounded queue; `workers` threads pop and serve one
//! request per connection (`Connection: close`). When the queue is full
//! the *acceptor* answers `503` + `Retry-After` immediately — overload
//! sheds at the door instead of growing an invisible backlog.
//!
//! Determinism contract: response *bodies* are pure functions of the
//! canonical request (the content digest), so cache replays are
//! byte-identical. Anything wall-clock-shaped — request latency, socket
//! timeouts — lives in headers, the volatile metrics lane, or socket
//! options, never in a body.

use crate::backend::Backend;
use crate::cache::{CachedResponse, EstimateCache, Lookup};
use crate::coalesce::{Role, SingleFlight};
use crate::digest::digest_hex;
use crate::http::{read_request, ParseError, Request, Response};
use crate::metrics::{membership_json, MetricsHub, SLOW_REQUEST_US, TAIL_CAPACITY};
use crate::request::EstimateRequest;
use ghosts_core::{
    estimate_stratified, estimate_table, CrEstimate, Degradation, StratifiedEstimate,
};
use ghosts_faultinject as faults;
use ghosts_obs::json::{parse as parse_json, JsonValue};
use ghosts_obs::{FieldValue, LogicalClock, Recorder, Scope, TailClass};
use std::collections::VecDeque;
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Fault-probe site for the estimate handler (worker-panic → 500 path).
pub const FAULT_SITE_HANDLER: &str = "serve.handler";
/// Fault-probe site for the result cache (drop-source → bypass path).
pub const FAULT_SITE_CACHE: &str = "serve.cache";

/// Tuning knobs for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Worker threads (minimum 1).
    pub workers: usize,
    /// Accepted-but-unserved connections tolerated before shedding.
    pub max_pending: usize,
    /// In-memory cache entries.
    pub cache_capacity: usize,
    /// On-disk spill directory for the cache.
    pub cache_dir: Option<std::path::PathBuf>,
    /// Socket read/write timeout in milliseconds (wall time is confined
    /// to the socket layer; bodies never depend on it).
    pub io_timeout_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            max_pending: 64,
            cache_capacity: 256,
            cache_dir: None,
            io_timeout_ms: 10_000,
        }
    }
}

struct Queue {
    pending: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
}

struct Shared {
    backend: Arc<dyn Backend>,
    hub: Arc<MetricsHub>,
    cache: EstimateCache,
    flights: SingleFlight,
    queue: Queue,
    stop: AtomicBool,
    next_request: AtomicU64,
    config: ServerConfig,
}

/// A running server. Dropping the handle does NOT stop it; call
/// [`ServerHandle::shutdown`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    local_addr: std::net::SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// The server entry point.
pub struct Server;

impl Server {
    /// Binds, spawns the acceptor and worker pool, and returns a handle.
    ///
    /// # Errors
    ///
    /// Propagates the bind error (address in use, permission, ...).
    pub fn bind(
        config: ServerConfig,
        backend: Arc<dyn Backend>,
        hub: Arc<MetricsHub>,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let cache = EstimateCache::new(config.cache_capacity, config.cache_dir.clone());
        let shared = Arc::new(Shared {
            backend,
            hub,
            cache,
            flights: SingleFlight::new(),
            queue: Queue {
                pending: Mutex::new(VecDeque::new()),
                ready: Condvar::new(),
            },
            stop: AtomicBool::new(false),
            next_request: AtomicU64::new(0),
            config,
        });

        let mut workers = Vec::with_capacity(shared.config.workers.max(1));
        for _ in 0..shared.config.workers.max(1) {
            let shared = Arc::clone(&shared);
            workers.push(std::thread::spawn(move || worker_loop(&shared)));
        }
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || acceptor_loop(&listener, &shared))
        };

        Ok(ServerHandle {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            workers,
        })
    }
}

impl ServerHandle {
    /// The bound address (use this to learn the ephemeral port).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// The metrics hub the server records into.
    pub fn hub(&self) -> &Arc<MetricsHub> {
        &self.shared.hub
    }

    /// Stops accepting, drains workers and joins every thread. Idempotent.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        self.shared.queue.ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn acceptor_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => continue,
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let timeout = Duration::from_millis(shared.config.io_timeout_ms.max(1));
        let _ = stream.set_read_timeout(Some(timeout));
        let _ = stream.set_write_timeout(Some(timeout));

        let mut pending = lock(&shared.queue.pending);
        if pending.len() >= shared.config.max_pending {
            drop(pending);
            shed(shared, stream);
            continue;
        }
        pending.push_back(stream);
        drop(pending);
        shared.queue.ready.notify_one();
    }
}

/// Overload: answer 503 from the acceptor without occupying a worker.
/// Shed rejections land in the request tail (always-retained class) even
/// though they never get a request id.
fn shed(shared: &Shared, stream: TcpStream) {
    shared.hub.stats().shed.inc();
    shared.hub.push_tail(
        TailClass::Shed,
        503,
        vec![(
            "reason".to_string(),
            FieldValue::Str("queue-full".to_string()),
        )],
    );
    let body = r#"{"error":"server overloaded, retry shortly"}"#;
    let response = Response::json(503, body.to_string()).with_header("retry-after", "1");
    respond_and_drain(stream, &response);
}

/// Writes a response to a peer whose request was not fully read, without
/// losing it to a TCP reset: FIN our side first (so the peer's read
/// completes), then drain a bounded amount of its unread input before
/// dropping the socket. Closing with unread bytes queued would send RST,
/// which discards the peer's receive buffer — including our response.
fn respond_and_drain(mut stream: TcpStream, response: &Response) {
    let _ = response.write_to(&mut stream);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut sink = [0u8; 4096];
    let mut drained = 0usize;
    while drained < 256 * 1024 {
        match std::io::Read::read(&mut stream, &mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut pending = lock(&shared.queue.pending);
            loop {
                if let Some(s) = pending.pop_front() {
                    break s;
                }
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                pending = match shared.queue.ready.wait(pending) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        shared.queue.ready.notify_one();
        handle_connection(shared, stream);
    }
}

fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let request = match read_request(&mut stream) {
        Ok(r) => r,
        Err(ParseError::Eof) => return, // closed before sending anything
        Err(e) => {
            shared.hub.stats().bad_request.inc();
            shared.hub.push_tail(
                TailClass::Error,
                e.status(),
                vec![("reason".to_string(), FieldValue::Str(e.label().to_string()))],
            );
            shared.hub.request_done();
            let body = format!(
                "{{\"error\":{}}}",
                JsonValue::Str(e.label().to_string()).to_compact()
            );
            // The request was not fully read (oversized head/body, garbage):
            // drain before closing so the error response survives delivery.
            respond_and_drain(stream, &Response::json(e.status(), body));
            return;
        }
    };
    if is_ops_read(&request) {
        // Ops-surface reads are observers, not workload: they bypass
        // request accounting entirely (no counter, no latency sample, no
        // tail entry, no epoch tick), so consecutive scrapes of a
        // quiescent server are byte-identical.
        let response = route(shared, &request);
        let _ = response.write_to(&mut stream);
        return;
    }
    let start = shared.hub.now();
    shared.hub.stats().requests.inc();
    let response = route(shared, &request);
    let elapsed = shared.hub.now().saturating_sub(start);
    shared.hub.stats().request_us.record(elapsed);
    push_request_tail(shared, &request, &response, elapsed);
    shared.hub.request_done();
    let _ = response.write_to(&mut stream);
}

/// Whether a request reads the telemetry plane rather than doing work.
fn is_ops_read(request: &Request) -> bool {
    request.method == "GET"
        && (request.target == "/metrics"
            || request.target == "/v1/profile"
            || request.target == "/v1/trace/tail"
            || request.target.starts_with("/v1/trace/tail?"))
}

/// Offers one finished request to the tail ring as a wide event. The
/// class drives retention: errors, degraded answers and slow outliers are
/// always kept; routine successes are admission-sampled.
fn push_request_tail(shared: &Shared, request: &Request, response: &Response, elapsed: u64) {
    let class = if response.status >= 400 {
        TailClass::Error
    } else if response.status == 203 {
        TailClass::Degraded
    } else if elapsed >= SLOW_REQUEST_US {
        TailClass::Slow
    } else {
        TailClass::Ok
    };
    let mut fields = vec![
        (
            "method".to_string(),
            FieldValue::Str(request.method.clone()),
        ),
        (
            "target".to_string(),
            FieldValue::Str(request.target.clone()),
        ),
    ];
    if let Some((_, disposition)) = response.headers.iter().find(|(k, _)| k == "x-cache") {
        fields.push(("cache".to_string(), FieldValue::Str(disposition.clone())));
    }
    fields.push(("latency_us".to_string(), FieldValue::U64(elapsed)));
    shared.hub.push_tail(class, response.status, fields);
}

fn route(shared: &Shared, request: &Request) -> Response {
    match (request.method.as_str(), request.target.as_str()) {
        ("GET", "/healthz") => healthz(shared),
        ("GET", "/metrics") => Response::text(200, &shared.hub.render_text()),
        ("GET", "/manifest") => {
            let mut config = server_config_pairs(shared);
            config.extend(shared.backend.info());
            Response::json(200, shared.hub.render_manifest(&config))
        }
        ("GET", "/v1/profile") => Response::json(200, shared.hub.render_profile()),
        ("GET", target) if target == "/v1/trace/tail" || target.starts_with("/v1/trace/tail?") => {
            trace_tail(shared, target)
        }
        ("GET", target) if target.starts_with("/v1/membership/") => {
            // lint: allow(panic-path) starts_with guarantees the ASCII prefix is a char boundary
            membership(shared, &target["/v1/membership/".len()..])
        }
        ("POST", "/v1/estimate") => estimate(shared, request),
        ("GET", "/v1/estimate") => {
            Response::json(405, r#"{"error":"use POST for /v1/estimate"}"#.to_string())
                .with_header("allow", "POST")
        }
        _ => Response::json(404, r#"{"error":"no such resource"}"#.to_string()),
    }
}

fn server_config_pairs(shared: &Shared) -> Vec<(String, String)> {
    vec![
        (
            "serve.workers".to_string(),
            shared.config.workers.to_string(),
        ),
        (
            "serve.max_pending".to_string(),
            shared.config.max_pending.to_string(),
        ),
        (
            "serve.cache_capacity".to_string(),
            shared.config.cache_capacity.to_string(),
        ),
        (
            "serve.cache_dir".to_string(),
            shared
                .config
                .cache_dir
                .as_ref()
                .map_or("(none)".to_string(), |d| d.display().to_string()),
        ),
    ]
}

fn healthz(shared: &Shared) -> Response {
    let mut entries = vec![
        ("status".to_string(), JsonValue::Str("ok".to_string())),
        (
            "workers".to_string(),
            JsonValue::UInt(shared.config.workers as u64),
        ),
        (
            "cache_entries".to_string(),
            JsonValue::UInt(shared.cache.len() as u64),
        ),
    ];
    for (k, v) in shared.backend.info() {
        entries.push((k, JsonValue::Str(v)));
    }
    entries.sort_by(|(a, _), (b, _)| a.cmp(b));
    entries.dedup_by(|(a, _), (b, _)| a == b);
    Response::json(200, JsonValue::Object(entries).to_compact())
}

/// `GET /v1/trace/tail?n=` — the most recent `n` retained wide events as
/// `ghosts-events/4` JSONL (default and cap: the ring capacity).
fn trace_tail(shared: &Shared, target: &str) -> Response {
    let parsed: Result<usize, _> = target
        .split_once('?')
        .and_then(|(_, query)| query.split('&').find_map(|kv| kv.strip_prefix("n=")))
        .map_or(Ok(TAIL_CAPACITY), str::parse);
    match parsed {
        Ok(n) => Response::text(200, &shared.hub.render_tail(n.min(TAIL_CAPACITY))),
        Err(_) => Response::json(
            400,
            r#"{"error":"n must be a non-negative integer"}"#.to_string(),
        ),
    }
}

fn membership(shared: &Shared, raw: &str) -> Response {
    match ghosts_net::addr_from_str(raw) {
        Ok(addr) => {
            shared.hub.stats().membership.inc();
            let m = shared.backend.membership(addr);
            Response::json(200, membership_json(&m))
        }
        Err(_) => Response::json(
            400,
            format!(
                "{{\"error\":{}}}",
                JsonValue::Str(format!("not an IPv4 address: {raw}")).to_compact()
            ),
        ),
    }
}

/// The estimate pipeline: parse → digest → (fault probe) cache →
/// single-flight → compute → store. Panics anywhere inside are caught
/// per-request; the worker survives and answers 500 with a trace.
fn estimate(shared: &Shared, request: &Request) -> Response {
    shared.hub.stats().estimate_received.inc();
    // The `serve/parse` stage covers body decode + request validation.
    let parse_stage = shared.hub.profiler().scoped("serve").enter("parse");
    let doc = match std::str::from_utf8(&request.body)
        .ok()
        .and_then(|text| parse_json(text).ok())
    {
        Some(doc) => doc,
        None => {
            shared.hub.stats().bad_request.inc();
            return Response::json(400, r#"{"error":"body is not valid JSON"}"#.to_string());
        }
    };
    let req = match EstimateRequest::parse(&doc) {
        Ok(r) => r,
        Err(message) => {
            shared.hub.stats().bad_request.inc();
            return Response::json(
                400,
                format!("{{\"error\":{}}}", JsonValue::Str(message).to_compact()),
            );
        }
    };
    drop(parse_stage);
    let request_id = shared.next_request.fetch_add(1, Ordering::SeqCst);
    let digest = req.digest();

    // Per-request trace recorder (logical clock: traces stay
    // deterministic; wall time lives in the hub's volatile lane). Kept
    // outside `catch_unwind` so events recorded before a panic survive
    // into the 500 response and the cumulative log.
    let recorder = Recorder::enabled(Arc::new(LogicalClock::new()));
    let span = recorder.root("serve").child_idx("request", request_id);
    span.event(
        "estimate",
        &[("digest", FieldValue::Str(digest_hex(digest)))],
    );

    let outcome = faults::task_scope(request_id as usize, || {
        catch_unwind(AssertUnwindSafe(|| {
            estimate_inner(shared, &req, digest, &span)
        }))
    });
    let response = match outcome {
        Ok(response) => response,
        Err(panic) => {
            shared.hub.stats().panic.inc();
            span.error(
                "handler-panic",
                &[
                    (
                        "message",
                        FieldValue::Str(ghosts_core::panic_message(&panic)),
                    ),
                    ("request", FieldValue::U64(request_id)),
                ],
            );
            let log = recorder.flush();
            let trace = log.to_jsonl();
            shared.hub.absorb(&log);
            let body = JsonValue::Object(vec![
                (
                    "error".to_string(),
                    JsonValue::Str("internal server error".to_string()),
                ),
                ("request".to_string(), JsonValue::UInt(request_id)),
                ("trace".to_string(), JsonValue::Str(trace)),
            ]);
            return Response::json(500, body.to_compact())
                .with_header("x-cache-key", &digest_hex(digest));
        }
    };
    shared.hub.absorb(&recorder.flush());
    response.with_header("x-cache-key", &digest_hex(digest))
}

fn estimate_inner(shared: &Shared, req: &EstimateRequest, digest: u64, span: &Scope) -> Response {
    // Handler fault probe: a worker-panic rule proves the 500 path.
    if let Some(fault) = faults::fire(FAULT_SITE_HANDLER) {
        span.fault_injected(
            FAULT_SITE_HANDLER,
            &[("kind", FieldValue::Str(fault.name().to_string()))],
        );
        if fault == faults::Fault::WorkerPanic {
            // lint: allow(panic-path) deliberate: injected fault, trapped by the handler's catch_unwind
            panic!("fault injection: {} at {FAULT_SITE_HANDLER}", fault.name());
        }
    }

    // Cache fault probe: a drop-source rule bypasses both tiers (and the
    // store below), proving results stay correct without the cache.
    let bypass_cache = match faults::fire(FAULT_SITE_CACHE) {
        Some(fault) => {
            span.fault_injected(
                FAULT_SITE_CACHE,
                &[("kind", FieldValue::Str(fault.name().to_string()))],
            );
            fault == faults::Fault::DropSource
        }
        None => false,
    };

    if bypass_cache {
        shared.hub.stats().cache_bypassed.inc();
        let (status, body) = compute(shared, req, span);
        return Response::json(status, body).with_header("x-cache", "bypass");
    }

    // The `serve/cache` stage covers the two-tier lookup only; stores ride
    // inside the compute path.
    let lookup = {
        let _stage = shared.hub.profiler().scoped("serve").enter("cache");
        shared.cache.lookup(digest)
    };
    match lookup {
        Lookup::Memory(r) => {
            shared.hub.stats().cache_hit_mem.inc();
            return Response::json(r.status, r.body.clone()).with_header("x-cache", "hit-mem");
        }
        Lookup::Disk(r) => {
            shared.hub.stats().cache_hit_disk.inc();
            return Response::json(r.status, r.body.clone()).with_header("x-cache", "hit-disk");
        }
        Lookup::Miss => shared.hub.stats().cache_miss.inc(),
    }

    match shared.flights.join(digest) {
        Role::Leader(guard) => {
            let (status, body) = compute(shared, req, span);
            if status == 200 || status == 203 {
                let stored = shared.cache.store(
                    digest,
                    CachedResponse {
                        status,
                        body: body.clone(),
                    },
                );
                guard.complete(stored);
            }
            // On error statuses the guard drops here, poisoning the
            // flight: waiters recompute and see the error themselves.
            Response::json(status, body).with_header("x-cache", "miss")
        }
        Role::Waiter(Some(r)) => {
            shared.hub.stats().singleflight_waited.inc();
            Response::json(r.status, r.body.clone()).with_header("x-cache", "coalesced")
        }
        Role::Waiter(None) => {
            shared.hub.stats().singleflight_leader_failed.inc();
            let (status, body) = compute(shared, req, span);
            Response::json(status, body).with_header("x-cache", "miss")
        }
    }
}

/// Runs the estimator for a request. Returns `(status, body)`; bodies are
/// canonical compact JSON — the bytes that get cached and replayed.
fn compute(shared: &Shared, req: &EstimateRequest, span: &Scope) -> (u16, String) {
    shared.hub.stats().estimate_computed.inc();
    let spec = match &req.table {
        Some(inline) => crate::backend::TableSpec {
            tables: vec![inline.to_table()],
            limits: req.limit.map(|l| vec![l]),
            labels: Vec::new(),
        },
        None => {
            shared.hub.stats().backend_resolve.inc();
            match shared.backend.resolve(req) {
                Ok(spec) => spec,
                Err(e) => {
                    span.error(
                        "resolve",
                        &[("message", FieldValue::Str(e.message().to_string()))],
                    );
                    return (
                        e.status(),
                        format!(
                            "{{\"error\":{}}}",
                            JsonValue::Str(e.message().to_string()).to_compact()
                        ),
                    );
                }
            }
        }
    };

    let mut cfg = req.cr_config();
    cfg.obs = span.child("estimate");
    // The estimator attributes its own `fit`/`select`/`ci` stages under
    // `estimate/`; `serve/render` below covers body serialisation.
    cfg.profile = shared.hub.profiler().scoped("estimate");
    let render_stages = shared.hub.profiler().scoped("serve");

    if spec.tables.len() == 1 && spec.labels.is_empty() {
        // lint: allow(panic-path) tables.len() == 1 guard; limits is validated to match tables
        let limit = spec.limits.as_ref().map(|l| l[0]);
        // lint: allow(panic-path) tables.len() == 1 checked by the branch guard
        match estimate_table(&spec.tables[0], limit, &cfg) {
            Ok(est) => {
                let status = if est.degraded.is_some() { 203 } else { 200 };
                let _stage = render_stages.enter("render");
                (status, estimate_json(&est))
            }
            Err(e) => {
                span.error(
                    "estimate",
                    &[
                        ("kind", FieldValue::Str(e.kind().to_string())),
                        ("message", FieldValue::Str(e.to_string())),
                    ],
                );
                (
                    422,
                    JsonValue::Object(vec![
                        ("error".to_string(), JsonValue::Str(e.to_string())),
                        ("kind".to_string(), JsonValue::Str(e.kind().to_string())),
                    ])
                    .to_compact(),
                )
            }
        }
    } else {
        let stratified = estimate_stratified(&spec.tables, spec.limits.as_deref(), &cfg);
        let status = if stratified.is_clean() { 200 } else { 203 };
        let _stage = render_stages.enter("render");
        (status, stratified_json(&stratified, &spec.labels))
    }
}

fn degradation_json(d: &Degradation) -> JsonValue {
    JsonValue::Object(vec![
        ("from".to_string(), JsonValue::Str(d.from.clone())),
        ("model".to_string(), JsonValue::Str(d.model.clone())),
        ("reason".to_string(), JsonValue::Str(d.reason.clone())),
        (
            "rung".to_string(),
            JsonValue::Str(d.rung.name().to_string()),
        ),
        ("stage".to_string(), JsonValue::Str(d.stage.clone())),
    ])
}

/// Canonical single-estimate body (keys sorted).
pub fn estimate_json(est: &CrEstimate) -> String {
    estimate_value(est).to_compact()
}

fn estimate_value(est: &CrEstimate) -> JsonValue {
    JsonValue::Object(vec![
        (
            "degraded".to_string(),
            est.degraded
                .as_ref()
                .map_or(JsonValue::Null, degradation_json),
        ),
        ("divisor".to_string(), JsonValue::UInt(est.divisor)),
        ("ic".to_string(), JsonValue::Float(est.ic)),
        ("model".to_string(), JsonValue::Str(est.model.clone())),
        ("observed".to_string(), JsonValue::UInt(est.observed)),
        ("total".to_string(), JsonValue::Float(est.total)),
        ("unseen".to_string(), JsonValue::Float(est.unseen)),
    ])
}

/// Canonical stratified body (keys sorted, strata in stratum order).
pub fn stratified_json(s: &StratifiedEstimate, labels: &[String]) -> String {
    let strata = JsonValue::Array(
        s.strata
            .iter()
            .enumerate()
            .map(|(i, est)| {
                JsonValue::Object(vec![
                    (
                        "estimate".to_string(),
                        est.as_ref().map_or(JsonValue::Null, estimate_value),
                    ),
                    (
                        "label".to_string(),
                        labels
                            .get(i)
                            .map_or(JsonValue::Null, |l| JsonValue::Str(l.clone())),
                    ),
                ])
            })
            .collect(),
    );
    JsonValue::Object(vec![
        (
            "degraded".to_string(),
            JsonValue::Array(
                s.degraded
                    .iter()
                    .map(|&i| JsonValue::UInt(i as u64))
                    .collect(),
            ),
        ),
        (
            "estimated_total".to_string(),
            JsonValue::Float(s.estimated_total),
        ),
        (
            "excluded".to_string(),
            JsonValue::Array(
                s.excluded
                    .iter()
                    .map(|&i| JsonValue::UInt(i as u64))
                    .collect(),
            ),
        ),
        (
            "failed".to_string(),
            JsonValue::Array(
                s.failed
                    .iter()
                    .map(|&i| JsonValue::UInt(i as u64))
                    .collect(),
            ),
        ),
        (
            "observed_total".to_string(),
            JsonValue::UInt(s.observed_total),
        ),
        ("strata".to_string(), strata),
    ])
    .to_compact()
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}
