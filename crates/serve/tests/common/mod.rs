//! Shared scaffolding for the serve crate's loopback tests: a canned
//! inline backend over public address space, and a gated backend whose
//! `resolve` blocks until the test opens a latch (for single-flight and
//! shedding scenarios).

// Each test binary compiles this module separately and uses a different
// subset of it.
#![allow(dead_code)]

use ghosts_net::{AddrSet, RoutedTable};
use ghosts_serve::backend::{Backend, BackendError, Membership, TableSpec};
use ghosts_serve::{
    EstimateRequest, InlineBackend, MetricsHub, Server, ServerConfig, ServerHandle,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Three overlapping sources in 8.0.0.0/8 — enough signal for a clean
/// three-source estimate.
pub fn inline_backend() -> Arc<InlineBackend> {
    let routed = RoutedTable::from_prefixes(["8.0.0.0/8".parse().expect("prefix")]);
    let mut a = AddrSet::new();
    let mut b = AddrSet::new();
    let mut c = AddrSet::new();
    for i in 0..4000u32 {
        let addr = 0x0800_0000 + i * 7;
        if i % 2 == 0 {
            a.insert(addr);
        }
        if i % 3 != 1 {
            b.insert(addr);
        }
        if i % 5 < 3 {
            c.insert(addr);
        }
    }
    Arc::new(InlineBackend::new(routed, vec![a, b, c]))
}

/// Starts a server over [`inline_backend`] with the given worker count.
pub fn start(workers: usize) -> ServerHandle {
    start_with(ServerConfig {
        workers,
        ..ServerConfig::default()
    })
}

/// Starts a server over [`inline_backend`] with a custom config.
pub fn start_with(config: ServerConfig) -> ServerHandle {
    Server::bind(config, inline_backend(), MetricsHub::wall()).expect("bind loopback")
}

/// Reads one lifetime counter out of a `/metrics` body. Dotted internal
/// names are sanitised to `snake_case` series names in the exposition;
/// the plain (label-free) line is the cumulative total.
pub fn counter(metrics_text: &str, name: &str) -> u64 {
    let series: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    let prefix = format!("{series} ");
    metrics_text
        .lines()
        .find_map(|l| l.strip_prefix(&prefix))
        .map_or(0, |v| v.parse().expect("counter value"))
}

/// A latch: `wait` blocks until `open` is called; stays open after.
pub struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    pub fn new() -> Arc<Self> {
        Arc::new(Self {
            open: Mutex::new(false),
            cv: Condvar::new(),
        })
    }

    pub fn open(&self) {
        let mut open = self.open.lock().expect("gate lock");
        *open = true;
        self.cv.notify_all();
    }

    pub fn wait(&self) {
        let mut open = self.open.lock().expect("gate lock");
        while !*open {
            open = self.cv.wait(open).expect("gate wait");
        }
    }
}

/// Wraps the inline backend so every `resolve` blocks on a gate and
/// counts entries — lets tests hold the estimator mid-flight.
pub struct GatedBackend {
    pub inner: Arc<InlineBackend>,
    pub gate: Arc<Gate>,
    pub entered: AtomicUsize,
}

impl GatedBackend {
    pub fn new(gate: Arc<Gate>) -> Arc<Self> {
        Arc::new(Self {
            inner: inline_backend(),
            gate,
            entered: AtomicUsize::new(0),
        })
    }
}

impl Backend for GatedBackend {
    fn resolve(&self, request: &EstimateRequest) -> Result<TableSpec, BackendError> {
        self.entered.fetch_add(1, Ordering::SeqCst);
        self.gate.wait();
        self.inner.resolve(request)
    }

    fn membership(&self, addr: u32) -> Membership {
        self.inner.membership(addr)
    }

    fn info(&self) -> Vec<(String, String)> {
        self.inner.info()
    }
}
