//! Loopback end-to-end tests: the acceptance scenarios from DESIGN.md
//! §12 — byte-identical cache replays, thread-count invariance,
//! single-flighted concurrent requests, and load shedding.

mod common;

use common::{counter, inline_backend, start, start_with, Gate, GatedBackend};
use ghosts_serve::client::{get, post_json};
use ghosts_serve::{MetricsHub, Server, ServerConfig};
use std::sync::Arc;

#[test]
fn healthz_metrics_manifest_membership() {
    let server = start(2);
    let addr = server.local_addr();

    let health = get(addr, "/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    let text = health.body_text();
    assert!(text.contains("\"status\":\"ok\""), "{text}");
    assert!(text.contains("\"backend\":\"inline\""), "{text}");

    let m = get(addr, "/v1/membership/8.0.0.7").expect("membership");
    assert_eq!(m.status, 200);
    assert_eq!(
        m.body_text(),
        r#"{"addr":"8.0.0.7","bogon":false,"observed":true,"routed":"8.0.0.0/8"}"#
    );
    let m = get(addr, "/v1/membership/127.0.0.1").expect("membership");
    assert!(m.body_text().contains("\"bogon\":true"));
    let m = get(addr, "/v1/membership/not-an-addr").expect("membership");
    assert_eq!(m.status, 400);

    let manifest = get(addr, "/manifest").expect("manifest");
    assert_eq!(manifest.status, 200);
    let doc = ghosts_obs::RunManifest::from_json(&manifest.body_text())
        .expect("manifest parses and is schema-valid");
    assert!(doc
        .config
        .iter()
        .any(|(k, v)| k == "serve.workers" && v == "2"));

    let metrics = get(addr, "/metrics").expect("metrics");
    assert_eq!(metrics.status, 200);
    assert!(counter(&metrics.body_text(), "serve.requests") >= 4);

    let missing = get(addr, "/nope").expect("404");
    assert_eq!(missing.status, 404);
    server.shutdown();
}

#[test]
fn second_identical_estimate_is_a_byte_identical_cache_hit() {
    let server = start(2);
    let addr = server.local_addr();
    let body = r#"{"window":0}"#;

    let first = post_json(addr, "/v1/estimate", body).expect("first");
    assert_eq!(first.status, 200, "{}", first.body_text());
    assert_eq!(first.header("x-cache"), Some("miss"));

    let second = post_json(addr, "/v1/estimate", body).expect("second");
    assert_eq!(second.status, 200);
    assert_eq!(second.header("x-cache"), Some("hit-mem"));
    assert_eq!(first.body, second.body, "replay must be byte-identical");
    assert_eq!(first.header("x-cache-key"), second.header("x-cache-key"));

    // Key-order / spelled-out-default variants share the digest.
    let variant = post_json(
        addr,
        "/v1/estimate",
        r#"{"config":{"degrade":true,"threads":1},"target":"addr","window":0}"#,
    )
    .expect("variant");
    assert_eq!(variant.header("x-cache"), Some("hit-mem"));
    assert_eq!(variant.body, first.body);

    let metrics = get(addr, "/metrics").expect("metrics").body_text();
    assert_eq!(counter(&metrics, "serve.cache.hit_mem"), 2);
    assert_eq!(counter(&metrics, "serve.cache.miss"), 1);
    assert_eq!(counter(&metrics, "serve.estimate.computed"), 1);
    server.shutdown();
}

#[test]
fn estimates_are_byte_identical_across_thread_counts() {
    let server = start(4);
    let addr = server.local_addr();
    let one = post_json(
        addr,
        "/v1/estimate",
        r#"{"window":0,"config":{"threads":1}}"#,
    )
    .expect("threads=1");
    let four = post_json(
        addr,
        "/v1/estimate",
        r#"{"window":0,"config":{"threads":4}}"#,
    )
    .expect("threads=4");
    assert_eq!(one.status, 200, "{}", one.body_text());
    assert_eq!(four.status, 200);
    // Different cache keys (the knob is part of the digest) ...
    assert_ne!(one.header("x-cache-key"), four.header("x-cache-key"));
    assert_eq!(four.header("x-cache"), Some("miss"));
    // ... but bit-identical estimates: parallelism never changes bytes.
    assert_eq!(one.body, four.body);
    server.shutdown();
}

#[test]
fn inline_tables_estimate_without_a_backend() {
    let server = start(1);
    let addr = server.local_addr();
    let body = r#"{"table":{"sources":3,"histories":[[1,300],[2,250],[4,220],[3,180],[5,160],[6,140],[7,400]]},"limit":100000}"#;
    let r = post_json(addr, "/v1/estimate", body).expect("inline");
    assert_eq!(r.status, 200, "{}", r.body_text());
    let text = r.body_text();
    assert!(text.contains("\"observed\":1650"), "{text}");
    assert!(text.contains("\"degraded\":null"), "{text}");

    // History order is canonicalised away: shuffled pairs hit the cache.
    let shuffled = r#"{"table":{"sources":3,"histories":[[7,400],[3,180],[1,300],[6,140],[2,250],[5,160],[4,220]]},"limit":100000}"#;
    let r2 = post_json(addr, "/v1/estimate", shuffled).expect("shuffled");
    assert_eq!(r2.header("x-cache"), Some("hit-mem"));
    assert_eq!(r2.body, r.body);
    server.shutdown();
}

#[test]
fn eight_concurrent_identical_requests_run_the_estimator_once() {
    let gate = Gate::new();
    let backend = GatedBackend::new(Arc::clone(&gate));
    let server = Server::bind(
        ServerConfig {
            workers: 10,
            ..ServerConfig::default()
        },
        Arc::clone(&backend) as Arc<dyn ghosts_serve::Backend>,
        MetricsHub::wall(),
    )
    .expect("bind");
    let addr = server.local_addr();

    let clients: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                post_json(addr, "/v1/estimate", r#"{"window":0}"#).expect("estimate")
            })
        })
        .collect();

    // Wait until all 8 requests are inside the estimate handler (the
    // received counter ticks before the cache/flight steps), then give
    // stragglers a beat to park in the flight and open the gate.
    loop {
        let metrics = get(addr, "/metrics").expect("metrics").body_text();
        if counter(&metrics, "serve.estimate.received") == 8 {
            break;
        }
        std::thread::yield_now();
    }
    std::thread::sleep(std::time::Duration::from_millis(100));
    gate.open();

    let responses: Vec<_> = clients
        .into_iter()
        .map(|c| c.join().expect("client thread"))
        .collect();
    for r in &responses {
        assert_eq!(r.status, 200, "{}", r.body_text());
        assert_eq!(r.body, responses[0].body, "all replays byte-identical");
    }
    assert_eq!(
        backend.entered.load(std::sync::atomic::Ordering::SeqCst),
        1,
        "backend resolved once"
    );
    let metrics = get(addr, "/metrics").expect("metrics").body_text();
    assert_eq!(counter(&metrics, "serve.estimate.computed"), 1);
    assert_eq!(counter(&metrics, "serve.singleflight.waited"), 7);
    server.shutdown();
}

#[test]
fn full_queue_sheds_with_retry_after() {
    let gate = Gate::new();
    let backend = GatedBackend::new(Arc::clone(&gate));
    let server = Server::bind(
        ServerConfig {
            workers: 1,
            max_pending: 1,
            ..ServerConfig::default()
        },
        Arc::clone(&backend) as Arc<dyn ghosts_serve::Backend>,
        MetricsHub::wall(),
    )
    .expect("bind");
    let addr = server.local_addr();

    // First request occupies the only worker (blocked on the gate).
    let blocked =
        std::thread::spawn(move || post_json(addr, "/v1/estimate", r#"{"window":0}"#).expect("r1"));
    while backend.entered.load(std::sync::atomic::Ordering::SeqCst) == 0 {
        std::thread::yield_now();
    }
    // Second request fills the pending queue.
    let queued =
        std::thread::spawn(move || post_json(addr, "/v1/estimate", r#"{"window":0}"#).expect("r2"));
    std::thread::sleep(std::time::Duration::from_millis(100));
    // Third connection finds the queue full: shed at the door.
    let shed = get(addr, "/metrics").expect("r3");
    assert_eq!(shed.status, 503);
    assert_eq!(shed.header("retry-after"), Some("1"));
    assert!(shed.body_text().contains("overloaded"));

    gate.open();
    assert_eq!(blocked.join().expect("r1").status, 200);
    let queued = queued.join().expect("r2");
    assert_eq!(queued.status, 200);
    assert_eq!(queued.header("x-cache"), Some("hit-mem"));

    let metrics = get(addr, "/metrics").expect("metrics").body_text();
    assert_eq!(counter(&metrics, "serve.shed"), 1);
    server.shutdown();
}

#[test]
fn cache_spills_to_disk_and_survives_restart() {
    let dir = std::env::temp_dir().join(format!("ghosts-serve-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServerConfig {
        cache_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };
    let server = start_with(config.clone());
    let addr = server.local_addr();
    let first = post_json(addr, "/v1/estimate", r#"{"window":0}"#).expect("first");
    assert_eq!(first.status, 200);
    server.shutdown();

    // A fresh server over the same spill dir replays from disk.
    let server = Server::bind(config, inline_backend(), MetricsHub::wall()).expect("rebind");
    let addr = server.local_addr();
    let replay = post_json(addr, "/v1/estimate", r#"{"window":0}"#).expect("replay");
    assert_eq!(replay.header("x-cache"), Some("hit-disk"));
    assert_eq!(replay.body, first.body);
    let metrics = get(addr, "/metrics").expect("metrics").body_text();
    assert_eq!(counter(&metrics, "serve.cache.hit_disk"), 1);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn backend_errors_map_to_4xx_and_are_not_cached() {
    let server = start(1);
    let addr = server.local_addr();
    let missing = post_json(addr, "/v1/estimate", r#"{"window":42}"#).expect("missing window");
    assert_eq!(missing.status, 404);
    let again = post_json(addr, "/v1/estimate", r#"{"window":42}"#).expect("again");
    assert_eq!(again.status, 404);
    assert_eq!(
        again.header("x-cache"),
        Some("miss"),
        "errors are never cached"
    );

    let invalid =
        post_json(addr, "/v1/estimate", r#"{"window":0,"target":"subnet"}"#).expect("invalid");
    assert_eq!(invalid.status, 422);

    let bad = post_json(addr, "/v1/estimate", "{not json").expect("bad json");
    assert_eq!(bad.status, 400);

    let wrong_method = get(addr, "/v1/estimate").expect("GET estimate");
    assert_eq!(wrong_method.status, 405);
    assert_eq!(wrong_method.header("allow"), Some("POST"));
    server.shutdown();
}
