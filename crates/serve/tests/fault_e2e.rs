//! Fault-injected serving: the committed `serve_faults.plan` proves the
//! 500-with-trace path (a panicking handler does not kill its worker)
//! and the cache-bypass path (a dropped cache still computes correct,
//! byte-identical results).
//!
//! The fault plan is process-global, so every test here takes
//! `PLAN_LOCK`, installs its plan, and clears it before releasing the
//! lock — same discipline as `ghosts-core/tests/fault_ladder.rs`.

mod common;

use common::{counter, start};
use ghosts_faultinject::{clear, drain_fires, install, Fault, FaultPlan, FaultRule};
use ghosts_obs::json::{parse, JsonValue};
use ghosts_obs::validate_jsonl;
use ghosts_serve::client::{get, post_json};
use std::sync::{Mutex, MutexGuard};

static PLAN_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    PLAN_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const PLAN: &str = include_str!("fixtures/serve_faults.plan");

#[test]
fn server_survives_panicking_handler_and_cache_drop() {
    let _g = lock();
    install(FaultPlan::parse(PLAN).expect("committed plan parses")).expect("armed in tests");
    let server = start(1);
    let addr = server.local_addr();
    let body = r#"{"window":0}"#;

    // Request 0: the handler panics. 500, with a schema-valid trace that
    // names the injected fault — and the worker keeps serving.
    let panicked = post_json(addr, "/v1/estimate", body).expect("request 0");
    assert_eq!(panicked.status, 500, "{}", panicked.body_text());
    let doc = parse(&panicked.body_text()).expect("500 body is JSON");
    assert_eq!(doc.get("request").and_then(JsonValue::as_u64), Some(0));
    let trace = doc
        .get("trace")
        .and_then(JsonValue::as_str)
        .expect("500 body carries a trace");
    let summary = validate_jsonl(trace).expect("trace is schema-valid");
    assert!(summary.errors >= 1, "{summary:?}");
    assert!(summary.faults >= 1, "{summary:?}");
    assert!(trace.contains("worker-panic"), "{trace}");

    // Request 1: cache dropped — computes fresh, stores nothing.
    let bypassed = post_json(addr, "/v1/estimate", body).expect("request 1");
    assert_eq!(bypassed.status, 200, "{}", bypassed.body_text());
    assert_eq!(bypassed.header("x-cache"), Some("bypass"));

    // Request 2: plan exhausted — a normal miss that stores.
    let miss = post_json(addr, "/v1/estimate", body).expect("request 2");
    assert_eq!(miss.status, 200);
    assert_eq!(miss.header("x-cache"), Some("miss"));
    assert_eq!(
        miss.body, bypassed.body,
        "bypassed and cached computations are byte-identical"
    );

    // Request 3: served from memory.
    let hit = post_json(addr, "/v1/estimate", body).expect("request 3");
    assert_eq!(hit.header("x-cache"), Some("hit-mem"));
    assert_eq!(hit.body, miss.body);

    let metrics = get(addr, "/metrics").expect("metrics").body_text();
    assert_eq!(counter(&metrics, "serve.panic"), 1);
    assert_eq!(counter(&metrics, "serve.cache.bypassed"), 1);
    assert_eq!(counter(&metrics, "serve.estimate.computed"), 2);

    let fires = drain_fires();
    assert_eq!(fires.len(), 2, "both planned rules fired: {fires:?}");
    assert_eq!(fires[0].site, "serve.cache");
    assert_eq!(fires[1].site, "serve.handler");
    clear();
    server.shutdown();
}

#[test]
fn fault_degraded_estimate_serves_with_203_and_rung_in_body() {
    let _g = lock();
    // Fail the final fit of request 0 (hit 0 inside the request scope is
    // the selection baseline; hit 1 is the final fit).
    install(FaultPlan {
        rules: vec![FaultRule {
            site: "glm.fit".to_string(),
            scope: Some("0".to_string()),
            hit: 1,
            fault: Fault::NonFiniteFit,
        }],
    })
    .expect("armed in tests");
    let server = start(1);
    let addr = server.local_addr();

    let degraded = post_json(addr, "/v1/estimate", r#"{"window":0}"#).expect("request 0");
    assert_eq!(degraded.status, 203, "{}", degraded.body_text());
    let doc = parse(&degraded.body_text()).expect("JSON body");
    let rung = doc
        .get("degraded")
        .and_then(|d| d.get("rung"))
        .and_then(JsonValue::as_str)
        .expect("degradation rung in body");
    assert!(!rung.is_empty());

    // The degraded response is cached and replayed with its 203 status.
    let replay = post_json(addr, "/v1/estimate", r#"{"window":0}"#).expect("request 1");
    assert_eq!(replay.status, 203);
    assert_eq!(replay.header("x-cache"), Some("hit-mem"));
    assert_eq!(replay.body, degraded.body);

    assert_eq!(drain_fires().len(), 1);
    clear();
    server.shutdown();
}
