//! Durable-ingest end-to-end tests over loopback: acked batches survive a
//! restart byte-identically, idempotency keys dedup, the bounded queue
//! sheds with `429` + `Retry-After`, drain checkpoints then refuses, and
//! a fault-injected torn write is never acknowledged — and is truncated
//! away on the next startup.

mod common;

use common::{counter, inline_backend};
use ghosts_faultinject::{clear, install, FaultPlan};
use ghosts_serve::client::{get, request_with_headers, request_with_retry, RetryPolicy};
use ghosts_serve::{MetricsHub, Server, ServerConfig, ServerHandle};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

/// The fault plan is process-global: fault-using tests serialise on this.
static PLAN_LOCK: Mutex<()> = Mutex::new(());

fn plan_lock() -> MutexGuard<'static, ()> {
    match PLAN_LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ghosts-ingest-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_ingest(dir: &std::path::Path, config: ServerConfig) -> ServerHandle {
    let config = ServerConfig {
        ingest_dir: Some(dir.to_path_buf()),
        ..config
    };
    Server::bind(config, inline_backend(), MetricsHub::wall()).expect("bind loopback")
}

fn post(server: &ServerHandle, path: &str, body: &str) -> ghosts_serve::client::ClientResponse {
    request_with_headers(
        server.local_addr(),
        "POST",
        path,
        Some(body.as_bytes()),
        &[],
    )
    .expect("request")
}

fn batch(key: &str, source: &str, addrs: &[&str]) -> String {
    let list = addrs
        .iter()
        .map(|a| format!("\"{a}\""))
        .collect::<Vec<_>>()
        .join(",");
    format!("{{\"key\":\"{key}\",\"source\":\"{source}\",\"addrs\":[{list}]}}")
}

#[test]
fn acked_batches_survive_restart_byte_identically() {
    let dir = scratch("restart");
    let server = start_ingest(&dir, ServerConfig::default());

    let first = post(
        &server,
        "/v1/observations",
        &batch("k1", "s1", &["8.0.0.1", "8.0.0.2"]),
    );
    assert_eq!(first.status, 201, "{}", first.body_text());
    assert_eq!(
        first.body_text(),
        r#"{"key":"k1","lsn":0,"new_addrs":2,"status":"applied"}"#
    );
    let second = post(
        &server,
        "/v1/observations",
        &batch("k2", "s2", &["8.0.0.2", "8.0.0.3"]),
    );
    assert_eq!(second.status, 201);

    // Same idempotency key: acked without re-applying.
    let dup = post(
        &server,
        "/v1/observations",
        &batch("k1", "s1", &["8.0.0.9"]),
    );
    assert_eq!(dup.status, 200);
    assert_eq!(dup.body_text(), r#"{"key":"k1","status":"duplicate"}"#);

    // The header key overrides the body key, so a stamped retry dedups.
    let via_header = request_with_headers(
        server.local_addr(),
        "POST",
        "/v1/observations",
        Some(batch("ignored", "s1", &["8.0.0.9"]).as_bytes()),
        &[("idempotency-key".to_string(), "k2".to_string())],
    )
    .expect("request");
    assert_eq!(via_header.status, 200, "{}", via_header.body_text());
    assert!(via_header.body_text().contains("\"duplicate\""));

    let stats = get(server.local_addr(), "/v1/observations/stats").expect("stats");
    assert_eq!(stats.status, 200);
    let before = stats.body_text();
    assert!(before.contains("\"applied\":2"), "{before}");
    assert!(before.contains("\"addrs\":4"), "{before}");

    let estimate_before = get(server.local_addr(), "/v1/observations/estimate").expect("estimate");
    assert!(
        estimate_before.status == 200 || estimate_before.status == 203,
        "{}",
        estimate_before.body_text()
    );

    let metrics = get(server.local_addr(), "/metrics")
        .expect("metrics")
        .body_text();
    assert_eq!(counter(&metrics, "serve.ingest.applied"), 2);
    assert_eq!(counter(&metrics, "serve.ingest.duplicate"), 2);
    assert_eq!(counter(&metrics, "serve.wal.appends"), 2);
    server.shutdown();

    // kill -9 equivalent for in-process tests: no drain, no checkpoint —
    // recovery must rebuild everything from the WAL alone.
    let server = start_ingest(&dir, ServerConfig::default());
    let stats = get(server.local_addr(), "/v1/observations/stats").expect("stats");
    let after = stats.body_text();
    let digest = |s: &str| {
        s.split("\"digest\":\"")
            .nth(1)
            .and_then(|t| t.split('"').next())
            .expect("digest field")
            .to_string()
    };
    assert_eq!(
        digest(&before),
        digest(&after),
        "state digest must survive restart"
    );
    assert!(after.contains("\"applied\":2"), "{after}");
    assert!(after.contains("\"wal_records_replayed\":2"), "{after}");

    let estimate_after = get(server.local_addr(), "/v1/observations/estimate").expect("estimate");
    assert_eq!(
        estimate_before.body, estimate_after.body,
        "estimates must be byte-identical across restart"
    );
    server.shutdown();
}

#[test]
fn worker_count_does_not_change_the_state_digest() {
    let digest_with = |workers: usize, tag: &str| {
        let dir = scratch(tag);
        let server = start_ingest(
            &dir,
            ServerConfig {
                workers,
                ..ServerConfig::default()
            },
        );
        for i in 0..8 {
            let r = post(
                &server,
                "/v1/observations",
                &batch(
                    &format!("k{i}"),
                    &format!("s{}", i % 3),
                    &[&format!("8.1.{i}.1")],
                ),
            );
            assert_eq!(r.status, 201);
        }
        let stats = get(server.local_addr(), "/v1/observations/stats").expect("stats");
        server.shutdown();
        stats.body_text()
    };
    let one = digest_with(1, "threads1");
    let four = digest_with(4, "threads4");
    assert_eq!(
        one, four,
        "stats (incl. digest) must not depend on worker count"
    );
}

#[test]
fn bounded_ingest_sheds_with_429_and_retry_after() {
    let dir = scratch("shed");
    let server = start_ingest(
        &dir,
        ServerConfig {
            max_inflight: 0, // every admission attempt sheds
            ..ServerConfig::default()
        },
    );
    let shed = post(&server, "/v1/observations", &batch("k", "s", &["8.0.0.1"]));
    assert_eq!(shed.status, 429, "{}", shed.body_text());
    assert_eq!(shed.header("retry-after"), Some("1"));
    assert!(shed.body_text().contains("\"retryable\":true"));

    // The retrying client gives up with the final 429 (server stays full),
    // but exercises the Retry-After-honouring loop.
    let policy = RetryPolicy {
        retries: 1,
        base_delay_ms: 1,
        max_delay_ms: 2,
        seed: 1,
    };
    let last = request_with_retry(
        server.local_addr(),
        "POST",
        "/v1/observations",
        Some(batch("k", "s", &["8.0.0.1"]).as_bytes()),
        &[],
        &policy,
    )
    .expect("a response, even a shed one");
    assert_eq!(last.status, 429);

    let metrics = get(server.local_addr(), "/metrics")
        .expect("metrics")
        .body_text();
    assert_eq!(counter(&metrics, "serve.ingest.rejected"), 3);
    assert_eq!(counter(&metrics, "serve.ingest.applied"), 0);
    server.shutdown();
}

#[test]
fn drain_checkpoints_then_refuses_new_observations() {
    let dir = scratch("drain");
    let server = start_ingest(&dir, ServerConfig::default());
    assert!(!server.drain_requested());

    let r = post(
        &server,
        "/v1/observations",
        &batch("k1", "s1", &["8.0.0.1"]),
    );
    assert_eq!(r.status, 201);

    let drained = post(&server, "/v1/admin/drain", "");
    assert_eq!(drained.status, 200, "{}", drained.body_text());
    assert!(drained.body_text().contains("\"status\":\"draining\""));
    assert!(drained.body_text().contains("\"generation\":1"));
    assert!(server.drain_requested());

    let refused = post(
        &server,
        "/v1/observations",
        &batch("k2", "s1", &["8.0.0.2"]),
    );
    assert_eq!(refused.status, 503);
    assert_eq!(refused.header("retry-after"), Some("1"));

    // Reads still work while draining.
    let stats = get(server.local_addr(), "/v1/observations/stats").expect("stats");
    assert!(stats.body_text().contains("\"draining\":true"));
    server.shutdown();

    // The restart replays from the drain checkpoint, not the WAL.
    let server = start_ingest(&dir, ServerConfig::default());
    let stats = get(server.local_addr(), "/v1/observations/stats").expect("stats");
    let text = stats.body_text();
    assert!(text.contains("\"checkpoint_generation\":1"), "{text}");
    assert!(text.contains("\"wal_records_replayed\":0"), "{text}");
    assert!(text.contains("\"applied\":1"), "{text}");
    assert!(text.contains("\"draining\":false"), "{text}");
    server.shutdown();
}

#[test]
fn ingest_endpoints_404_without_an_ingest_dir() {
    let server = common::start(1);
    for (method, path) in [
        ("POST", "/v1/observations"),
        ("GET", "/v1/observations/stats"),
        ("GET", "/v1/observations/estimate"),
        ("POST", "/v1/admin/drain"),
    ] {
        let r = request_with_headers(server.local_addr(), method, path, Some(b"{}"), &[])
            .expect("request");
        assert_eq!(r.status, 404, "{method} {path}: {}", r.body_text());
        assert!(
            r.body_text().contains("ingest disabled"),
            "{}",
            r.body_text()
        );
    }
    assert!(!server.drain_requested());
    server.shutdown();
}

#[test]
fn invalid_batches_are_rejected_and_estimate_422s_when_empty() {
    let dir = scratch("reject");
    let server = start_ingest(&dir, ServerConfig::default());

    let garbage = post(&server, "/v1/observations", "not json");
    assert_eq!(garbage.status, 400);
    let bad_addr = post(
        &server,
        "/v1/observations",
        &batch("k", "s", &["999.0.0.1"]),
    );
    assert_eq!(bad_addr.status, 400, "{}", bad_addr.body_text());
    let no_key = post(&server, "/v1/observations", r#"{"source":"s","addrs":[]}"#);
    assert_eq!(no_key.status, 400);

    let empty = get(server.local_addr(), "/v1/observations/estimate").expect("estimate");
    assert_eq!(empty.status, 422);

    let metrics = get(server.local_addr(), "/metrics")
        .expect("metrics")
        .body_text();
    assert_eq!(counter(&metrics, "serve.ingest.rejected"), 3);
    server.shutdown();
}

#[test]
fn injected_torn_write_is_not_acked_and_recovery_truncates_it() {
    let _guard = plan_lock();
    let dir = scratch("torn");

    // Scope 0 = the first non-ops request: only that append tears.
    let plan = FaultPlan::parse("site=durable.wal.append kind=torn-write scope=0 hit=0")
        .expect("plan parses");
    install(plan).expect("fault runtime armed");

    let server = start_ingest(&dir, ServerConfig::default());
    let torn = post(
        &server,
        "/v1/observations",
        &batch("k1", "s1", &["8.0.0.1"]),
    );
    assert_eq!(torn.status, 503, "{}", torn.body_text());
    assert!(torn.body_text().contains("not acknowledged"));
    assert_eq!(torn.header("retry-after"), Some("1"));

    // The WAL is poisoned after a torn write: later appends refuse too
    // (fail-stop beats silently writing after an unknown disk state).
    let poisoned = post(
        &server,
        "/v1/observations",
        &batch("k2", "s1", &["8.0.0.2"]),
    );
    assert_eq!(poisoned.status, 503);

    let metrics = get(server.local_addr(), "/metrics")
        .expect("metrics")
        .body_text();
    assert_eq!(counter(&metrics, "serve.wal.append_errors"), 2);
    assert_eq!(counter(&metrics, "serve.ingest.applied"), 0);
    server.shutdown();
    clear();

    // Restart: the torn tail is truncated, nothing was acked, nothing is
    // replayed — and the WAL accepts appends again.
    let server = start_ingest(&dir, ServerConfig::default());
    let stats = get(server.local_addr(), "/v1/observations/stats").expect("stats");
    let text = stats.body_text();
    assert!(text.contains("\"applied\":0"), "{text}");
    assert!(text.contains("\"wal_records_replayed\":0"), "{text}");
    let torn_bytes: u64 = text
        .split("\"torn_tail_bytes\":")
        .nth(1)
        .and_then(|t| t.split([',', '}']).next())
        .and_then(|v| v.parse().ok())
        .expect("torn_tail_bytes field");
    assert!(torn_bytes > 0, "{text}");

    let retried = post(
        &server,
        "/v1/observations",
        &batch("k1", "s1", &["8.0.0.1"]),
    );
    assert_eq!(retried.status, 201, "{}", retried.body_text());
    server.shutdown();
}
