//! Ops-surface end-to-end tests: the live telemetry endpoints
//! (`/metrics`, `/v1/profile`, `/v1/trace/tail`) must render
//! **byte-identically** across worker counts for the same sequential
//! request sequence, and metrics reads must never drain.
//!
//! The servers here run [`MetricsHub::logical`], so even the volatile
//! lane (latency quantiles, stage durations) is a deterministic function
//! of the request sequence — which is exactly what makes whole-body byte
//! equality a meaningful assertion.

mod common;

use common::{inline_backend, start};
use ghosts_serve::client::{get, post_json};
use ghosts_serve::{MetricsHub, Server, ServerConfig};

/// Runs one fixed, sequential request sequence against a fresh
/// logical-clock server and returns the three ops-surface bodies.
fn drive(workers: usize) -> (String, String, String) {
    let server = Server::bind(
        ServerConfig {
            workers,
            ..ServerConfig::default()
        },
        inline_backend(),
        MetricsHub::logical(),
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    let miss = post_json(addr, "/v1/estimate", r#"{"window":0}"#).expect("miss");
    assert_eq!(miss.status, 200, "{}", miss.body_text());
    let hit = post_json(addr, "/v1/estimate", r#"{"window":0}"#).expect("hit");
    assert_eq!(hit.header("x-cache"), Some("hit-mem"));
    let inline = post_json(
        addr,
        "/v1/estimate",
        r#"{"table":{"sources":3,"histories":[[1,300],[2,250],[4,220],[3,180],[5,160],[6,140],[7,400]]},"limit":100000}"#,
    )
    .expect("inline");
    assert_eq!(inline.status, 200, "{}", inline.body_text());
    assert_eq!(
        post_json(addr, "/v1/estimate", "{not json")
            .expect("bad")
            .status,
        400
    );
    assert_eq!(
        get(addr, "/v1/membership/8.0.0.7").expect("member").status,
        200
    );
    assert_eq!(get(addr, "/healthz").expect("healthz").status, 200);

    let metrics = get(addr, "/metrics").expect("metrics");
    let profile = get(addr, "/v1/profile").expect("profile");
    let tail = get(addr, "/v1/trace/tail?n=16").expect("tail");
    assert_eq!(metrics.status, 200);
    assert_eq!(profile.status, 200);
    assert_eq!(tail.status, 200);
    let out = (metrics.body_text(), profile.body_text(), tail.body_text());
    server.shutdown();
    out
}

#[test]
fn ops_surfaces_are_byte_identical_across_worker_counts() {
    let seq = drive(1);
    let par = drive(4);
    assert_eq!(seq.0, par.0, "/metrics differs between 1 and 4 workers");
    assert_eq!(seq.1, par.1, "/v1/profile differs between 1 and 4 workers");
    assert_eq!(
        seq.2, par.2,
        "/v1/trace/tail differs between 1 and 4 workers"
    );
}

#[test]
fn metrics_exposition_has_quantiles_window_and_lanes() {
    let (metrics, _, _) = drive(2);
    assert!(
        metrics.contains("# TYPE serve_requests counter"),
        "{metrics}"
    );
    assert!(
        metrics.contains("serve_request_us{lane=\"volatile\",quantile=\"0.99\"}"),
        "{metrics}"
    );
    assert!(metrics.contains("# window: last"), "{metrics}");
    // Trace-derived estimator counters merge into the same exposition.
    assert!(metrics.contains("estimate_"), "{metrics}");
}

#[test]
fn profile_attributes_serve_and_estimator_stages() {
    let (_, profile, _) = drive(2);
    assert!(profile.contains("\"clock\":\"logical\""), "{profile}");
    for stage in [
        "serve/parse",
        "serve/cache",
        "serve/render",
        "estimate/select",
        "estimate/fit",
    ] {
        assert!(profile.contains(stage), "missing {stage}: {profile}");
    }
}

#[test]
fn trace_tail_is_schema_valid_v4_with_retention_bias() {
    let (_, _, tail) = drive(2);
    assert!(tail.contains("ghosts-events/4"), "{tail}");
    let summary = ghosts_obs::validate_jsonl(&tail).expect("tail validates against the schema");
    assert!(summary.events >= 2, "tail_retention + retained requests");
    assert_eq!(summary.errors, 1, "the 400 rides the error channel");
    assert!(tail.contains("tail_retention"), "{tail}");
    // The bad-JSON request (an Error class) is always retained even though
    // routine successes are admission-sampled.
    assert!(tail.contains("\"status\":400"), "{tail}");
}

#[test]
fn trace_tail_n_bounds_the_rendered_entries() {
    let server = start(1);
    let addr = server.local_addr();
    for _ in 0..4 {
        assert_eq!(get(addr, "/healthz").expect("healthz").status, 200);
    }
    let capped = get(addr, "/v1/trace/tail?n=1").expect("tail").body_text();
    let full = get(addr, "/v1/trace/tail").expect("tail").body_text();
    let requests = |body: &str| body.lines().filter(|l| l.contains("request[")).count();
    assert_eq!(requests(&capped), 1);
    assert!(requests(&full) > 1, "{full}");
    assert_eq!(
        get(addr, "/v1/trace/tail?n=bogus").expect("bad n").status,
        400
    );
    server.shutdown();
}

#[test]
fn metrics_reads_are_non_mutating_over_a_quiescent_server() {
    let server = start(1);
    let addr = server.local_addr();
    assert_eq!(
        post_json(addr, "/v1/estimate", r#"{"window":0}"#)
            .expect("estimate")
            .status,
        200
    );
    // Reading straight off the hub: consecutive reads of every surface
    // must be identical (snapshots are merge views, never drains).
    let hub = server.hub();
    assert_eq!(hub.render_text(), hub.render_text(), "/metrics drained");
    assert_eq!(hub.render_profile(), hub.render_profile());
    assert_eq!(hub.render_tail(8), hub.render_tail(8));
    // And over HTTP: ops reads bypass request accounting, so the scrape
    // itself must not perturb what the next scrape sees.
    for path in ["/metrics", "/v1/profile", "/v1/trace/tail?n=8"] {
        let first = get(addr, path).expect(path).body_text();
        let second = get(addr, path).expect(path).body_text();
        assert_eq!(first, second, "consecutive GET {path} scrapes differ");
    }
    server.shutdown();
}
