//! Property tests for the server's hostile-input surface: arbitrary
//! bytes, truncated heads, oversized bodies and malformed JSON must all
//! produce 4xx responses (or a clean close) — never a panic, never a 5xx.
//! One long-lived server absorbs every case; a final health check proves
//! it came through unharmed.

mod common;

use common::start;
use ghosts_serve::client::{get, post_json};
use ghosts_serve::http::{MAX_BODY_BYTES, MAX_HEAD_BYTES};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Sends raw bytes, returns the status code if the server answered.
fn raw_roundtrip(addr: SocketAddr, payload: &[u8]) -> Option<u16> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let timeout = Some(Duration::from_secs(10));
    stream.set_read_timeout(timeout).expect("timeout");
    stream.set_write_timeout(timeout).expect("timeout");
    let _ = stream.write_all(payload);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).ok()?;
    let head = std::str::from_utf8(&raw).ok()?;
    let status = head.split(' ').nth(1)?;
    status.parse().ok()
}

proptest! {
    #[test]
    fn arbitrary_bytes_never_yield_5xx(payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        let server = start(2);
        let addr = server.local_addr();
        if let Some(status) = raw_roundtrip(addr, &payload) {
            // Random bytes essentially never form a valid request line, so
            // any answer must be a 4xx.
            prop_assert!((400..500).contains(&status), "status {status} for {payload:?}");
        }
        let health = get(addr, "/healthz").expect("server still alive");
        prop_assert_eq!(health.status, 200);
        server.shutdown();
    }

    #[test]
    fn malformed_estimate_json_is_400_never_panic(
        bytes in proptest::collection::vec(0x20u8..0x7f, 0..200),
    ) {
        let body = String::from_utf8(bytes).expect("printable ascii");
        let server = start(1);
        let addr = server.local_addr();
        let r = post_json(addr, "/v1/estimate", &body).expect("response");
        // Printable garbage may parse as JSON but essentially never as a
        // valid request document; both rejections are 4xx.
        prop_assert!((400..500).contains(&r.status), "status {} for {body:?}", r.status);
        let health = get(addr, "/healthz").expect("server still alive");
        prop_assert_eq!(health.status, 200);
        server.shutdown();
    }
}

#[test]
fn truncated_head_gets_4xx_after_timeout() {
    let server = common::start_with(ghosts_serve::ServerConfig {
        workers: 1,
        io_timeout_ms: 200,
        ..ghosts_serve::ServerConfig::default()
    });
    let addr = server.local_addr();
    // A request head that never finishes: the socket read times out and
    // the server answers 408 instead of hanging the worker.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nhost: x")
        .expect("partial head");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read");
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 408"), "{text}");
    server.shutdown();
}

#[test]
fn oversized_head_and_body_are_rejected() {
    let server = start(1);
    let addr = server.local_addr();

    let huge_target = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(MAX_HEAD_BYTES));
    assert_eq!(raw_roundtrip(addr, huge_target.as_bytes()), Some(431));

    let decl = format!(
        "POST /v1/estimate HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
        MAX_BODY_BYTES + 1
    );
    assert_eq!(raw_roundtrip(addr, decl.as_bytes()), Some(413));

    let health = get(addr, "/healthz").expect("still alive");
    assert_eq!(health.status, 200);
    server.shutdown();
}

#[test]
fn bad_methods_and_versions_are_400() {
    let server = start(1);
    let addr = server.local_addr();
    for payload in [
        "get /healthz HTTP/1.1\r\n\r\n".as_bytes(), // lowercase method
        b"GET /healthz HTTP/2\r\n\r\n",
        b"GET healthz HTTP/1.1\r\n\r\n", // target missing leading slash
        b"GET /healthz HTTP/1.1 extra\r\n\r\n",
        b"GET /healthz HTTP/1.1\r\nno-colon-here\r\n\r\n",
        b"POST /v1/estimate HTTP/1.1\r\ncontent-length: nan\r\n\r\n",
    ] {
        assert_eq!(
            raw_roundtrip(addr, payload),
            Some(400),
            "{}",
            String::from_utf8_lossy(payload)
        );
    }
    server.shutdown();
}
