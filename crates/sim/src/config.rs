//! Simulation configuration.
//!
//! The default scale models a **1/256 mini-Internet**: the allocation
//! budget, spoof volumes and dataset sizes are roughly 1/256 of the real
//! 2011–2014 Internet, so every experiment runs on a laptop while all
//! *relative* quantities (utilisation fractions, estimated/observed ratios,
//! per-RIR shares, growth shapes) match the paper's.

/// Spoofed-traffic volumes injected into the NetFlow sources (§4.5).
#[derive(Debug, Clone, Copy)]
pub struct SpoofConfig {
    /// Spoofed source addresses observed by SWIN per quarter.
    pub swin_per_quarter: u64,
    /// Spoofed source addresses observed by CALT per quarter (before the
    /// spike).
    pub calt_per_quarter: u64,
    /// CALT's observed spoof volume jumped an order of magnitude in March
    /// 2014 (§4.5: "for CALT it increases … to almost 250,000 in March
    /// 2014"); this is the per-quarter volume from that quarter on.
    pub calt_spike_per_quarter: u64,
    /// The quarter index of the CALT spike (Mar 2014 = quarter 12).
    pub calt_spike_quarter: u8,
}

impl Default for SpoofConfig {
    fn default() -> Self {
        Self {
            swin_per_quarter: 12_000,
            calt_per_quarter: 18_000,
            calt_spike_per_quarter: 240_000,
            calt_spike_quarter: 12,
        }
    }
}

/// Top-level simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Master seed; every component derives its own stream from it.
    pub seed: u64,
    /// Total address budget the allocation generator aims for (the real
    /// Internet had ≈ 3.6 G allocated by 2014; the default is 1/256).
    pub allocated_budget: u64,
    /// Fraction of allocations that are publicly routed (≈ 80%, [14]).
    pub routed_fraction: f64,
    /// Per-probe loss probability of the active prober (failure injection).
    pub probe_loss: f64,
    /// Fraction of probes dropped by remote ICMP/TCP rate limiting when a
    /// /24 is probed too fast (failure injection; the paper's prober spaced
    /// probes ~2 h apart per /24 precisely to avoid this).
    pub rate_limit_drop: f64,
    /// Spoof volumes.
    pub spoof: SpoofConfig,
    /// Whether to embed the six ground-truth networks A–F (§5.2).
    pub with_truth_networks: bool,
}

impl SimConfig {
    /// The default 1/256-scale configuration used by the experiment
    /// harness.
    pub fn default_scale(seed: u64) -> Self {
        Self {
            seed,
            allocated_budget: 14_000_000,
            routed_fraction: 0.80,
            probe_loss: 0.03,
            rate_limit_drop: 0.0,
            spoof: SpoofConfig::default(),
            with_truth_networks: true,
        }
    }

    /// A small configuration for unit/integration tests (≈ 1/8000 scale).
    pub fn tiny(seed: u64) -> Self {
        Self {
            seed,
            allocated_budget: 450_000,
            routed_fraction: 0.80,
            probe_loss: 0.03,
            rate_limit_drop: 0.0,
            spoof: SpoofConfig {
                swin_per_quarter: 2_000,
                calt_per_quarter: 3_000,
                calt_spike_per_quarter: 30_000,
                calt_spike_quarter: 12,
            },
            with_truth_networks: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_a_256th() {
        let c = SimConfig::default_scale(1);
        // 14 M ≈ 3.58 G / 256.
        assert!(c.allocated_budget * 256 > 3_300_000_000);
        assert!(c.allocated_budget * 256 < 3_900_000_000);
        assert!(c.with_truth_networks);
    }

    #[test]
    fn tiny_is_small() {
        let c = SimConfig::tiny(1);
        assert!(c.allocated_budget < 1_000_000);
        assert!(!c.with_truth_networks);
    }
}
