//! Dynamic-address churn: the §4.6 GAME session experiment.
//!
//! The paper defends counting whole dynamic pools as de-facto used with an
//! experiment on 16 consecutive days of Steam session data: for 9 million
//! multi-session clients, "after the first four days all clients had
//! logged in at least once. From this point in time the observed distinct
//! IP addresses increased 2.7 times (from 16 to 42 million), while the
//! observed distinct /24 networks only increased 1.2 times (from 2.3 to
//! 2.8 million)."
//!
//! This module models that setting: clients homed on dynamic pools draw a
//! fresh address per session (uniform within a /24 picked by a skewed
//! preference over the pool — ISPs fill low ranges first), occasionally
//! roaming to another pool. Distinct-IP counts keep climbing long after
//! distinct-/24 counts have saturated — exactly the paper's asymmetry.

use crate::util::{label, mix, unit};
use ghosts_net::{AddrSet, SubnetSet};

/// Configuration of the churn experiment.
#[derive(Debug, Clone, Copy)]
pub struct ChurnConfig {
    /// Number of clients with multiple sessions.
    pub clients: u32,
    /// Days observed (the paper used 16).
    pub days: u8,
    /// Clients per dynamic pool.
    pub clients_per_pool: u32,
    /// /24 subnets per pool (pools are /20-ish in practice).
    pub subnets_per_pool: u32,
    /// Probability a client has a session on a given day.
    pub session_prob: f64,
    /// Probability a session lands on a foreign pool (mobility).
    pub roam_prob: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        Self {
            clients: 40_000,
            days: 16,
            clients_per_pool: 160,
            subnets_per_pool: 16,
            session_prob: 0.8,
            roam_prob: 0.06,
            seed: 416,
        }
    }
}

/// Distinct identifiers accumulated day by day.
#[derive(Debug, Clone)]
pub struct ChurnResult {
    /// Distinct IPv4 addresses seen by the end of each day.
    pub distinct_ips: Vec<u64>,
    /// Distinct /24 subnets seen by the end of each day.
    pub distinct_subnets: Vec<u64>,
    /// Day (1-based) by which every client had logged in at least once,
    /// if that happened within the observation.
    pub all_seen_by_day: Option<u8>,
}

impl ChurnResult {
    /// Growth ratio of a series from `from_day` (1-based) to the end.
    fn ratio(series: &[u64], from_day: u8) -> f64 {
        let from = series[(from_day - 1) as usize] as f64;
        let last = *series.last().expect("non-empty") as f64; // lint: allow(no-unwrap) series built with >= 1 day
        if ghosts_stats::approx::is_exact_zero(from) {
            f64::NAN
        } else {
            last / from
        }
    }

    /// Distinct-IP growth after `from_day` (the paper's 2.7× from day 4).
    pub fn ip_growth_after(&self, from_day: u8) -> f64 {
        Self::ratio(&self.distinct_ips, from_day)
    }

    /// Distinct-/24 growth after `from_day` (the paper's 1.2×).
    pub fn subnet_growth_after(&self, from_day: u8) -> f64 {
        Self::ratio(&self.distinct_subnets, from_day)
    }
}

/// Weight of a cold (rarely assigned) /24 relative to a hot one.
/// Calibrated so a cold /24's first sighting takes days — the /24 tail
/// that keeps the subnet count creeping up long after the hot ranges have
/// saturated.
const COLD_WEIGHT: f64 = 0.016;

/// Draws the /24 index within a pool: the low half of the pool is "hot"
/// (ISPs fill low ranges first), the high half is cold backup space
/// assigned only occasionally.
fn pick_subnet(cfg: &ChurnConfig, u: f64) -> u32 {
    let n = cfg.subnets_per_pool;
    let hot = n / 2;
    let cold = n - hot;
    let total = f64::from(hot) + f64::from(cold) * COLD_WEIGHT;
    let hot_mass = f64::from(hot) / total;
    if u < hot_mass {
        (u / hot_mass * f64::from(hot)) as u32
    } else {
        let v = (u - hot_mass) / (1.0 - hot_mass);
        (hot + (v * f64::from(cold)) as u32).min(n - 1)
    }
}

/// Runs the churn experiment.
pub fn simulate_churn(cfg: &ChurnConfig) -> ChurnResult {
    let pools = cfg.clients.div_ceil(cfg.clients_per_pool);
    let pool_base = |p: u32| 0x0e00_0000u32 + p * cfg.subnets_per_pool * 256;

    let mut ips = AddrSet::new();
    let mut subnets = SubnetSet::new();
    let mut seen_client = vec![false; cfg.clients as usize];
    let mut seen_count = 0u32;
    let mut distinct_ips = Vec::with_capacity(cfg.days as usize);
    let mut distinct_subnets = Vec::with_capacity(cfg.days as usize);
    let mut all_seen_by_day = None;

    for day in 1..=cfg.days {
        for client in 0..cfg.clients {
            let h = [
                cfg.seed,
                label("session"),
                u64::from(client),
                u64::from(day),
            ];
            if unit(&h) >= cfg.session_prob {
                continue;
            }
            if !seen_client[client as usize] {
                seen_client[client as usize] = true;
                seen_count += 1;
            }
            // Home pool, or a roam target.
            let home = client / cfg.clients_per_pool;
            let roam = unit(&[cfg.seed, label("roam"), u64::from(client), u64::from(day)]);
            let pool = if roam < cfg.roam_prob {
                (mix(&[
                    cfg.seed,
                    label("roam-to"),
                    u64::from(client),
                    u64::from(day),
                ]) % u64::from(pools)) as u32
            } else {
                home
            };
            // Fresh DHCP lease: skewed /24 choice, uniform last byte.
            let su = unit(&[cfg.seed, label("subnet"), u64::from(client), u64::from(day)]);
            let subnet = pick_subnet(cfg, su);
            let byte = 1
                + (mix(&[cfg.seed, label("byte"), u64::from(client), u64::from(day)]) % 254) as u32;
            let addr = pool_base(pool) + subnet * 256 + byte;
            ips.insert(addr);
            subnets.insert_addr(addr);
        }
        if all_seen_by_day.is_none() && seen_count == cfg.clients {
            all_seen_by_day = Some(day);
        }
        distinct_ips.push(ips.len());
        distinct_subnets.push(subnets.len());
    }

    ChurnResult {
        distinct_ips,
        distinct_subnets,
        all_seen_by_day,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_are_monotone_and_consistent() {
        let r = simulate_churn(&ChurnConfig {
            clients: 5_000,
            ..ChurnConfig::default()
        });
        assert_eq!(r.distinct_ips.len(), 16);
        for w in r.distinct_ips.windows(2) {
            assert!(w[1] >= w[0]);
        }
        for w in r.distinct_subnets.windows(2) {
            assert!(w[1] >= w[0]);
        }
        for (ips, subs) in r.distinct_ips.iter().zip(&r.distinct_subnets) {
            assert!(subs <= ips);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = simulate_churn(&ChurnConfig::default());
        let b = simulate_churn(&ChurnConfig::default());
        assert_eq!(a.distinct_ips, b.distinct_ips);
        let c = simulate_churn(&ChurnConfig {
            seed: 999,
            ..ChurnConfig::default()
        });
        assert_ne!(a.distinct_ips, c.distinct_ips);
    }

    #[test]
    fn paper_asymmetry_reproduced() {
        // §4.6: IPs grow ~2.7x after day 4, /24s only ~1.2x.
        let r = simulate_churn(&ChurnConfig::default());
        // Everyone logs in within the observation, the vast majority in
        // the first days (a handful of stragglers is statistical noise).
        assert!(
            r.all_seen_by_day.is_none_or(|d| d <= 8),
            "clients seen too late: {:?}",
            r.all_seen_by_day
        );
        let ip_growth = r.ip_growth_after(4);
        let subnet_growth = r.subnet_growth_after(4);
        assert!(
            (2.0..=3.4).contains(&ip_growth),
            "IP growth {ip_growth} (paper 2.7)"
        );
        assert!(
            (1.02..=1.45).contains(&subnet_growth),
            "/24 growth {subnet_growth} (paper 1.2)"
        );
        assert!(ip_growth > 1.8 * subnet_growth);
    }

    #[test]
    fn more_roaming_means_more_subnets() {
        let lo = simulate_churn(&ChurnConfig {
            roam_prob: 0.0,
            clients: 8_000,
            ..ChurnConfig::default()
        });
        let hi = simulate_churn(&ChurnConfig {
            roam_prob: 0.3,
            clients: 8_000,
            ..ChurnConfig::default()
        });
        assert!(
            hi.subnet_growth_after(4) >= lo.subnet_growth_after(4),
            "roaming must not reduce /24 churn"
        );
    }
}
