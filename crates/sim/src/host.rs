//! Host types and their measurement-facing behaviour (§4.2).
//!
//! The paper groups devices into routers, servers/proxies, clients and
//! specialised devices, and argues each group is sampled by several
//! sources. Here every used address gets a stable [`HostType`] plus stable
//! behavioural traits (does it answer ICMP? port 80? how active is it in
//! client-facing services?), all derived by hashing — no per-address state.

use crate::util::{label, mix, unit};

/// Device classes from §4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HostType {
    /// ISP or home router (home routers front NAT'd client traffic).
    Router,
    /// Server or proxy.
    Server,
    /// End-user client (PC, phone); may sit on a dynamic pool.
    Client,
    /// Printer, camera, industrial device — barely observable (§4.2 calls
    /// these "severely under-represented").
    Specialized,
}

/// How a probed host reacts to an active probe (§4.4 counting rules).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeResponse {
    /// ICMP echo reply — counted as used.
    EchoReply,
    /// ICMP destination protocol/port unreachable — counted as used.
    Unreachable,
    /// ICMP TTL exceeded — ignored (unclear if the address is used).
    TtlExceeded,
    /// TCP SYN/ACK — counted as used (TPING).
    SynAck,
    /// TCP RST — ignored (25% of RSTs came from firewalls covering whole
    /// /25+ networks).
    Rst,
    /// Silence: filtered, firewalled, or truly unused.
    Nothing,
}

/// Stable behavioural traits of one used address.
#[derive(Debug, Clone, Copy)]
pub struct HostTraits {
    /// Device class.
    pub host_type: HostType,
    /// Answers ICMP echo (when not firewalled/lossy).
    pub icmp_responsive: bool,
    /// Answers TCP SYN on port 80.
    pub tcp80_responsive: bool,
    /// A firewall answers RST on its behalf.
    pub rst_firewall: bool,
    /// Client-service activity level in `[0, 1)`: drives how often the
    /// address shows up in passive logs. Heavy-tailed — most addresses are
    /// rarely active, a few are very busy.
    pub activity: f64,
}

/// Derives the stable traits of `addr`, given whether its /24 is a dynamic
/// pool (dynamic pools are client-only) and the simulation seed.
pub fn traits_for(seed: u64, addr: u32, dynamic_pool: bool) -> HostTraits {
    let h = mix(&[seed, label("host-type"), u64::from(addr)]);
    let u = (h >> 11) as f64 / (1u64 << 53) as f64;
    let last_byte = addr & 0xff;

    let host_type = if dynamic_pool {
        HostType::Client
    } else if last_byte == 1 && u < 0.75 {
        // .1 is very often the subnet router.
        HostType::Router
    } else if u < 0.22 {
        HostType::Server
    } else if u < 0.30 {
        HostType::Specialized
    } else if u < 0.38 {
        HostType::Router
    } else {
        HostType::Client
    };

    let u_icmp = unit(&[seed, label("icmp"), u64::from(addr)]);
    let u_tcp = unit(&[seed, label("tcp80"), u64::from(addr)]);
    let u_rst = unit(&[seed, label("rst"), u64::from(addr)]);
    let u_act = unit(&[seed, label("activity"), u64::from(addr)]);

    let icmp_p = match host_type {
        HostType::Router => 0.80,
        HostType::Server => 0.72,
        HostType::Client => {
            if dynamic_pool {
                0.30 // the pool's NAT/home routers answer for many
            } else {
                0.26
            }
        }
        HostType::Specialized => 0.06,
    };
    let tcp_p = match host_type {
        HostType::Router => 0.18, // admin web UIs on home routers
        HostType::Server => 0.62,
        HostType::Client => 0.05,
        HostType::Specialized => 0.10, // e.g. printers listening on IPP/80
    };
    let act_scale = match host_type {
        HostType::Client => 1.0,
        HostType::Server => 0.25, // servers appear in logs as proxies do
        HostType::Router => 0.55, // NAT'd traffic surfaces at the router
        HostType::Specialized => 0.0,
    };

    HostTraits {
        host_type,
        icmp_responsive: u_icmp < icmp_p,
        tcp80_responsive: u_tcp < tcp_p,
        rst_firewall: u_rst < 0.05,
        // Square the uniform for a heavy tail of barely-active hosts.
        activity: u_act * u_act * act_scale,
    }
}

impl HostTraits {
    /// Response to one ICMP echo probe.
    pub fn icmp_response(&self) -> ProbeResponse {
        if self.icmp_responsive {
            ProbeResponse::EchoReply
        } else if self.host_type == HostType::Server && self.rst_firewall {
            ProbeResponse::Unreachable
        } else {
            ProbeResponse::Nothing
        }
    }

    /// Response to one TCP SYN on port 80.
    pub fn tcp80_response(&self) -> ProbeResponse {
        if self.tcp80_responsive {
            ProbeResponse::SynAck
        } else if self.rst_firewall {
            ProbeResponse::Rst
        } else {
            ProbeResponse::Nothing
        }
    }
}

/// Whether a probe response counts the address as used, per the §4.4
/// rules (echo replies and unreachables for ICMP; SYN/ACKs only for TCP).
pub fn counts_as_used(resp: ProbeResponse) -> bool {
    matches!(
        resp,
        ProbeResponse::EchoReply | ProbeResponse::Unreachable | ProbeResponse::SynAck
    )
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // determinism asserts compare exact values on purpose
mod tests {
    use super::*;

    #[test]
    fn traits_are_stable() {
        let a = traits_for(1, 0x0a000001, false);
        let b = traits_for(1, 0x0a000001, false);
        assert_eq!(a.host_type, b.host_type);
        assert_eq!(a.icmp_responsive, b.icmp_responsive);
        assert_eq!(a.activity, b.activity);
    }

    #[test]
    fn dynamic_pools_are_client_only() {
        for i in 0..200u32 {
            let t = traits_for(3, 0x0b000000 + i, true);
            assert_eq!(t.host_type, HostType::Client);
        }
    }

    #[test]
    fn type_mix_is_plausible() {
        let mut servers = 0;
        let mut clients = 0;
        let mut routers = 0;
        let mut special = 0;
        for i in 0..20_000u32 {
            match traits_for(7, i * 257 + 5, false).host_type {
                HostType::Server => servers += 1,
                HostType::Client => clients += 1,
                HostType::Router => routers += 1,
                HostType::Specialized => special += 1,
            }
        }
        assert!(clients > servers && servers > special);
        assert!(routers > 1000 && special > 500);
    }

    #[test]
    fn icmp_rates_by_type() {
        let mut respond = [0u32; 2]; // [server, specialized]
        let mut totals = [0u32; 2];
        for i in 0..60_000u32 {
            let t = traits_for(9, i * 101 + 7, false);
            let idx = match t.host_type {
                HostType::Server => 0,
                HostType::Specialized => 1,
                _ => continue,
            };
            totals[idx] += 1;
            if t.icmp_responsive {
                respond[idx] += 1;
            }
        }
        let server_rate = f64::from(respond[0]) / f64::from(totals[0]);
        let special_rate = f64::from(respond[1]) / f64::from(totals[1]);
        assert!((server_rate - 0.72).abs() < 0.05, "{server_rate}");
        assert!(special_rate < 0.12, "{special_rate}");
    }

    #[test]
    fn probe_response_counting_rules() {
        assert!(counts_as_used(ProbeResponse::EchoReply));
        assert!(counts_as_used(ProbeResponse::Unreachable));
        assert!(counts_as_used(ProbeResponse::SynAck));
        assert!(!counts_as_used(ProbeResponse::Rst));
        assert!(!counts_as_used(ProbeResponse::TtlExceeded));
        assert!(!counts_as_used(ProbeResponse::Nothing));
    }

    #[test]
    fn activity_is_heavy_tailed() {
        let acts: Vec<f64> = (0..20_000u32)
            .filter_map(|i| {
                let t = traits_for(11, i * 31 + 3, true);
                (t.host_type == HostType::Client).then_some(t.activity)
            })
            .collect();
        let low = acts.iter().filter(|&&a| a < 0.1).count() as f64 / acts.len() as f64;
        let high = acts.iter().filter(|&&a| a > 0.7).count() as f64 / acts.len() as f64;
        assert!(low > 0.25, "low-activity fraction {low}");
        assert!(high < 0.25, "high-activity fraction {high}");
    }
}
