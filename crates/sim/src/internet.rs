//! The synthetic Internet: allocations, routing, and ground-truth usage.
//!
//! Substitutes for the paper's gated measurement data (see DESIGN.md §2).
//! The generator builds, deterministically from one seed:
//!
//! 1. An **allocation history** 1983–2014 with era-dependent RIR shares,
//!    prefix sizes, countries and industries (the structure behind the
//!    stratifications of §3.4 and the growth analyses of §6.4–6.7).
//! 2. A **routed table** covering ≈ 80% of allocations (§1: sources only
//!    detect use in the publicly routed space).
//! 3. **Ground-truth usage** per quarter: every /24 of every routed
//!    allocation gets an activation threshold and a density profile; usage
//!    grows linearly over the study with RIR-, country- and age-dependent
//!    rates. Per-address usage follows a realistic non-uniform last-byte
//!    distribution (which the spoof filter's Bayes stage exploits, §4.5).
//!
//! Usage is monotone in time at the address level — a simplification the
//! paper itself leans on when it argues that dynamically *assigned*
//! addresses still count as de-facto used pool members (§4.6).

use crate::config::SimConfig;
use crate::util::{label, unit};
use ghosts_net::registry::{Allocation, AllocationId, CountryCode, Industry, Registry, Rir};
use ghosts_net::{AddrSet, Prefix, RoutedTable, SubnetSet};
use ghosts_pipeline::time::Quarter;
use std::collections::BTreeMap;

/// Density class of a used /24 (Cai & Heidemann-style heterogeneity:
/// "most addresses in about one-fifth of /24 blocks are in use less than
/// 10% of the time").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DensityClass {
    /// A handful of addresses (infrastructure, small sites).
    Sparse,
    /// Tens of addresses.
    Medium,
    /// Most of the /24 (dynamic pools, dense enterprise space).
    Dense,
}

/// Ground-truth state of one /24 subnet of routed space.
#[derive(Debug, Clone)]
pub struct Block {
    /// Subnet id (base address >> 8).
    pub subnet: u32,
    /// Owning allocation.
    pub alloc: AllocationId,
    /// Activation threshold in `[0,1)`: the block is in use at quarter `q`
    /// iff `activation_u < frac_active(alloc, q)`.
    pub activation_u: f64,
    /// Density class.
    pub density: DensityClass,
    /// Used addresses at full ramp-up.
    pub target_addrs: u16,
    /// Whether this /24 is a dynamically assigned pool (client-only).
    pub dynamic_pool: bool,
    /// A "stealth" block: in use, but its hosts neither answer probes nor
    /// touch client-facing services (specialised devices, internal
    /// infrastructure with public addresses — the population §4.2 calls
    /// "severely under-represented"). These are the /24-level ghosts.
    pub stealth: bool,
    /// Index into the ground-truth network table (§5.2's networks A–F),
    /// if this block belongs to one.
    pub truth_network: Option<u8>,
}

/// Per-allocation usage parameters.
#[derive(Debug, Clone)]
pub(crate) struct AllocMeta {
    pub(crate) routed: bool,
    /// Fraction of the allocation's /24s used at the end of the study.
    pub(crate) final_util: f64,
    /// Fraction used at the start (Jan 2011).
    pub(crate) base_util: f64,
}

/// Per-RIR generation parameters: budget share and end-of-study /24
/// utilisation, growth ratio over the 3.5-year study.
fn rir_params(rir: Rir) -> (f64, f64, f64) {
    // (budget share, final /24 utilisation of routed space, growth ratio)
    match rir {
        Rir::Apnic => (0.30, 0.78, 1.28),
        Rir::Arin => (0.29, 0.34, 1.19),
        Rir::Ripe => (0.27, 0.72, 1.14),
        Rir::LacNic => (0.09, 0.58, 1.52),
        Rir::AfriNic => (0.05, 0.62, 1.99),
    }
}

/// Country tables per RIR: (ISO code, weight, growth multiplier).
fn countries(rir: Rir) -> &'static [(&'static str, f64, f64)] {
    match rir {
        Rir::Apnic => &[
            ("CN", 0.42, 1.45),
            ("JP", 0.14, 1.10),
            ("KR", 0.10, 1.15),
            ("IN", 0.07, 1.80),
            ("AU", 0.07, 1.10),
            ("TW", 0.06, 1.40),
            ("ID", 0.04, 1.90),
            ("VN", 0.03, 1.80),
            ("TH", 0.03, 1.55),
            ("MY", 0.02, 1.30),
            ("HK", 0.02, 1.15),
        ],
        Rir::Arin => &[("US", 0.88, 1.25), ("CA", 0.12, 1.15)],
        Rir::Ripe => &[
            ("DE", 0.15, 1.18),
            ("GB", 0.13, 1.22),
            ("FR", 0.11, 1.15),
            ("RU", 0.10, 1.28),
            ("IT", 0.09, 1.35),
            ("NL", 0.06, 1.18),
            ("ES", 0.05, 1.10),
            ("SE", 0.04, 1.10),
            ("PL", 0.04, 1.28),
            ("RO", 0.04, 2.00),
            ("TR", 0.04, 1.40),
            ("UA", 0.03, 1.25),
            ("CZ", 0.03, 1.10),
            ("CH", 0.02, 1.08),
            ("AT", 0.02, 1.08),
            ("BE", 0.02, 1.08),
            ("DK", 0.02, 1.15),
            ("NO", 0.02, 1.30),
            ("FI", 0.02, 1.10),
            ("GR", 0.02, 1.10),
            ("HU", 0.02, 1.12),
            ("PT", 0.02, 1.30),
            ("IL", 0.02, 1.12),
        ],
        Rir::LacNic => &[
            ("BR", 0.45, 1.85),
            ("MX", 0.18, 1.30),
            ("AR", 0.12, 1.60),
            ("CO", 0.10, 1.95),
            ("CL", 0.08, 1.45),
            ("UY", 0.07, 1.40),
        ],
        Rir::AfriNic => &[
            ("ZA", 0.50, 1.50),
            ("EG", 0.20, 1.60),
            ("NG", 0.10, 1.80),
            ("KE", 0.10, 1.70),
            ("MA", 0.10, 1.50),
        ],
    }
}

/// Industry weights (whois-based classification, §3.4 fn. 1).
const INDUSTRIES: [(Industry, f64); 6] = [
    (Industry::Isp, 0.50),
    (Industry::Corporate, 0.22),
    (Industry::Education, 0.08),
    (Industry::Government, 0.06),
    (Industry::Military, 0.04),
    (Industry::Unknown, 0.10),
];

/// Era parameters: year → (address-budget weight, RIR share override,
/// prefix-length menu). Lengths are ~8 bits longer than the real
/// Internet's because the whole simulation is 1/256 scale.
struct Era {
    weight: f64,
    rir_shares: [f64; 5], // order: AfriNIC, APNIC, ARIN, LACNIC, RIPE
    lens: &'static [(u8, f64)],
}

fn era_for(year: u16) -> Era {
    match year {
        1983..=1994 => Era {
            weight: 0.75,
            rir_shares: [0.00, 0.10, 0.65, 0.00, 0.25],
            lens: &[(12, 0.25), (14, 0.40), (16, 0.35)],
        },
        1995..=2003 => Era {
            weight: 0.8,
            rir_shares: [0.02, 0.20, 0.38, 0.06, 0.34],
            lens: &[(16, 0.50), (18, 0.30), (20, 0.20)],
        },
        2004..=2010 => Era {
            weight: 2.0 + 0.3 * f64::from(year - 2004),
            rir_shares: [0.04, 0.40, 0.20, 0.11, 0.25],
            lens: &[(14, 0.10), (16, 0.35), (18, 0.30), (20, 0.25)],
        },
        2011 => Era {
            weight: 1.9,
            rir_shares: [0.05, 0.42, 0.10, 0.13, 0.30],
            lens: &[(20, 0.15), (22, 0.65), (24, 0.20)],
        },
        _ => Era {
            weight: match year {
                2012 => 0.9,
                2013 => 0.7,
                _ => 0.3,
            },
            rir_shares: [0.06, 0.40, 0.08, 0.16, 0.30],
            lens: &[(20, 0.10), (22, 0.68), (24, 0.22)],
        },
    }
}

fn weighted_pick<T: Copy>(items: &[(T, f64)], u: f64) -> T {
    let total: f64 = items.iter().map(|(_, w)| w).sum();
    let mut acc = 0.0;
    for &(item, w) in items {
        acc += w / total;
        if u < acc {
            return item;
        }
    }
    items.last().expect("non-empty weighted menu").0 // lint: allow(no-unwrap) caller passes static menus
}

/// The /8s reserved for "dark" blocks: routed but essentially unused space
/// mirroring the real DoD blocks (53/8, 55/8, …) whose emptiness the spoof
/// filter's rate estimation relies on (§4.5 footnote 6).
pub(crate) const DARK_EIGHTS: [u8; 6] = [7, 11, 21, 26, 53, 55];

/// A cursor carving aligned prefixes out of the allocatable universe.
pub(crate) struct Carver {
    universe: Vec<Prefix>,
    block_idx: usize,
    offset: u64, // offset within the current universe block
}

impl Carver {
    fn new() -> Self {
        let dark: Vec<Prefix> = DARK_EIGHTS
            .iter()
            .map(|&o| Prefix::new(u32::from(o) << 24, 8))
            .collect();
        let mut excluded = ghosts_net::bogons::reserved_prefixes();
        excluded.extend(dark);
        let mut universe = ghosts_net::bogons::complement_of(&excluded);
        universe.sort();
        Self {
            universe,
            block_idx: 0,
            offset: 0,
        }
    }

    /// Carves the next free prefix of length `len`, or `None` when the
    /// universe is exhausted (never happens at 1/256 scale).
    pub(crate) fn carve(&mut self, len: u8) -> Option<Prefix> {
        let size = 1u64 << (32 - len);
        loop {
            let block = *self.universe.get(self.block_idx)?;
            if block.len() > len {
                // Block smaller than the request: skip it.
                self.block_idx += 1;
                self.offset = 0;
                continue;
            }
            // Align the offset up to the requested size.
            let aligned = self.offset.div_ceil(size) * size;
            if aligned + size > block.num_addresses() {
                self.block_idx += 1;
                self.offset = 0;
                continue;
            }
            self.offset = aligned + size;
            return Some(Prefix::new((u64::from(block.base()) + aligned) as u32, len));
        }
    }
}

/// The generated Internet with ground-truth usage.
pub struct GroundTruth {
    /// The configuration it was generated from.
    pub cfg: SimConfig,
    /// All delegations.
    pub registry: Registry,
    /// The publicly routed table.
    pub routed: RoutedTable,
    /// Ground-truth networks A–F (empty unless configured).
    pub truth_networks: Vec<crate::truth_networks::TruthNetwork>,
    blocks: Vec<Block>,
    block_by_subnet: BTreeMap<u32, u32>,
    alloc_meta: Vec<AllocMeta>,
}

impl GroundTruth {
    /// Generates the Internet from the configuration. Deterministic in
    /// `cfg.seed`.
    pub fn generate(cfg: SimConfig) -> Self {
        let seed = cfg.seed;
        let mut registry = Registry::new();
        let mut routed = RoutedTable::new();
        let mut carver = Carver::new();
        let mut alloc_meta: Vec<AllocMeta> = Vec::new();

        // --- Allocation history. ---
        // Budgeting is cumulative: a big legacy block early on simply
        // suppresses later allocation until the cumulative target catches
        // up, so the total always lands near the configured budget.
        let years: Vec<u16> = (1983..=2014).collect();
        let total_weight: f64 = years.iter().map(|&y| era_for(y).weight).sum();
        let mut counter = 0u64; // distinguishes draws within a year
        let mut total_spent = 0u64;
        let mut cumulative_target = 0.0f64;
        // Deterministic per-RIR budget balancing: each year accrues the
        // era's budget split to the per-RIR targets, and every draw goes
        // to the registry furthest below its target. A random per-draw
        // pick would leave the small registries at the mercy of a handful
        // of large-prefix draws at mini-Internet scales.
        const RIR_ORDER: [Rir; 5] = [Rir::AfriNic, Rir::Apnic, Rir::Arin, Rir::LacNic, Rir::Ripe];
        let mut desired = [0.0f64; 5];
        let mut spent_per_rir = [0.0f64; 5];
        for &year in &years {
            let era = era_for(year);
            let year_budget = cfg.allocated_budget as f64 * era.weight / total_weight;
            cumulative_target += year_budget;
            let share_sum: f64 = era.rir_shares.iter().sum();
            for (d, share) in desired.iter_mut().zip(&era.rir_shares) {
                *d += year_budget * share / share_sum;
            }
            while (total_spent as f64) < cumulative_target {
                counter += 1;
                let rir_idx = (0..5)
                    .max_by(|&a, &b| {
                        (desired[a] - spent_per_rir[a]).total_cmp(&(desired[b] - spent_per_rir[b]))
                    })
                    .expect("five registries"); // lint: allow(no-unwrap) RIR_ORDER is a non-empty const
                let rir = RIR_ORDER[rir_idx];
                // Keep individual blocks within reach of the remaining
                // budget (at small scales the legacy-era menu of short
                // prefixes would otherwise blow straight through it).
                let remaining = (cumulative_target - total_spent as f64).max(1.0) as u64;
                let affordable: Vec<(u8, f64)> = era
                    .lens
                    .iter()
                    .copied()
                    .filter(|&(l, _)| 1u64 << (32 - l) <= remaining * 8)
                    .collect();
                let menu: &[(u8, f64)] = if affordable.is_empty() {
                    // Fall back to the longest (smallest) prefix offered.
                    std::slice::from_ref(
                        // lint: allow(no-unwrap) era tables are non-empty consts
                        era.lens.last().expect("era menus are non-empty"),
                    )
                } else {
                    &affordable
                };
                let len =
                    weighted_pick(menu, unit(&[seed, label("len"), u64::from(year), counter]));
                let ctab = countries(rir);
                let menu: Vec<(usize, f64)> =
                    ctab.iter().enumerate().map(|(i, c)| (i, c.1)).collect();
                let ci = weighted_pick(
                    &menu,
                    unit(&[seed, label("country"), u64::from(year), counter]),
                );
                let industry = weighted_pick(
                    &INDUSTRIES,
                    unit(&[seed, label("industry"), u64::from(year), counter]),
                );
                let Some(prefix) = carver.carve(len) else {
                    break;
                };
                total_spent += prefix.num_addresses();
                spent_per_rir[rir_idx] += prefix.num_addresses() as f64;
                let country = CountryCode::new(ctab[ci].0);
                let id = registry.add(Allocation {
                    prefix,
                    rir,
                    country,
                    industry,
                    alloc_year: year,
                });

                // --- Usage parameters for this allocation. ---
                let (_, rir_final, rir_growth) = rir_params(rir);
                let country_growth = ctab[ci].2;
                let age_factor = 1.0 + 1.2 * ((f64::from(year) - 2004.0) / 10.0).max(0.0);
                // Per-allocation heterogeneity in final utilisation: a mix
                // of heavily-used, average and barely-used allocations.
                let u_mix = unit(&[seed, label("utilmix"), u64::from(id)]);
                let het = if u_mix < 0.15 {
                    1.45
                } else if u_mix < 0.70 {
                    1.10
                } else {
                    0.50
                };
                let final_util = (rir_final * het).min(0.97);
                let growth_ratio =
                    (1.0 + (rir_growth - 1.0) * country_growth * age_factor).max(1.02);
                let base_util = if year > 2011 {
                    0.0 // did not exist at the start of the study
                } else {
                    final_util / growth_ratio
                };
                let is_routed = unit(&[seed, label("routed"), u64::from(id)]) < cfg.routed_fraction;
                if is_routed {
                    routed.announce(prefix);
                }
                alloc_meta.push(AllocMeta {
                    routed: is_routed,
                    final_util,
                    base_util,
                });
            }
        }

        // --- Dark blocks: one routed block in each dark /8, essentially
        // unused. These give the spoof filter its 'empty' /8s. Sized to
        // ≈ 0.5% of the budget each so they never dominate the routed
        // space at any scale. ---
        let dark_len = {
            let target = (cfg.allocated_budget / 200).max(256);
            (32 - (target as f64).log2().round() as u8).clamp(8, 24)
        };
        for &octet in &DARK_EIGHTS {
            let prefix = Prefix::new(u32::from(octet) << 24, dark_len);
            let id = registry.add(Allocation {
                prefix,
                rir: Rir::Arin,
                country: CountryCode::new("US"),
                industry: Industry::Military,
                alloc_year: 1984,
            });
            routed.announce(prefix);
            alloc_meta.push(AllocMeta {
                routed: true,
                final_util: 0.003,
                base_util: 0.003,
            });
            debug_assert_eq!(id as usize + 1, alloc_meta.len());
        }

        // --- Ground-truth networks A–F occupy dedicated space. ---
        let truth_networks = if cfg.with_truth_networks {
            crate::truth_networks::build(&mut carver, &mut registry, &mut routed, &mut alloc_meta)
        } else {
            Vec::new()
        };

        // --- Per-/24 blocks of the routed allocations. ---
        let mut blocks: Vec<Block> = Vec::new();
        let mut block_by_subnet: BTreeMap<u32, u32> = BTreeMap::new();
        for (id, alloc) in registry.allocations().iter().enumerate() {
            let meta = &alloc_meta[id];
            if !meta.routed {
                continue;
            }
            let tn = truth_networks
                .iter()
                .position(|n| n.prefix == alloc.prefix)
                .map(|i| i as u8);
            for sub_prefix in alloc.prefix.split_into(24) {
                let subnet = sub_prefix.base() >> 8;
                let activation_u = unit(&[seed, label("activate"), u64::from(subnet)]);
                let u_class = unit(&[seed, label("density"), u64::from(subnet)]);
                let (density, lo, hi) = if u_class < 0.13 {
                    (DensityClass::Sparse, 2.0, 12.0)
                } else if u_class < 0.33 {
                    (DensityClass::Medium, 30.0, 110.0)
                } else {
                    (DensityClass::Dense, 200.0, 254.0)
                };
                let u_t = unit(&[seed, label("target"), u64::from(subnet)]);
                let mut target_addrs = (lo + u_t * (hi - lo)) as u16;
                let u_dyn = unit(&[seed, label("dynpool"), u64::from(subnet)]);
                let mut dynamic_pool = match density {
                    DensityClass::Dense => u_dyn < 0.60,
                    DensityClass::Medium => u_dyn < 0.20,
                    DensityClass::Sparse => false,
                };
                if let Some(ti) = tn {
                    // Ground-truth networks: uniform density equal to the
                    // network's peak usage fraction, no pools.
                    target_addrs = (truth_networks[ti as usize].peak_fraction * 256.0) as u16;
                    dynamic_pool = false;
                }
                let stealth =
                    tn.is_none() && unit(&[seed, label("stealth"), u64::from(subnet)]) < 0.07;
                let idx = blocks.len() as u32;
                blocks.push(Block {
                    subnet,
                    alloc: id as AllocationId,
                    activation_u,
                    density,
                    target_addrs,
                    dynamic_pool,
                    stealth,
                    truth_network: tn,
                });
                block_by_subnet.insert(subnet, idx);
            }
        }

        GroundTruth {
            cfg,
            registry,
            routed,
            truth_networks,
            blocks,
            block_by_subnet,
            alloc_meta,
        }
    }

    /// Fraction of an allocation's /24s active at quarter `q`.
    pub fn frac_active(&self, alloc: AllocationId, q: Quarter) -> f64 {
        let meta = &self.alloc_meta[alloc as usize];
        let a = self.registry.get(alloc);
        if a.alloc_year > q.year() {
            return 0.0;
        }
        if let Some(_tn) = self
            .truth_networks
            .iter()
            .position(|n| n.prefix == a.prefix)
        {
            // Ground-truth networks hold steady at full activation.
            return meta.final_util;
        }
        let frac = meta.base_util + (meta.final_util - meta.base_util) * f64::from(q.0) / 13.0;
        frac.clamp(0.0, meta.final_util)
    }

    /// Whether `block` is in use at quarter `q`.
    pub fn block_active(&self, block: &Block, q: Quarter) -> bool {
        block.activation_u < self.frac_active(block.alloc, q)
    }

    /// Target used-address count of an active block at quarter `q`
    /// (within-block densification adds ~7%/year on top of activation
    /// growth). Ground-truth networks hold steady at their peak.
    pub fn block_used_count(&self, block: &Block, q: Quarter) -> u16 {
        if block.truth_network.is_some() {
            return block.target_addrs.clamp(1, 254);
        }
        let ramp = 0.70 + 0.30 * f64::from(q.0) / 13.0;
        ((f64::from(block.target_addrs) * ramp).round() as u16).clamp(1, 254)
    }

    /// Last-byte usage weight: low bytes are far more common in real
    /// assignments (.1 routers, low DHCP ranges), .0 and .255 are rare.
    pub fn byte_weight(byte: u32) -> f64 {
        match byte {
            0 | 255 => 0.02,
            1..=10 => 3.0,
            11..=100 => 1.6,
            101..=200 => 0.9,
            _ => 0.5,
        }
    }

    /// Mean of [`Self::byte_weight`] over all 256 last bytes.
    fn mean_byte_weight() -> f64 {
        // (2·0.02 + 10·3 + 90·1.6 + 100·0.9 + 54·0.5) / 256
        (2.0 * 0.02 + 10.0 * 3.0 + 90.0 * 1.6 + 100.0 * 0.9 + 54.0 * 0.5) / 256.0
    }

    /// Whether address `base+byte` of an active block is used at `q`.
    #[inline]
    pub fn addr_used_in_block(&self, block: &Block, byte: u32, q: Quarter) -> bool {
        let n = f64::from(self.block_used_count(block, q));
        let p = (n * Self::byte_weight(byte) / (256.0 * Self::mean_byte_weight())).min(1.0);
        unit(&[
            self.cfg.seed,
            label("addr-used"),
            u64::from(block.subnet),
            u64::from(byte),
        ]) < p
    }

    /// Visits every used address at quarter `q` with its block.
    pub fn for_each_used_addr<F: FnMut(u32, &Block)>(&self, q: Quarter, mut f: F) {
        for block in &self.blocks {
            if !self.block_active(block, q) {
                continue;
            }
            let base = block.subnet << 8;
            for byte in 0..256u32 {
                if self.addr_used_in_block(block, byte, q) {
                    f(base + byte, block);
                }
            }
        }
    }

    /// The used addresses of an active block at quarter `q`, packed as the
    /// four 64-bit words covering its /24: bit `i` of word `w` is address
    /// `(subnet << 8) + 64·w + i`. This is the block-granular form the
    /// address plane ingests directly.
    pub fn block_used_words(&self, block: &Block, q: Quarter) -> [u64; 4] {
        let mut words = [0u64; 4];
        for byte in 0..256u32 {
            if self.addr_used_in_block(block, byte, q) {
                words[(byte >> 6) as usize] |= 1u64 << (byte & 63);
            }
        }
        words
    }

    /// The set of used addresses at quarter `q`.
    ///
    /// Blocks are generated straight into the backing segmented bitmap:
    /// each active /24 contributes four pre-packed words OR-ed into the
    /// plane (`AddrPlane::or_word`), bypassing the
    /// per-address insert path entirely. Bit-identical to inserting every
    /// address [`Self::for_each_used_addr`] visits.
    pub fn used_addr_set(&self, q: Quarter) -> AddrSet {
        let mut s = AddrSet::new();
        for block in &self.blocks {
            if !self.block_active(block, q) {
                continue;
            }
            let base = block.subnet << 8;
            for (w, bits) in self.block_used_words(block, q).iter().enumerate() {
                if *bits != 0 {
                    s.plane_mut().or_word(base + 64 * w as u32, *bits);
                }
            }
        }
        s
    }

    /// The set of used /24 subnets at quarter `q`.
    pub fn used_subnet_set(&self, q: Quarter) -> SubnetSet {
        let mut s = SubnetSet::new();
        for block in &self.blocks {
            if self.block_active(block, q) {
                s.insert(block.subnet);
            }
        }
        s
    }

    /// The routed table as it stood at quarter `q`: allocations made after
    /// that date are not yet announced. This is what makes the routed
    /// series of Figs 4-5 grow a few percent over the study (the paper
    /// reports ~7%) instead of sitting flat.
    pub fn routed_table_at(&self, q: Quarter) -> RoutedTable {
        let mut t = RoutedTable::new();
        for (id, alloc) in self.registry.allocations().iter().enumerate() {
            if self.alloc_meta[id].routed && alloc.alloc_year <= q.year() {
                t.announce(alloc.prefix);
            }
        }
        t
    }

    /// Routed addresses and /24s at quarter `q` (cheaper than building the
    /// full table when only the totals are needed).
    pub fn routed_counts_at(&self, q: Quarter) -> (u64, u64) {
        let mut addrs = 0u64;
        let mut subs = 0u64;
        for (id, alloc) in self.registry.allocations().iter().enumerate() {
            if self.alloc_meta[id].routed && alloc.alloc_year <= q.year() {
                addrs += alloc.prefix.num_addresses();
                subs += alloc.prefix.num_subnets24().max(1);
            }
        }
        (addrs, subs)
    }

    /// All ground-truth blocks.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// The block owning a subnet id, if it is routed space.
    pub fn block_of_subnet(&self, subnet: u32) -> Option<&Block> {
        self.block_by_subnet
            .get(&subnet)
            .map(|&i| &self.blocks[i as usize])
    }

    /// The block owning an address.
    pub fn block_of_addr(&self, addr: u32) -> Option<&Block> {
        self.block_of_subnet(addr >> 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> GroundTruth {
        GroundTruth::generate(SimConfig::tiny(11))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.registry.len(), b.registry.len());
        assert_eq!(
            a.used_addr_set(Quarter(5)).len(),
            b.used_addr_set(Quarter(5)).len()
        );
    }

    #[test]
    fn budget_roughly_met() {
        let gt = tiny();
        let allocated = gt.registry.allocated_address_count();
        let budget = gt.cfg.allocated_budget;
        assert!(
            allocated > budget / 2 && allocated < budget * 2,
            "allocated {allocated} vs budget {budget}"
        );
    }

    #[test]
    fn routed_fraction_near_config() {
        // Count-based over a larger registry: the tiny config has too few
        // allocations for the 80% coin to concentrate.
        let mut cfg = SimConfig::tiny(11);
        cfg.allocated_budget = 4_000_000;
        let gt = GroundTruth::generate(cfg);
        assert!(gt.registry.len() > 100, "want statistical power");
        let routed_count = gt
            .registry
            .allocations()
            .iter()
            .filter(|a| gt.routed.is_routed(a.prefix.base()))
            .count() as f64;
        let frac = routed_count / gt.registry.len() as f64;
        assert!((0.70..=0.90).contains(&frac), "routed fraction {frac}");
    }

    #[test]
    fn no_allocation_in_reserved_space() {
        let gt = tiny();
        for a in gt.registry.allocations() {
            assert!(!ghosts_net::bogons::is_reserved(a.prefix.base()));
            assert!(!ghosts_net::bogons::is_reserved(a.prefix.last_address()));
        }
    }

    #[test]
    fn allocations_do_not_overlap() {
        let gt = tiny();
        let mut prefixes: Vec<Prefix> =
            gt.registry.allocations().iter().map(|a| a.prefix).collect();
        prefixes.sort();
        for pair in prefixes.windows(2) {
            assert!(
                !pair[0].contains_prefix(&pair[1]) && !pair[1].contains_prefix(&pair[0]),
                "{} overlaps {}",
                pair[0],
                pair[1]
            );
            assert!(
                u64::from(pair[0].last_address()) < u64::from(pair[1].base()),
                "{} not disjoint from {}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn usage_grows_monotonically() {
        let gt = tiny();
        let mut prev_addrs = 0u64;
        let mut prev_subs = 0u64;
        for q in Quarter::all() {
            let a = gt.used_addr_set(q).len();
            let s = gt.used_subnet_set(q).len();
            assert!(a >= prev_addrs, "addresses shrank at {q}");
            assert!(s >= prev_subs, "subnets shrank at {q}");
            prev_addrs = a;
            prev_subs = s;
        }
        assert!(prev_addrs > 0 && prev_subs > 0);
    }

    #[test]
    fn used_addresses_lie_in_used_subnets_and_routed_space() {
        let gt = tiny();
        let q = Quarter(13);
        let subs = gt.used_subnet_set(q);
        gt.for_each_used_addr(q, |addr, block| {
            assert!(subs.contains(addr >> 8));
            assert!(gt.routed.is_routed(addr), "unrouted used addr");
            assert_eq!(block.subnet, addr >> 8);
        });
    }

    #[test]
    fn utilisation_fractions_plausible() {
        let gt = tiny();
        let q = Quarter(13);
        let used24 = gt.used_subnet_set(q).len() as f64;
        let routed24 = gt.routed.subnet24_count() as f64;
        let used_addrs = gt.used_addr_set(q).len() as f64;
        let routed_addrs = gt.routed.address_count() as f64;
        let sub_frac = used24 / routed24;
        let addr_frac = used_addrs / routed_addrs;
        // Paper: ~60% of routed /24s and ~45% of routed addresses used.
        assert!((0.40..=0.75).contains(&sub_frac), "subnet util {sub_frac}");
        assert!((0.28..=0.60).contains(&addr_frac), "addr util {addr_frac}");
        // Addresses per used /24 ≈ 190 in the paper.
        let per24 = used_addrs / used24;
        assert!((120.0..=230.0).contains(&per24), "addrs per /24 {per24}");
    }

    #[test]
    fn growth_rates_match_paper_shape() {
        let gt = tiny();
        let a0 = gt.used_addr_set(Quarter(3)).len() as f64;
        let a1 = gt.used_addr_set(Quarter(13)).len() as f64;
        let s0 = gt.used_subnet_set(Quarter(3)).len() as f64;
        let s1 = gt.used_subnet_set(Quarter(13)).len() as f64;
        // Paper: addresses grew from 720M to 1.2B (×1.67) and /24s from
        // 5.1M to 6.2M (×1.22) between Dec 2011 and Jun 2014.
        let addr_growth = a1 / a0;
        let sub_growth = s1 / s0;
        assert!(
            (1.3..=2.1).contains(&addr_growth),
            "addr growth {addr_growth}"
        );
        assert!((1.1..=1.5).contains(&sub_growth), "sub growth {sub_growth}");
        assert!(addr_growth > sub_growth);
    }

    #[test]
    fn routed_space_grows_over_the_study() {
        let gt = tiny();
        let (a0, s0) = gt.routed_counts_at(Quarter(3));
        let (a1, s1) = gt.routed_counts_at(Quarter(13));
        assert!(a1 > a0, "routed addresses must grow");
        assert!(s1 >= s0);
        // The paper's routed space grew ~7% over 2.5 years; ours should be
        // in a single-digit-to-teens percentage band.
        let growth = a1 as f64 / a0 as f64;
        assert!((1.005..=1.25).contains(&growth), "routed growth {growth}");
        // The final window's routed table matches the full table.
        assert_eq!(
            gt.routed_table_at(Quarter(13)).address_count(),
            gt.routed.address_count()
        );
    }

    #[test]
    fn block_lookup_round_trips() {
        let gt = tiny();
        let block = &gt.blocks()[0];
        let found = gt.block_of_subnet(block.subnet).unwrap();
        assert_eq!(found.subnet, block.subnet);
        assert!(gt.block_of_addr((block.subnet << 8) + 7).is_some());
        assert!(gt.block_of_subnet(0x00ffff).is_none()); // 0.x reserved
    }

    #[test]
    fn rir_shares_in_expected_order() {
        let gt = tiny();
        let mut per_rir = [0u64; 5];
        for a in gt.registry.allocations() {
            let idx = match a.rir {
                Rir::AfriNic => 0,
                Rir::Apnic => 1,
                Rir::Arin => 2,
                Rir::LacNic => 3,
                Rir::Ripe => 4,
            };
            per_rir[idx] += a.prefix.num_addresses();
        }
        // APNIC, ARIN and RIPE dominate; AfriNIC is smallest.
        assert!(per_rir[1] > per_rir[3] && per_rir[1] > per_rir[0]);
        assert!(per_rir[2] > per_rir[0] && per_rir[4] > per_rir[0]);
    }

    #[test]
    fn word_ingest_matches_per_address_build() {
        let gt = tiny();
        for q in [Quarter(0), Quarter(7), Quarter(13)] {
            let fast = gt.used_addr_set(q);
            let mut slow = AddrSet::new();
            gt.for_each_used_addr(q, |addr, _| {
                slow.insert(addr);
            });
            assert_eq!(fast.len(), slow.len(), "length mismatch at {q}");
            assert!(fast.iter().eq(slow.iter()), "bit mismatch at {q}");
        }
    }

    #[test]
    fn last_byte_distribution_nonuniform() {
        let gt = tiny();
        let mut low = 0u64;
        let mut high = 0u64;
        gt.for_each_used_addr(Quarter(13), |addr, _| {
            let b = addr & 0xff;
            if (1..=10).contains(&b) {
                low += 1;
            } else if (201..=254).contains(&b) {
                high += 1;
            }
        });
        // 10 low bytes at weight 3.0 vs 54 high bytes at weight 0.5:
        // low-per-byte rate should be several times the high rate.
        let low_rate = low as f64 / 10.0;
        let high_rate = high as f64 / 54.0;
        assert!(
            low_rate > 2.5 * high_rate,
            "low {low_rate} vs high {high_rate}"
        );
    }
}
