//! # ghosts-sim
//!
//! The synthetic Internet and measurement simulator substituting for the
//! paper's gated datasets (DESIGN.md §2). Everything is deterministic in a
//! single seed.
//!
//! * [`internet`] — allocations 1983–2014, routed table, ground-truth
//!   usage per quarter with realistic heterogeneity.
//! * [`host`] — host types and probe/activity behaviour (§4.2).
//! * [`probe`] — the active prober: reversed-bit traversal, loss and rate
//!   limiting, §4.4 counting rules.
//! * [`sources`] — the nine measurement sources of Table 2 as biased
//!   detection models.
//! * [`spoof`] — spoofed-traffic injection for SWIN/CALT (§4.5), with the
//!   March-2014 CALT spike.
//! * [`truth_networks`] — the six ground-truth networks A–F of §5.2.
//! * [`scenario`] — ties it together into per-window pipeline datasets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod dynamics;
pub mod host;
pub mod internet;
pub mod probe;
pub mod scenario;
pub mod sources;
pub mod spoof;
pub mod truth_networks;
pub mod util;

pub use config::{SimConfig, SpoofConfig};
pub use dynamics::{simulate_churn, ChurnConfig, ChurnResult};
pub use internet::{Block, DensityClass, GroundTruth};
pub use probe::{CensusResult, ProbeEngine};
pub use scenario::Scenario;
pub use sources::{paper_sources, SourceKind, SourceSpec};
pub use truth_networks::TruthNetwork;
