//! The active probing engine (§4.1, §4.4).
//!
//! Models the paper's prober at the packet-response level: ICMP echo and
//! TCP SYN (port 80) probes over a prefix, traversed in reversed-bit-count
//! order so consecutive probes land in different /24s ("on average our
//! prober sent only one packet every two hours to individual /24 networks"),
//! with probe/reply loss and remote rate limiting as injectable faults.
//!
//! The census counting rules follow §4.4: ICMP echo replies and
//! destination-unreachables count as used; TTL-exceeded does not; TCP
//! SYN/ACKs count; RSTs do not (a quarter of real RSTs covered contiguous
//! /25+ blocks — firewalls, not hosts).

use crate::host::{counts_as_used, traits_for, HostType, ProbeResponse};
use crate::internet::GroundTruth;
use crate::util::{label, unit};
use ghosts_net::{AddrSet, Prefix};
use ghosts_pipeline::time::Quarter;

/// An active prober bound to a ground truth.
pub struct ProbeEngine<'a> {
    gt: &'a GroundTruth,
    /// Per-probe loss probability (either direction).
    pub loss: f64,
    /// Extra drop probability from remote rate limiting (rises if the
    /// traversal hammers one /24 — here a constant the caller can set).
    pub rate_limit_drop: f64,
}

/// Aggregate result of a census run over a prefix.
#[derive(Debug, Clone)]
pub struct CensusResult {
    /// Addresses counted as used under the §4.4 rules.
    pub used: AddrSet,
    /// Echo replies received (ICMP) or SYN/ACKs (TCP).
    pub positive: u64,
    /// Unreachables received (counted as used for ICMP).
    pub unreachable: u64,
    /// RSTs received (ignored for counting).
    pub rst: u64,
    /// Probes with no reply.
    pub silent: u64,
}

impl<'a> ProbeEngine<'a> {
    /// Creates an engine with the ground truth's configured fault rates.
    pub fn new(gt: &'a GroundTruth) -> Self {
        Self {
            gt,
            loss: gt.cfg.probe_loss,
            rate_limit_drop: gt.cfg.rate_limit_drop,
        }
    }

    /// The reversed-bit-count traversal order over `n_bits` worth of
    /// offsets: offset `i` maps to `reverse_bits(i)`, which spreads
    /// consecutive probes across the whole range (the paper's strategy for
    /// staying under per-/24 rate limits).
    pub fn reversed_bit_order(n_bits: u8) -> impl Iterator<Item = u32> {
        assert!(n_bits <= 32);
        let count: u64 = 1u64 << n_bits;
        (0..count).map(move |i| (i as u32).reverse_bits() >> (32 - u32::from(n_bits)))
    }

    fn lost(&self, kind: &str, addr: u32, q: Quarter, probe_id: u64) -> bool {
        unit(&[
            self.gt.cfg.seed,
            label(kind),
            label("probe-loss"),
            u64::from(addr),
            u64::from(q.0),
            probe_id,
        ]) < self.loss + self.rate_limit_drop
    }

    /// Sends one ICMP echo request.
    pub fn icmp_probe(&self, addr: u32, q: Quarter, probe_id: u64) -> ProbeResponse {
        if self.lost("icmp", addr, q, probe_id) {
            return ProbeResponse::Nothing;
        }
        let Some(block) = self.gt.block_of_addr(addr) else {
            // Unrouted space: routers along the way occasionally emit
            // TTL-exceeded, which the census must ignore.
            return if unit(&[self.gt.cfg.seed, label("ttlx"), u64::from(addr)]) < 0.01 {
                ProbeResponse::TtlExceeded
            } else {
                ProbeResponse::Nothing
            };
        };
        // Ground-truth network F blocks the prober outright.
        if let Some(i) = block.truth_network {
            if ghosts_stats::approx::is_exact_zero(self.gt.truth_networks[i as usize].icmp_scale) {
                return ProbeResponse::Nothing;
            }
        }
        if !self.gt.block_active(block, q) || !self.gt.addr_used_in_block(block, addr & 0xff, q) {
            return ProbeResponse::Nothing;
        }
        // Stealth blocks drop probes at the perimeter.
        if block.stealth && unit(&[self.gt.cfg.seed, label("icmp-scale"), u64::from(addr)]) >= 0.04
        {
            return ProbeResponse::Nothing;
        }
        traits_for(self.gt.cfg.seed, addr, block.dynamic_pool).icmp_response()
    }

    /// Sends one TCP SYN to port 80.
    pub fn tcp80_probe(&self, addr: u32, q: Quarter, probe_id: u64) -> ProbeResponse {
        if self.lost("tcp", addr, q, probe_id) {
            return ProbeResponse::Nothing;
        }
        let Some(block) = self.gt.block_of_addr(addr) else {
            return ProbeResponse::Nothing;
        };
        if let Some(i) = block.truth_network {
            if ghosts_stats::approx::is_exact_zero(self.gt.truth_networks[i as usize].tcp_scale) {
                return ProbeResponse::Nothing;
            }
        }
        let used =
            self.gt.block_active(block, q) && self.gt.addr_used_in_block(block, addr & 0xff, q);
        if !used {
            // Perimeter firewalls RST for whole unused ranges (§4.4's
            // reason for ignoring RSTs).
            return if unit(&[self.gt.cfg.seed, label("fw-rst"), u64::from(addr >> 7)]) < 0.02 {
                ProbeResponse::Rst
            } else {
                ProbeResponse::Nothing
            };
        }
        if block.stealth && unit(&[self.gt.cfg.seed, label("tcp-scale"), u64::from(addr)]) >= 0.04 {
            return ProbeResponse::Nothing;
        }
        traits_for(self.gt.cfg.seed, addr, block.dynamic_pool).tcp80_response()
    }

    /// Runs a census over `prefix` in reversed-bit order.
    pub fn census(&self, prefix: Prefix, q: Quarter, icmp: bool) -> CensusResult {
        let mut result = CensusResult {
            used: AddrSet::new(),
            positive: 0,
            unreachable: 0,
            rst: 0,
            silent: 0,
        };
        let n_bits = 32 - prefix.len();
        for (probe_id, offset) in Self::reversed_bit_order(n_bits).enumerate() {
            let addr = prefix.base() + offset;
            let resp = if icmp {
                self.icmp_probe(addr, q, probe_id as u64)
            } else {
                self.tcp80_probe(addr, q, probe_id as u64)
            };
            match resp {
                ProbeResponse::EchoReply | ProbeResponse::SynAck => result.positive += 1,
                ProbeResponse::Unreachable => result.unreachable += 1,
                ProbeResponse::Rst => result.rst += 1,
                _ => result.silent += 1,
            }
            if counts_as_used(resp) {
                result.used.insert(addr);
            }
        }
        result
    }

    /// Reference: is `addr` truly used at `q` (ground truth, no probing)?
    pub fn truly_used(&self, addr: u32, q: Quarter) -> bool {
        self.gt
            .block_of_addr(addr)
            .map(|b| self.gt.block_active(b, q) && self.gt.addr_used_in_block(b, addr & 0xff, q))
            .unwrap_or(false)
    }

    /// Convenience: does the host at `addr` look like a server? (Used by
    /// examples to illustrate who answers probes.)
    pub fn is_server(&self, addr: u32) -> bool {
        self.gt
            .block_of_addr(addr)
            .map(|b| {
                traits_for(self.gt.cfg.seed, addr, b.dynamic_pool).host_type == HostType::Server
            })
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    fn gt() -> GroundTruth {
        GroundTruth::generate(SimConfig::tiny(31))
    }

    #[test]
    fn reversed_bit_order_is_a_permutation() {
        let mut seen: Vec<u32> = ProbeEngine::reversed_bit_order(10).collect();
        assert_eq!(seen.len(), 1024);
        seen.sort_unstable();
        for (i, v) in seen.iter().enumerate() {
            assert_eq!(*v, i as u32);
        }
    }

    #[test]
    fn reversed_bit_order_spreads_probes() {
        // Consecutive probes must land in different halves — never probe
        // the same /24-analogue twice in a row.
        let order: Vec<u32> = ProbeEngine::reversed_bit_order(8).collect();
        for pair in order.windows(2) {
            assert_ne!(pair[0] >> 4, pair[1] >> 4, "{pair:?}");
        }
    }

    #[test]
    fn census_counts_only_used_space() {
        let gt = gt();
        let engine = ProbeEngine::new(&gt);
        let q = Quarter(8);
        // Census one routed allocation.
        let prefix = gt.registry.allocations()[0].prefix;
        let result = engine.census(prefix, q, true);
        for addr in result.used.iter() {
            assert!(engine.truly_used(addr, q), "false positive {addr}");
        }
        // Positives exist but undercount the truth.
        let truth = gt.used_addr_set(q).count_in_prefix(prefix);
        assert!(!result.used.is_empty(), "census found nothing");
        assert!(result.used.len() < truth, "census cannot see everything");
    }

    #[test]
    fn loss_reduces_census_yield() {
        let gt = gt();
        let prefix = gt.registry.allocations()[0].prefix;
        let q = Quarter(8);
        let clean = ProbeEngine {
            gt: &gt,
            loss: 0.0,
            rate_limit_drop: 0.0,
        }
        .census(prefix, q, true);
        let lossy = ProbeEngine {
            gt: &gt,
            loss: 0.35,
            rate_limit_drop: 0.15,
        }
        .census(prefix, q, true);
        assert!(
            lossy.used.len() < clean.used.len(),
            "lossy {} vs clean {}",
            lossy.used.len(),
            clean.used.len()
        );
    }

    #[test]
    fn tcp_census_sees_fewer_than_icmp() {
        let gt = gt();
        let engine = ProbeEngine::new(&gt);
        let prefix = gt.registry.allocations()[0].prefix;
        let q = Quarter(8);
        let icmp = engine.census(prefix, q, true);
        let tcp = engine.census(prefix, q, false);
        assert!(tcp.used.len() < icmp.used.len());
    }

    #[test]
    fn rsts_never_counted_as_used() {
        let gt = gt();
        let engine = ProbeEngine::new(&gt);
        let prefix = gt.registry.allocations()[0].prefix;
        let result = engine.census(prefix, Quarter(8), false);
        // Every counted address is truly used even though RSTs occurred.
        for addr in result.used.iter() {
            assert!(engine.truly_used(addr, Quarter(8)));
        }
    }
}
