//! The full measurement scenario: ground truth + nine sources + spoofing,
//! producing per-window datasets in the pipeline's format.

use crate::config::SimConfig;
use crate::internet::GroundTruth;
use crate::sources::{detects, paper_sources, SourceSpec};
use crate::spoof::spoofed_set;
use ghosts_net::{AddrSet, SubnetSet};
use ghosts_pipeline::dataset::{SourceDataset, WindowData};
use ghosts_pipeline::time::{Quarter, TimeWindow};

/// Fraction of spoofed traffic that is reflector-style (victim addresses,
/// which are genuinely used).
const REFLECTOR_FRACTION: f64 = 0.05;

/// A generated measurement study.
pub struct Scenario {
    /// The synthetic Internet.
    pub gt: GroundTruth,
    specs: Vec<SourceSpec>,
}

impl Scenario {
    /// Generates the scenario from a configuration.
    pub fn new(cfg: SimConfig) -> Self {
        Self {
            gt: GroundTruth::generate(cfg),
            specs: paper_sources(),
        }
    }

    /// The source specifications.
    pub fn sources(&self) -> &[SourceSpec] {
        &self.specs
    }

    /// The observations of every active source over one quarter, without
    /// spoof injection. One pass over the used space.
    pub fn quarter_observations(&self, q: Quarter) -> Vec<(&'static str, AddrSet)> {
        let active: Vec<&SourceSpec> = self.specs.iter().filter(|s| s.active_in(q)).collect();
        let mut sets: Vec<AddrSet> = active.iter().map(|_| AddrSet::new()).collect();
        self.gt.for_each_used_addr(q, |addr, block| {
            for (i, spec) in active.iter().enumerate() {
                if detects(&self.gt, spec, addr, block, q) {
                    sets[i].insert(addr);
                }
            }
        });
        active
            .iter()
            .zip(sets)
            .map(|(spec, set)| (spec.name, set))
            .collect()
    }

    /// All datasets for a window, spoofed traffic included (the raw feed
    /// the pipeline's spoof filter consumes).
    pub fn window_data(&self, w: TimeWindow) -> WindowData {
        self.window_data_inner(w, true)
    }

    /// All datasets for a window with spoof injection disabled (the
    /// counterfactual clean feed, for ablations and tests).
    pub fn window_data_clean(&self, w: TimeWindow) -> WindowData {
        self.window_data_inner(w, false)
    }

    fn window_data_inner(&self, w: TimeWindow, with_spoof: bool) -> WindowData {
        let active: Vec<&SourceSpec> = self
            .specs
            .iter()
            .filter(|s| !s.active_quarters(&w).is_empty())
            .collect();
        let mut sets: Vec<AddrSet> = active.iter().map(|_| AddrSet::new()).collect();
        for q in w.quarters() {
            self.gt.for_each_used_addr(q, |addr, block| {
                for (i, spec) in active.iter().enumerate() {
                    if detects(&self.gt, spec, addr, block, q) {
                        sets[i].insert(addr);
                    }
                }
            });
        }
        if with_spoof {
            for (i, spec) in active.iter().enumerate() {
                if spec.spoof_free() {
                    continue;
                }
                for q in spec.active_quarters(&w) {
                    let spoofs = spoofed_set(&self.gt, spec.name, q, REFLECTOR_FRACTION);
                    sets[i].union_with(&spoofs);
                }
            }
        }
        WindowData {
            window: w,
            sources: active
                .iter()
                .zip(sets)
                .map(|(spec, set)| SourceDataset::new(spec.name, set, spec.spoof_free()))
                .collect(),
        }
    }

    /// Ground-truth used addresses over the window (usage is monotone, so
    /// the union over its quarters is the state at the window's end).
    pub fn truth_addrs(&self, w: TimeWindow) -> AddrSet {
        self.gt.used_addr_set(w.end())
    }

    /// Ground-truth used /24 subnets over the window.
    pub fn truth_subnets(&self, w: TimeWindow) -> SubnetSet {
        self.gt.used_subnet_set(w.end())
    }

    /// Per-/8 routed address counts — the spoof filter's universe argument
    /// at mini-Internet scale (see `spoof` module docs).
    pub fn routed_per_eight(&self) -> [u64; 256] {
        let mut out = [0u64; 256];
        for p in self.gt.routed.prefixes() {
            debug_assert!(p.len() >= 8, "routed prefixes never straddle /8s here");
            out[(p.base() >> 24) as usize] += p.num_addresses();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghosts_pipeline::time::paper_windows;

    fn scenario() -> Scenario {
        Scenario::new(SimConfig::tiny(51))
    }

    #[test]
    fn window_data_has_expected_sources() {
        let s = scenario();
        let ws = paper_windows();
        // First window (2011): no SPAM, no CALT, no TPING.
        let names = |wd: &WindowData| {
            wd.sources
                .iter()
                .map(|d| d.name.clone())
                .collect::<Vec<_>>()
        };
        let w0 = s.window_data(ws[0]);
        assert!(!names(&w0).contains(&"SPAM".to_string()));
        assert!(!names(&w0).contains(&"CALT".to_string()));
        assert!(!names(&w0).contains(&"TPING".to_string()));
        assert!(names(&w0).contains(&"IPING".to_string()));
        // Last window: all nine.
        let w10 = s.window_data(ws[10]);
        assert_eq!(w10.sources.len(), 9);
    }

    #[test]
    fn every_clean_observation_is_truly_used() {
        let s = scenario();
        let w = paper_windows()[10];
        let wd = s.window_data_clean(w);
        let truth = s.truth_addrs(w);
        for d in &wd.sources {
            for addr in d.addrs.iter() {
                assert!(truth.contains(addr), "{}: ghost observation {addr}", d.name);
            }
        }
    }

    #[test]
    fn spoofed_netflow_contains_unused_addresses() {
        let s = scenario();
        let w = paper_windows()[10];
        let wd = s.window_data(w);
        let truth = s.truth_addrs(w);
        let swin = wd.source("SWIN").unwrap();
        let ghosts = swin.addrs.iter().filter(|&a| !truth.contains(a)).count();
        assert!(ghosts > 1_000, "only {ghosts} spoofed observations in SWIN");
        // Spoof-free sources stay clean even in the spoofed feed.
        let wiki = wd.source("WIKI").unwrap();
        for addr in wiki.addrs.iter() {
            assert!(truth.contains(addr));
        }
    }

    #[test]
    fn observed_union_undercounts_truth() {
        let s = scenario();
        let w = paper_windows()[10];
        let wd = s.window_data_clean(w);
        let union = wd.observed_union();
        let truth = s.truth_addrs(w);
        let coverage = union.len() as f64 / truth.len() as f64;
        // The paper observed 740 M of an estimated 1.2 B used (≈ 62%).
        assert!(
            (0.45..=0.80).contains(&coverage),
            "observed coverage {coverage}"
        );
        // /24 coverage is much higher (5.9 M of 6.3 M ≈ 94%).
        let union24 = union.to_subnet24();
        let truth24 = s.truth_subnets(w);
        let cov24 = union24.len() as f64 / truth24.len() as f64;
        assert!((0.80..=0.99).contains(&cov24), "subnet coverage {cov24}");
        assert!(cov24 > coverage);
    }

    #[test]
    fn per_source_sizes_relate_like_table2() {
        let s = scenario();
        let w = paper_windows()[10]; // all nine sources online
        let wd = s.window_data_clean(w);
        let truth = s.truth_addrs(w).len() as f64;
        let frac = |name: &str| {
            wd.source(name)
                .map(|d| d.addrs.len() as f64 / truth)
                .unwrap()
        };
        for d in &wd.sources {
            eprintln!(
                "calibration {}: {:.4} of truth ({} addrs)",
                d.name,
                d.addrs.len() as f64 / truth,
                d.addrs.len()
            );
        }
        // Orderings from Table 2 (2013 column): IPING > CALT > TPING ≈
        // WEB ≈ SWIN > GAME > MLAB ≈ SPAM > WIKI.
        assert!(frac("IPING") > frac("CALT"));
        assert!(frac("CALT") > frac("WEB"));
        assert!(frac("WEB") > frac("GAME"));
        assert!(frac("SWIN") > frac("GAME"));
        assert!(frac("GAME") > frac("WIKI"));
        assert!(frac("MLAB") > frac("WIKI"));
        // Rough absolute bands.
        assert!(
            (0.20..=0.50).contains(&frac("IPING")),
            "IPING {}",
            frac("IPING")
        );
        assert!(
            (0.15..=0.45).contains(&frac("CALT")),
            "CALT {}",
            frac("CALT")
        );
        assert!((0.04..=0.20).contains(&frac("WEB")), "WEB {}", frac("WEB"));
        assert!(frac("WIKI") < 0.03, "WIKI {}", frac("WIKI"));
    }

    #[test]
    fn windows_are_deterministic() {
        let s = scenario();
        let w = paper_windows()[5];
        let a = s.window_data(w);
        let b = s.window_data(w);
        for (x, y) in a.sources.iter().zip(&b.sources) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.addrs.len(), y.addrs.len());
        }
    }

    #[test]
    fn observations_grow_over_time() {
        let s = scenario();
        let ws = paper_windows();
        let first = s.window_data_clean(ws[0]).observed_union().len();
        let last = s.window_data_clean(ws[10]).observed_union().len();
        assert!(
            last as f64 > first as f64 * 1.2,
            "no growth: {first} → {last}"
        );
    }

    #[test]
    fn routed_per_eight_sums_to_routed_total() {
        let s = scenario();
        let per8 = s.routed_per_eight();
        assert_eq!(per8.iter().sum::<u64>(), s.gt.routed.address_count());
    }
}
