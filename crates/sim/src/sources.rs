//! The nine measurement sources of §4.1 (Table 2), as detection models
//! over the ground truth.
//!
//! Each source sees a biased, incomplete sample of the used space:
//!
//! * **IPING / TPING** — active censuses over the allocated space. They
//!   see whatever answers probes: routers and servers well, (NAT'd)
//!   clients poorly, specialised devices barely (§4.2). Runs every six
//!   months; TPING starts March 2012.
//! * **WIKI / SPAM / MLAB / WEB / GAME** — passive server-side logs. They
//!   see *active clients* (plus proxies), weighted by each address's
//!   activity level and by per-source geographic bias. SPAM starts
//!   May 2012.
//! * **SWIN / CALT** — university NetFlow feeds: broad visibility of
//!   clients, servers and inbound scanners, geographically biased toward
//!   the campus (Australia / California), plus spoofed traffic that the
//!   pipeline must filter (§4.5). CALT starts June 2013.

use crate::host::{traits_for, HostType};
use crate::internet::{Block, GroundTruth};
use crate::util::{label, unit};
use ghosts_net::registry::CountryCode;
use ghosts_pipeline::time::{Quarter, TimeWindow};

/// Detection mechanics of a source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// ICMP echo census (counts echo replies and unreachables).
    IcmpCensus,
    /// TCP SYN port-80 census (counts SYN/ACKs; RSTs ignored).
    TcpCensus,
    /// Server-side log of completed sessions (spoof-free).
    Passive,
    /// NetFlow feed of incoming traffic (contains spoofed sources).
    NetFlow,
}

/// Geographic visibility profile of a source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeoProfile {
    /// No geographic bias (WIKI, MLAB).
    Global,
    /// Swinburne's access router: strong Australia/Asia bias.
    Australia,
    /// Caltech's access router: strong US bias.
    California,
    /// Game platform: gamer-heavy countries.
    Gamer,
    /// Spam-sender geography: large botnet populations.
    SpamSenders,
    /// The IPv6-readiness web test: AU-hosted but broadly embedded.
    WebTest,
}

impl GeoProfile {
    /// The visibility multiplier for a country.
    pub fn multiplier(&self, cc: CountryCode) -> f64 {
        let c = cc.as_str();
        match self {
            GeoProfile::Global => 1.0,
            GeoProfile::Australia => match c {
                "AU" => 8.0,
                "CN" | "JP" | "KR" | "IN" | "ID" | "VN" | "TH" | "MY" | "HK" | "TW" => 1.6,
                "US" => 0.9,
                _ => 0.6,
            },
            GeoProfile::California => match c {
                "US" => 3.2,
                "CA" | "MX" => 1.4,
                _ => 0.75,
            },
            GeoProfile::Gamer => match c {
                "US" | "DE" | "GB" | "FR" | "KR" | "BR" | "RU" | "PL" | "SE" | "CA" => 1.8,
                "CN" => 0.5, // Steam penetration was low in CN in this era
                _ => 0.9,
            },
            GeoProfile::SpamSenders => match c {
                "CN" | "RU" | "BR" | "IN" | "VN" | "UA" | "TR" | "RO" | "ID" => 2.4,
                "US" => 1.0,
                _ => 0.55,
            },
            GeoProfile::WebTest => match c {
                "AU" => 2.5,
                _ => 1.0,
            },
        }
    }
}

/// Static description of one measurement source.
#[derive(Debug, Clone, Copy)]
pub struct SourceSpec {
    /// Name as in Table 2.
    pub name: &'static str,
    /// Detection mechanics.
    pub kind: SourceKind,
    /// First quarter with data (Table 2 "Time collected").
    pub first_quarter: u8,
    /// For censuses: one census every this many quarters.
    pub census_stride: u8,
    /// Detection intensity (per quarter); meaning depends on `kind`.
    pub rate: f64,
    /// Geographic bias.
    pub geo: GeoProfile,
}

impl SourceSpec {
    /// Whether the source is structurally spoof-free (§4.4).
    pub fn spoof_free(&self) -> bool {
        self.kind != SourceKind::NetFlow
    }

    /// Whether the source collects during quarter `q`.
    pub fn active_in(&self, q: Quarter) -> bool {
        if q.0 < self.first_quarter {
            return false;
        }
        match self.kind {
            SourceKind::IcmpCensus | SourceKind::TcpCensus => {
                (q.0 - self.first_quarter).is_multiple_of(self.census_stride)
            }
            _ => true,
        }
    }

    /// The quarters of `w` in which this source collects.
    pub fn active_quarters(&self, w: &TimeWindow) -> Vec<Quarter> {
        w.quarters().filter(|q| self.active_in(*q)).collect()
    }
}

/// The paper's nine sources with calibrated intensities. Rates are tuned
/// so per-window dataset sizes relate like Table 2's (IPING largest,
/// CALT ≈ 0.85·IPING once online, WEB ≈ SWIN ≈ TPING band, WIKI
/// smallest).
pub fn paper_sources() -> Vec<SourceSpec> {
    vec![
        SourceSpec {
            name: "WIKI",
            kind: SourceKind::Passive,
            first_quarter: 0,
            census_stride: 0,
            rate: 0.006,
            geo: GeoProfile::Global,
        },
        SourceSpec {
            name: "SPAM",
            kind: SourceKind::Passive,
            first_quarter: 5, // May 2012
            census_stride: 0,
            rate: 0.02,
            geo: GeoProfile::SpamSenders,
        },
        SourceSpec {
            name: "MLAB",
            kind: SourceKind::Passive,
            first_quarter: 0,
            census_stride: 0,
            rate: 0.016,
            geo: GeoProfile::Global,
        },
        SourceSpec {
            name: "WEB",
            kind: SourceKind::Passive,
            first_quarter: 0,
            census_stride: 0,
            rate: 0.10,
            geo: GeoProfile::WebTest,
        },
        SourceSpec {
            name: "GAME",
            kind: SourceKind::Passive,
            first_quarter: 0,
            census_stride: 0,
            rate: 0.035,
            geo: GeoProfile::Gamer,
        },
        SourceSpec {
            name: "SWIN",
            kind: SourceKind::NetFlow,
            first_quarter: 0,
            census_stride: 0,
            rate: 0.09,
            geo: GeoProfile::Australia,
        },
        SourceSpec {
            name: "CALT",
            kind: SourceKind::NetFlow,
            first_quarter: 9, // June 2013
            census_stride: 0,
            rate: 0.26,
            geo: GeoProfile::California,
        },
        SourceSpec {
            name: "IPING",
            kind: SourceKind::IcmpCensus,
            first_quarter: 0,
            census_stride: 2, // twice a year
            rate: 1.0,
            geo: GeoProfile::Global,
        },
        SourceSpec {
            name: "TPING",
            kind: SourceKind::TcpCensus,
            first_quarter: 4, // March 2012
            census_stride: 2,
            rate: 1.0,
            geo: GeoProfile::Global,
        },
    ]
}

/// Per-network detection scaling (1.0 outside the ground-truth networks).
fn network_scales(gt: &GroundTruth, block: &Block) -> (f64, f64, f64) {
    match block.truth_network {
        Some(i) => {
            let n = &gt.truth_networks[i as usize];
            (n.icmp_scale, n.tcp_scale, n.passive_scale)
        }
        None => (1.0, 1.0, 1.0),
    }
}

/// Does `spec` detect `addr` (belonging to `block`, used) in quarter `q`?
///
/// Stable traits (does the host answer probes? how active is it?) come
/// from [`traits_for`]; per-quarter randomness (probe loss, session
/// timing) is hashed on `(source, addr, q)`.
pub fn detects(gt: &GroundTruth, spec: &SourceSpec, addr: u32, block: &Block, q: Quarter) -> bool {
    if !spec.active_in(q) {
        return false;
    }
    let seed = gt.cfg.seed;
    let traits = traits_for(seed, addr, block.dynamic_pool);
    let (mut icmp_scale, mut tcp_scale, mut passive_scale) = network_scales(gt, block);
    if block.stealth {
        // Stealth blocks: probes filtered at the perimeter, hosts touch no
        // client-facing service. Nearly invisible to every source.
        icmp_scale *= 0.04;
        tcp_scale *= 0.04;
        passive_scale *= 0.04;
    }
    let src = label(spec.name);

    match spec.kind {
        SourceKind::IcmpCensus => {
            // Responsiveness is a stable trait; the network scale rescales
            // it (for ground-truth networks) via an independent thinning.
            let responds = traits.icmp_responsive
                && scale_keep(seed, "icmp-scale", addr, icmp_scale)
                || (icmp_scale > 1.0
                    && scale_boost(seed, "icmp-boost", addr, icmp_scale)
                    && !traits.icmp_responsive);
            // Firewalled servers may still emit "unreachable" (counted).
            let unreachable =
                traits.host_type == HostType::Server && traits.rst_firewall && icmp_scale > 0.0;
            if !(responds || unreachable) {
                return false;
            }
            // Per-census probe or reply loss (failure injection).
            unit(&[seed, src, label("loss"), u64::from(addr), u64::from(q.0)])
                >= gt.cfg.probe_loss + gt.cfg.rate_limit_drop
        }
        SourceKind::TcpCensus => {
            let responds = traits.tcp80_responsive
                && scale_keep(seed, "tcp-scale", addr, tcp_scale)
                || (tcp_scale > 1.0
                    && scale_boost(seed, "tcp-boost", addr, tcp_scale)
                    && !traits.tcp80_responsive);
            if !responds {
                return false;
            }
            unit(&[seed, src, label("loss"), u64::from(addr), u64::from(q.0)])
                >= gt.cfg.probe_loss + gt.cfg.rate_limit_drop
        }
        SourceKind::Passive => {
            let geo = spec.geo.multiplier(gt.registry.get(block.alloc).country);
            let intensity = spec.rate * traits.activity * geo * passive_scale;
            let p = 1.0 - (-intensity).exp();
            unit(&[seed, src, u64::from(addr), u64::from(q.0)]) < p
        }
        SourceKind::NetFlow => {
            let geo = spec.geo.multiplier(gt.registry.get(block.alloc).country);
            // Activity-driven traffic plus a flat inbound-scanner floor:
            // every used host occasionally probes or backscatters into the
            // campus, regardless of its service activity.
            let intensity = spec.rate * (traits.activity * geo + 0.04) * passive_scale;
            let p = 1.0 - (-intensity).exp();
            unit(&[seed, src, u64::from(addr), u64::from(q.0)]) < p
        }
    }
}

/// Stable keep-decision when a scale `<= 1` thins a trait.
fn scale_keep(seed: u64, lbl: &str, addr: u32, scale: f64) -> bool {
    scale >= 1.0 || unit(&[seed, label(lbl), u64::from(addr)]) < scale
}

/// Stable boost-decision when a scale `> 1` upgrades non-responders:
/// converts `p` to `min(1, p·scale)` overall for baseline probability `p`
/// (approximately, via an independent extra coin of roughly the right
/// mass for the trait base rates used here).
fn scale_boost(seed: u64, lbl: &str, addr: u32, scale: f64) -> bool {
    let extra = ((scale - 1.0) * 0.35).clamp(0.0, 1.0);
    unit(&[seed, label(lbl), u64::from(addr)]) < extra
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    fn gt() -> GroundTruth {
        GroundTruth::generate(SimConfig::tiny(21))
    }

    #[test]
    fn nine_sources_with_paper_availability() {
        let specs = paper_sources();
        assert_eq!(specs.len(), 9);
        let by_name = |n: &str| *specs.iter().find(|s| s.name == n).unwrap();
        // SPAM from May 2012, CALT from June 2013, TPING from March 2012.
        assert!(!by_name("SPAM").active_in(Quarter(4)));
        assert!(by_name("SPAM").active_in(Quarter(5)));
        assert!(!by_name("CALT").active_in(Quarter(8)));
        assert!(by_name("CALT").active_in(Quarter(9)));
        assert!(!by_name("TPING").active_in(Quarter(3)));
        assert!(by_name("TPING").active_in(Quarter(4)));
        // Censuses run every other quarter.
        assert!(by_name("IPING").active_in(Quarter(0)));
        assert!(!by_name("IPING").active_in(Quarter(1)));
        assert!(by_name("IPING").active_in(Quarter(2)));
        // NetFlow sources are the only non-spoof-free ones.
        let dirty: Vec<&str> = specs
            .iter()
            .filter(|s| !s.spoof_free())
            .map(|s| s.name)
            .collect();
        assert_eq!(dirty, vec!["SWIN", "CALT"]);
    }

    #[test]
    fn detection_is_deterministic() {
        let gt = gt();
        let specs = paper_sources();
        let q = Quarter(6);
        let mut count = 0;
        gt.for_each_used_addr(q, |addr, block| {
            for spec in &specs {
                let a = detects(&gt, spec, addr, block, q);
                let b = detects(&gt, spec, addr, block, q);
                assert_eq!(a, b);
                count += usize::from(a);
            }
        });
        assert!(count > 0);
    }

    #[test]
    fn iping_sees_most_tping_and_passive_see_fractions() {
        let gt = gt();
        let specs = paper_sources();
        let q = Quarter(6); // census quarter, all sources but CALT online
        let mut totals = vec![0u64; specs.len()];
        let mut used = 0u64;
        gt.for_each_used_addr(q, |addr, block| {
            used += 1;
            for (i, spec) in specs.iter().enumerate() {
                if detects(&gt, spec, addr, block, q) {
                    totals[i] += 1;
                }
            }
        });
        let frac = |name: &str| {
            let i = specs.iter().position(|s| s.name == name).unwrap();
            totals[i] as f64 / used as f64
        };
        // Census quarter: IPING detects roughly a third of used addresses
        // (§6.2: 430 M pingable of ~1.2 B used).
        assert!(
            (0.22..=0.48).contains(&frac("IPING")),
            "IPING {}",
            frac("IPING")
        );
        // TPING well below IPING (93 M vs 411 M in 2013).
        assert!(
            frac("TPING") < frac("IPING") * 0.55,
            "TPING {}",
            frac("TPING")
        );
        // WIKI is the smallest source.
        assert!(frac("WIKI") < frac("WEB"));
        assert!(frac("WIKI") < frac("MLAB") * 2.0);
    }

    #[test]
    fn geographic_bias_shapes_netflow() {
        let gt = gt();
        let swin = paper_sources()
            .into_iter()
            .find(|s| s.name == "SWIN")
            .unwrap();
        let q = Quarter(6);
        let mut au = (0u64, 0u64);
        let mut other = (0u64, 0u64);
        gt.for_each_used_addr(q, |addr, block| {
            let cc = gt.registry.get(block.alloc).country;
            let hit = detects(&gt, &swin, addr, block, q);
            if cc.as_str() == "AU" {
                au.0 += u64::from(hit);
                au.1 += 1;
            } else {
                other.0 += u64::from(hit);
                other.1 += 1;
            }
        });
        if au.1 > 500 && other.1 > 500 {
            let au_rate = au.0 as f64 / au.1 as f64;
            let other_rate = other.0 as f64 / other.1 as f64;
            assert!(
                au_rate > 2.0 * other_rate,
                "AU {au_rate} vs elsewhere {other_rate}"
            );
        }
    }

    #[test]
    fn probe_loss_reduces_census_yield() {
        // Failure injection: raising probe loss must shrink what the
        // censuses detect, and leave the passive sources untouched.
        let mut lossy_cfg = SimConfig::tiny(21);
        lossy_cfg.probe_loss = 0.45;
        lossy_cfg.rate_limit_drop = 0.2;
        let clean = GroundTruth::generate(SimConfig::tiny(21));
        let lossy = GroundTruth::generate(lossy_cfg);
        let specs = paper_sources();
        let iping = specs.iter().find(|s| s.name == "IPING").unwrap();
        let wiki = specs.iter().find(|s| s.name == "WIKI").unwrap();
        let q = Quarter(6);
        let count = |gt: &GroundTruth, spec: &SourceSpec| {
            let mut c = 0u64;
            gt.for_each_used_addr(q, |addr, block| {
                c += u64::from(detects(gt, spec, addr, block, q));
            });
            c
        };
        let clean_iping = count(&clean, iping);
        let lossy_iping = count(&lossy, iping);
        assert!(
            (lossy_iping as f64) < clean_iping as f64 * 0.75,
            "loss had no effect: {clean_iping} vs {lossy_iping}"
        );
        // Passive detection does not depend on probe loss.
        assert_eq!(count(&clean, wiki), count(&lossy, wiki));
    }

    #[test]
    fn stealth_blocks_nearly_invisible() {
        let gt = gt();
        let specs = paper_sources();
        let q = Quarter(10);
        let mut stealth_total = 0u64;
        let mut stealth_seen = 0u64;
        gt.for_each_used_addr(q, |addr, block| {
            if block.stealth {
                stealth_total += 1;
                if specs.iter().any(|s| detects(&gt, s, addr, block, q)) {
                    stealth_seen += 1;
                }
            }
        });
        assert!(stealth_total > 100, "stealth population too small to test");
        let rate = stealth_seen as f64 / stealth_total as f64;
        assert!(rate < 0.15, "stealth visibility {rate}");
    }

    #[test]
    fn network_f_is_invisible_to_probing() {
        let mut cfg = SimConfig::tiny(22);
        cfg.with_truth_networks = true;
        let gt = GroundTruth::generate(cfg);
        let specs = paper_sources();
        let iping = specs.iter().find(|s| s.name == "IPING").unwrap();
        let tping = specs.iter().find(|s| s.name == "TPING").unwrap();
        let f = gt.truth_networks.iter().find(|n| n.name == 'F').unwrap();
        let prefix = f.prefix;
        let q = Quarter(6);
        gt.for_each_used_addr(q, |addr, block| {
            if prefix.contains(addr) {
                assert!(!detects(&gt, iping, addr, block, q), "F answered ICMP");
                assert!(!detects(&gt, tping, addr, block, q), "F answered TCP");
            }
        });
    }
}
