//! Spoofed-traffic generation for the NetFlow sources (§4.5).
//!
//! Two mechanisms put never-used source addresses into SWIN/CALT:
//! random-source DDoS floods and nmap-style decoy scans; both draw
//! (approximately) uniformly at random. A third mechanism — reflector
//! attacks spoofing the *victim's* address — injects addresses that are
//! really used, which the paper notes is harmless for CR.
//!
//! Scale note (documented in DESIGN.md): the mini-Internet routes only a
//! sliver of the 2³² space, so spoofed addresses are drawn uniformly from
//! the **routed space** — exactly the distribution that survives the
//! paper's routed-space pre-filter at full scale.

use crate::internet::GroundTruth;
use ghosts_net::{AddrSet, Prefix};
use ghosts_pipeline::time::Quarter;
use ghosts_stats::rng::component_rng;
use rand::Rng;

/// Samples addresses uniformly from the union of routed prefixes.
pub struct SpoofSampler {
    cumulative: Vec<(u64, Prefix)>,
    total: u64,
}

impl SpoofSampler {
    /// Builds a sampler over a ground truth's routed table.
    pub fn new(gt: &GroundTruth) -> Self {
        let mut cumulative = Vec::new();
        let mut total = 0u64;
        for p in gt.routed.prefixes() {
            total += p.num_addresses();
            cumulative.push((total, p));
        }
        assert!(total > 0, "cannot spoof into an empty routed table");
        Self { cumulative, total }
    }

    /// Draws one uniformly random routed address.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let x = rng.gen_range(0..self.total);
        let idx = self.cumulative.partition_point(|(cum, _)| *cum <= x);
        let (cum, prefix) = self.cumulative[idx];
        let offset = prefix.num_addresses() - (cum - x);
        (u64::from(prefix.base()) + offset) as u32
    }

    /// Total routed addresses the sampler covers.
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// The spoof volume a NetFlow source sees in quarter `q`.
pub fn spoof_volume(gt: &GroundTruth, source: &str, q: Quarter) -> u64 {
    let cfg = &gt.cfg.spoof;
    match source {
        "SWIN" => cfg.swin_per_quarter,
        "CALT" => {
            if q.0 >= cfg.calt_spike_quarter {
                cfg.calt_spike_per_quarter
            } else {
                cfg.calt_per_quarter
            }
        }
        _ => 0,
    }
}

/// Generates the spoofed addresses `source` records in quarter `q`:
/// uniform random-source spoofs plus a `reflector_fraction` of really-used
/// victim addresses. Deterministic in `(seed, source, q)`.
pub fn spoofed_set(gt: &GroundTruth, source: &str, q: Quarter, reflector_fraction: f64) -> AddrSet {
    let volume = spoof_volume(gt, source, q);
    let mut out = AddrSet::new();
    if volume == 0 {
        return out;
    }
    let mut rng = component_rng(gt.cfg.seed, &format!("spoof-{source}-{}", q.0));
    let sampler = SpoofSampler::new(gt);
    let uniform_count = (volume as f64 * (1.0 - reflector_fraction)) as u64;
    while out.len() < uniform_count {
        out.insert(sampler.sample(&mut rng));
    }
    // Reflector victims: genuinely used addresses.
    let blocks = gt.blocks();
    let mut victims = 0u64;
    let target_victims = volume - uniform_count;
    let mut attempts = 0u64;
    while victims < target_victims && attempts < target_victims * 200 {
        attempts += 1;
        let b = &blocks[rng.gen_range(0..blocks.len())];
        if !gt.block_active(b, q) {
            continue;
        }
        let byte = rng.gen_range(1..255u32);
        if gt.addr_used_in_block(b, byte, q) {
            let addr = (b.subnet << 8) + byte;
            if out.insert(addr) {
                victims += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    fn gt() -> GroundTruth {
        GroundTruth::generate(SimConfig::tiny(41))
    }

    #[test]
    fn sampler_stays_in_routed_space() {
        let gt = gt();
        let sampler = SpoofSampler::new(&gt);
        let mut rng = component_rng(1, "t");
        for _ in 0..5_000 {
            let addr = sampler.sample(&mut rng);
            assert!(gt.routed.is_routed(addr), "unrouted spoof {addr:#x}");
        }
    }

    #[test]
    fn sampler_is_roughly_uniform_over_routed() {
        let gt = gt();
        let sampler = SpoofSampler::new(&gt);
        let mut rng = component_rng(2, "t");
        // Count hits in the first routed prefix vs its share of space.
        let p = gt.routed.prefixes()[0];
        let share = p.num_addresses() as f64 / sampler.total() as f64;
        let n = 40_000;
        let hits = (0..n)
            .filter(|_| p.contains(sampler.sample(&mut rng)))
            .count();
        let observed = hits as f64 / n as f64;
        assert!(
            (observed - share).abs() < 0.03 + share * 0.3,
            "observed {observed}, share {share}"
        );
    }

    #[test]
    fn volumes_follow_config_and_spike() {
        let gt = gt();
        assert_eq!(spoof_volume(&gt, "SWIN", Quarter(3)), 2_000);
        assert_eq!(spoof_volume(&gt, "CALT", Quarter(3)), 3_000);
        assert_eq!(spoof_volume(&gt, "CALT", Quarter(12)), 30_000);
        assert_eq!(spoof_volume(&gt, "CALT", Quarter(13)), 30_000);
        assert_eq!(spoof_volume(&gt, "WIKI", Quarter(3)), 0);
    }

    #[test]
    fn spoofed_set_deterministic_and_sized() {
        let gt = gt();
        let a = spoofed_set(&gt, "SWIN", Quarter(5), 0.05);
        let b = spoofed_set(&gt, "SWIN", Quarter(5), 0.05);
        assert_eq!(a.len(), b.len());
        assert!(a.len() >= 1_900 && a.len() <= 2_000, "len {}", a.len());
        // Different quarters → different sets.
        let c = spoofed_set(&gt, "SWIN", Quarter(6), 0.05);
        assert!(a.intersection_count(&c) < a.len() / 4);
    }

    #[test]
    fn reflector_spoofs_are_truly_used() {
        let gt = gt();
        let q = Quarter(5);
        let with = spoofed_set(&gt, "SWIN", q, 0.5);
        let used = gt.used_addr_set(q);
        let used_overlap = with.iter().filter(|&a| used.contains(a)).count() as f64;
        // About half the volume should be genuinely used victims (plus the
        // odd uniform draw that happens to hit used space).
        assert!(
            used_overlap / with.len() as f64 > 0.35,
            "victim share {}",
            used_overlap / with.len() as f64
        );
    }
}
