//! The six ground-truth networks of §5.2 (Table 4).
//!
//! The paper compared its estimates against peak-usage ground truth for six
//! anonymous networks A–F ("the largest network covered is two /16 subnets
//! and the smallest network is roughly one /20"). We embed six synthetic
//! networks with the published peak-usage fractions and openness
//! characteristics: network B is "open" (most used hosts answer probes),
//! A and E are heavily firewalled, and F blocks the pinger entirely.

use crate::internet::{AllocMeta, Carver};
use ghosts_net::registry::{Allocation, CountryCode, Industry, Registry, Rir};
use ghosts_net::{Prefix, RoutedTable};

/// One ground-truth network.
#[derive(Debug, Clone)]
pub struct TruthNetwork {
    /// Network label 'A'–'F'.
    pub name: char,
    /// The network's routed prefix.
    pub prefix: Prefix,
    /// True peak usage as a fraction of the network's size (Table 4's
    /// "Truth" column).
    pub peak_fraction: f64,
    /// Multiplier on ICMP responsiveness (0 = blocks the pinger).
    pub icmp_scale: f64,
    /// Multiplier on TCP port-80 responsiveness.
    pub tcp_scale: f64,
    /// Multiplier on passive-source visibility.
    pub passive_scale: f64,
}

/// Specification rows: (name, prefix length, truth fraction, icmp scale,
/// tcp scale, passive scale). Scales are calibrated so the simulated
/// Ping%/Observed% columns land near Table 4's.
const SPECS: [(char, u8, f64, f64, f64, f64); 6] = [
    // A: 0.4% pingable of 25.9% used → nearly everything firewalled, but
    // well covered passively.
    ('A', 17, 0.259, 0.045, 0.05, 1.45),
    // B: open network — 6.7% pingable of 11.4% used.
    ('B', 18, 0.114, 1.75, 1.3, 1.0),
    // C: 12% pingable of ~32% used.
    ('C', 16, 0.320, 1.10, 1.0, 0.35),
    // D: largest network, half its used hosts pingable.
    ('D', 15, 0.476, 1.50, 1.2, 1.30),
    // E: dense usage, mostly firewalled clients.
    ('E', 18, 0.583, 0.47, 0.4, 0.85),
    // F: blocked our pinger (no IPING/TPING data at all).
    ('F', 20, 0.223, 0.0, 0.0, 2.2),
];

/// Carves, registers and routes the six networks. Returns their table.
pub(crate) fn build(
    carver: &mut Carver,
    registry: &mut Registry,
    routed: &mut RoutedTable,
    alloc_meta: &mut Vec<AllocMeta>,
) -> Vec<TruthNetwork> {
    let mut out = Vec::with_capacity(SPECS.len());
    for &(name, len, peak, icmp, tcp, passive) in &SPECS {
        let prefix = carver
            .carve(len)
            .expect("universe cannot be exhausted at study scale"); // lint: allow(no-unwrap) /8 pool >> SPECS demand
                                                                    // Spread the anonymous networks over the big three registries so
                                                                    // they do not skew any single RIR's usage totals.
        let (rir, country) = match name {
            'A' | 'D' => (Rir::Arin, "US"),
            'B' | 'E' => (Rir::Ripe, "DE"),
            _ => (Rir::Apnic, "JP"),
        };
        registry.add(Allocation {
            prefix,
            rir,
            country: CountryCode::new(country),
            industry: Industry::Corporate,
            alloc_year: 2001,
        });
        routed.announce(prefix);
        alloc_meta.push(AllocMeta {
            routed: true,
            // Every /24 of the network is active; per-/24 density carries
            // the peak fraction (see internet.rs block construction).
            final_util: 1.0,
            base_util: 1.0,
        });
        out.push(TruthNetwork {
            name,
            prefix,
            peak_fraction: peak,
            icmp_scale: icmp,
            tcp_scale: tcp,
            passive_scale: passive,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::config::SimConfig;
    use crate::internet::GroundTruth;
    use ghosts_pipeline::time::Quarter;

    fn with_networks() -> GroundTruth {
        let mut cfg = SimConfig::tiny(5);
        cfg.with_truth_networks = true;
        GroundTruth::generate(cfg)
    }

    #[test]
    fn six_networks_built_and_routed() {
        let gt = with_networks();
        assert_eq!(gt.truth_networks.len(), 6);
        let names: Vec<char> = gt.truth_networks.iter().map(|n| n.name).collect();
        assert_eq!(names, vec!['A', 'B', 'C', 'D', 'E', 'F']);
        for n in &gt.truth_networks {
            assert!(gt.routed.is_routed(n.prefix.base()));
        }
        // D is the biggest (a /15 = two /16s), F the smallest (a /20).
        let d = &gt.truth_networks[3];
        let f = &gt.truth_networks[5];
        assert_eq!(d.prefix.len(), 15);
        assert_eq!(f.prefix.len(), 20);
    }

    #[test]
    fn network_usage_matches_peak_fraction() {
        let gt = with_networks();
        let q = Quarter(7);
        let used = gt.used_addr_set(q);
        for n in &gt.truth_networks {
            let used_in = used.count_in_prefix(n.prefix) as f64;
            let frac = used_in / n.prefix.num_addresses() as f64;
            assert!(
                (frac - n.peak_fraction).abs() < 0.05,
                "network {}: usage {frac:.3} vs spec {:.3}",
                n.name,
                n.peak_fraction
            );
        }
    }

    #[test]
    fn network_usage_steady_over_time() {
        let gt = with_networks();
        let n = &gt.truth_networks[2];
        let early = gt.used_addr_set(Quarter(0)).count_in_prefix(n.prefix);
        let late = gt.used_addr_set(Quarter(13)).count_in_prefix(n.prefix);
        // Within-block densification ramp only (±25%), no activation sweep.
        let ratio = late as f64 / early.max(1) as f64;
        assert!((0.9..=1.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn blocks_tagged_with_network_index() {
        let gt = with_networks();
        for (i, n) in gt.truth_networks.iter().enumerate() {
            let block = gt.block_of_addr(n.prefix.base()).expect("routed block");
            assert_eq!(block.truth_network, Some(i as u8));
            assert!(!block.dynamic_pool);
        }
    }
}
