//! Deterministic hash-based pseudo-randomness.
//!
//! Observation decisions ("does source s see address a in quarter q?") must
//! be *stable functions* of their arguments: a host that responds to ICMP
//! responds in every census, overlapping windows must agree on shared
//! quarters, and regenerating a window must be exactly reproducible without
//! storing per-address state. Stateless splitmix-based hashing gives all of
//! that for free.

/// SplitMix64 finalising permutation.
#[inline]
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mixes a sequence of values into one well-distributed 64-bit hash.
pub fn mix(parts: &[u64]) -> u64 {
    let mut h = 0x243f_6a88_85a3_08d3u64; // pi digits, nothing-up-my-sleeve
    for &p in parts {
        h = splitmix(h ^ p);
    }
    h
}

/// A hash mapped to the unit interval `[0, 1)`.
pub fn unit(parts: &[u64]) -> f64 {
    (mix(parts) >> 11) as f64 / (1u64 << 53) as f64
}

/// Stable label → u64 for mixing strings into hashes.
pub fn label(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // determinism asserts compare exact values on purpose
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(mix(&[1, 2, 3]), mix(&[1, 2, 3]));
        assert_eq!(unit(&[7, 8]), unit(&[7, 8]));
        assert_eq!(label("IPING"), label("IPING"));
    }

    #[test]
    fn order_sensitive() {
        assert_ne!(mix(&[1, 2]), mix(&[2, 1]));
    }

    #[test]
    fn unit_in_range_and_spread() {
        let mut buckets = [0usize; 10];
        for i in 0..10_000u64 {
            let u = unit(&[42, i]);
            assert!((0.0..1.0).contains(&u));
            buckets[(u * 10.0) as usize] += 1;
        }
        // Roughly uniform: every decile within ±20% of expectation.
        for (i, &b) in buckets.iter().enumerate() {
            assert!((800..=1200).contains(&b), "decile {i}: {b}");
        }
    }

    #[test]
    fn label_distinguishes() {
        assert_ne!(label("SWIN"), label("CALT"));
    }
}
