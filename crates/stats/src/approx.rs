//! Approved float-comparison helpers.
//!
//! The ghost-lint `float-eq` rule bans raw `==`/`!=` between floats in
//! library code: exact float equality is almost always a latent bug next to
//! iterative fitters, and where it *is* intended (bit-level determinism
//! checks) the intent should be explicit. These helpers are the approved
//! vocabulary; this file itself is on the linter's allowlist.

/// Exact bit-level equality, NaN-safe. This is the determinism comparator:
/// two runs are "bit-identical" iff every output satisfies `bits_eq`.
#[must_use]
pub fn bits_eq(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

/// Absolute-tolerance comparison: `|a − b| ≤ tol`. NaN compares unequal.
#[must_use]
pub fn abs_close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

/// Mixed relative/absolute comparison `|a − b| ≤ tol·(1 + |b|)` — the
/// convention used throughout this workspace's numeric tests, exact at 0.
#[must_use]
pub fn rel_close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * (1.0 + b.abs())
}

/// Whether `x` is exactly zero (either signed zero). Spelled as a helper so
/// intent is visible where a structural zero (never a computed residual) is
/// being tested.
#[must_use]
#[allow(clippy::float_cmp)]
pub fn is_exact_zero(x: f64) -> bool {
    x == 0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_eq_distinguishes_nan_payloads_and_zero_signs() {
        assert!(bits_eq(1.5, 1.5));
        assert!(bits_eq(f64::NAN, f64::NAN)); // same payload
        assert!(!bits_eq(0.0, -0.0)); // different bits, == would say equal
        assert!(!bits_eq(1.0, 1.0 + f64::EPSILON));
    }

    #[test]
    fn closeness_helpers() {
        assert!(abs_close(1.0, 1.0 + 1e-12, 1e-9));
        assert!(!abs_close(1.0, 2.0, 1e-9));
        assert!(rel_close(1e12, 1e12 * (1.0 + 1e-12), 1e-9));
        assert!(!rel_close(1.0, f64::NAN, 1e-9));
        assert!(is_exact_zero(0.0) && is_exact_zero(-0.0));
        assert!(!is_exact_zero(f64::MIN_POSITIVE));
    }
}
