//! The binomial distribution.
//!
//! Used by the spoof-removal heuristic (§4.5 of the paper): the number of
//! uniformly spoofed addresses falling into a /24 subnet is
//! `Binomial(n = 256, p = S / 2^24)`, and the removal threshold `m` is the
//! smallest `k` with `Pr[X > k] < 10⁻⁸`.

use crate::special::{ln_choose, reg_beta};
use rand::Rng;

/// A binomial distribution with `n` trials and success probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Creates a binomial distribution.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn new(n: u64, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "Binomial: p must be in [0,1], got {p}"
        );
        Self { n, p }
    }

    /// Number of trials.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Mean `n·p`.
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// Variance `n·p·(1−p)`.
    pub fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }

    /// Natural log of the pmf at `k`.
    pub fn ln_pmf(&self, k: u64) -> f64 {
        if k > self.n {
            return f64::NEG_INFINITY;
        }
        if crate::approx::is_exact_zero(self.p) {
            return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
        }
        if crate::approx::bits_eq(self.p, 1.0) {
            return if k == self.n { 0.0 } else { f64::NEG_INFINITY };
        }
        ln_choose(self.n, k) + k as f64 * self.p.ln() + (self.n - k) as f64 * (1.0 - self.p).ln()
    }

    /// Probability mass function at `k`.
    pub fn pmf(&self, k: u64) -> f64 {
        self.ln_pmf(k).exp()
    }

    /// CDF: `Pr[X <= k] = I_{1-p}(n-k, k+1)`.
    pub fn cdf(&self, k: u64) -> f64 {
        if k >= self.n {
            return 1.0;
        }
        if crate::approx::is_exact_zero(self.p) {
            return 1.0;
        }
        if crate::approx::bits_eq(self.p, 1.0) {
            return 0.0;
        }
        reg_beta((self.n - k) as f64, k as f64 + 1.0, 1.0 - self.p)
    }

    /// Upper tail `Pr[X > k] = I_p(k+1, n-k)`.
    ///
    /// Computed directly from the incomplete beta (not as `1 − cdf`) so the
    /// 10⁻⁸-level tails required by the spoof filter do not cancel away.
    pub fn sf(&self, k: u64) -> f64 {
        if k >= self.n {
            return 0.0;
        }
        if crate::approx::is_exact_zero(self.p) {
            return 0.0;
        }
        if crate::approx::bits_eq(self.p, 1.0) {
            return 1.0;
        }
        reg_beta(k as f64 + 1.0, (self.n - k) as f64, self.p)
    }

    /// The smallest `k` such that `Pr[X > k] < alpha`.
    ///
    /// This is exactly the threshold `m` of the paper's spoof filter with
    /// `alpha = 1e-8`. Found by linear scan from the mean outward — the
    /// answer is always within a few dozen of `n·p` for the tiny `p` the
    /// filter sees.
    pub fn upper_tail_threshold(&self, alpha: f64) -> u64 {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
        let mut k = self.mean().floor() as u64;
        // Back off in case the mean itself already satisfies the bound.
        while k > 0 && self.sf(k - 1) < alpha {
            k -= 1;
        }
        while k < self.n && self.sf(k) >= alpha {
            k += 1;
        }
        k
    }

    /// Draws a sample by direct Bernoulli summation for small `n`, or a
    /// normal approximation (clamped and rounded) for large `n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.n <= 64 {
            let mut k = 0;
            for _ in 0..self.n {
                if rng.gen::<f64>() < self.p {
                    k += 1;
                }
            }
            k
        } else if self.mean() < 20.0 {
            // Sparse regime: approximate by Poisson thinning — geometric
            // skips between successes.
            let ln_q = (1.0 - self.p).ln();
            if crate::approx::is_exact_zero(ln_q) {
                return 0;
            }
            let mut k = 0u64;
            let mut i = 0u64;
            loop {
                let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                let skip = (u.ln() / ln_q).floor() as u64;
                i = i.saturating_add(skip).saturating_add(1);
                if i > self.n {
                    return k;
                }
                k += 1;
            }
        } else {
            let z: f64 = crate::dist::normal::sample_standard(rng);
            let x = self.mean() + self.variance().sqrt() * z;
            x.round().clamp(0.0, self.n as f64) as u64
        }
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact values on purpose
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol * (1.0 + b.abs()), "got {a}, want {b}");
    }

    #[test]
    fn pmf_sums_to_one() {
        let d = Binomial::new(30, 0.37);
        let total: f64 = (0..=30).map(|k| d.pmf(k)).sum();
        close(total, 1.0, 1e-12);
    }

    #[test]
    fn pmf_symmetric_half() {
        let d = Binomial::new(10, 0.5);
        for k in 0..=10 {
            close(d.pmf(k), d.pmf(10 - k), 1e-12);
        }
        close(d.pmf(5), 252.0 / 1024.0, 1e-12);
    }

    #[test]
    fn cdf_and_sf_complementary() {
        let d = Binomial::new(100, 0.03);
        for k in 0..=100 {
            close(d.cdf(k) + d.sf(k), 1.0, 1e-10);
        }
    }

    #[test]
    fn cdf_matches_partial_sums() {
        let d = Binomial::new(25, 0.2);
        let mut acc = 0.0;
        for k in 0..=25 {
            acc += d.pmf(k);
            close(d.cdf(k), acc, 1e-10);
        }
    }

    #[test]
    fn degenerate_probabilities() {
        let d0 = Binomial::new(10, 0.0);
        assert_eq!(d0.pmf(0), 1.0);
        assert_eq!(d0.sf(0), 0.0);
        let d1 = Binomial::new(10, 1.0);
        assert_eq!(d1.pmf(10), 1.0);
        assert_eq!(d1.cdf(9), 0.0);
        assert_eq!(d1.sf(9), 1.0);
    }

    #[test]
    fn spoof_filter_threshold_shape() {
        // Paper scenario: /24 of 256 addresses, S spoofed IPs uniform over a
        // /8 (2^24 addresses). S = 12_000 gives p ≈ 7.15e-4, mean ≈ 0.18.
        let p = 12_000.0 / 16_777_216.0;
        let d = Binomial::new(256, p);
        let m = d.upper_tail_threshold(1e-8);
        // With mean 0.18, the 1e-8 tail is crossed within the first handful
        // of counts; the exact value is what the filter will use.
        assert!((3..=12).contains(&m), "m = {m}");
        assert!(d.sf(m) < 1e-8);
        assert!(m == 0 || d.sf(m - 1) >= 1e-8);
    }

    #[test]
    fn threshold_monotone_in_p() {
        let a = Binomial::new(256, 0.0005).upper_tail_threshold(1e-8);
        let b = Binomial::new(256, 0.01).upper_tail_threshold(1e-8);
        assert!(b >= a);
    }

    #[test]
    fn sampler_small_n_mean() {
        let d = Binomial::new(40, 0.3);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 20_000;
        let mean = (0..n).map(|_| d.sample(&mut rng)).sum::<u64>() as f64 / n as f64;
        close(mean, 12.0, 0.02);
    }

    #[test]
    fn sampler_sparse_regime_mean() {
        let d = Binomial::new(1_000_000, 3e-6); // mean 3
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let n = 20_000;
        let mean = (0..n).map(|_| d.sample(&mut rng)).sum::<u64>() as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn sampler_normal_regime_mean() {
        let d = Binomial::new(10_000, 0.4);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 5_000;
        let mean = (0..n).map(|_| d.sample(&mut rng)).sum::<u64>() as f64 / n as f64;
        assert!((mean - 4_000.0).abs() < 5.0, "mean {mean}");
    }
}
