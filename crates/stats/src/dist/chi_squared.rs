//! The chi-squared distribution.
//!
//! The profile-likelihood "confidence interval" of the paper (§3.3.3,
//! following Rcapture) inverts the likelihood-ratio statistic against the
//! `χ²₁` quantile at `1 − α` with `α = 10⁻⁷` — deep in the tail, which is
//! why the quantile here is computed by careful bisection on an accurate
//! CDF rather than a series approximation.

use crate::dist::normal::Normal;
use crate::special::{reg_gamma_p, reg_gamma_q};

/// A chi-squared distribution with `k` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquared {
    k: f64,
}

impl ChiSquared {
    /// Creates a chi-squared distribution with `k > 0` degrees of freedom.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not finite and strictly positive.
    pub fn new(k: f64) -> Self {
        assert!(
            k.is_finite() && k > 0.0,
            "ChiSquared: dof must be positive, got {k}"
        );
        Self { k }
    }

    /// Degrees of freedom.
    pub fn dof(&self) -> f64 {
        self.k
    }

    /// Mean, `k`.
    pub fn mean(&self) -> f64 {
        self.k
    }

    /// Variance, `2k`.
    pub fn variance(&self) -> f64 {
        2.0 * self.k
    }

    /// CDF at `x`: `P(k/2, x/2)`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        reg_gamma_p(self.k / 2.0, x / 2.0)
    }

    /// Survival function `Pr[X > x]`, tail-stable.
    pub fn sf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 1.0;
        }
        reg_gamma_q(self.k / 2.0, x / 2.0)
    }

    /// Quantile function: the `x` with `cdf(x) = p`.
    ///
    /// Starts from the Wilson–Hilferty normal approximation and polishes by
    /// bisection + Newton until |cdf(x) − p| < 1e-12. Works for `p` as close
    /// to 1 as `1 − 1e-12` (the paper needs `1 − 10⁻⁷`).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile: p must be in (0,1), got {p}");
        // Wilson–Hilferty starting point.
        let z = Normal::standard().quantile(p);
        let k = self.k;
        let wh = k * (1.0 - 2.0 / (9.0 * k) + z * (2.0 / (9.0 * k)).sqrt()).powi(3);
        let mut lo = 0.0f64;
        let mut hi = wh.max(1.0);
        // Expand hi until the CDF brackets p.
        while self.cdf(hi) < p {
            lo = hi;
            hi *= 2.0;
            assert!(hi.is_finite(), "quantile bracket expansion diverged");
        }
        // Bisection to tight bracket.
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 1e-12 * (1.0 + hi) {
                break;
            }
        }
        0.5 * (lo + hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol * (1.0 + b.abs()), "got {a}, want {b}");
    }

    #[test]
    fn cdf_known_values() {
        // χ²₂ is Exponential(rate 1/2): cdf(x) = 1 - exp(-x/2).
        let d = ChiSquared::new(2.0);
        for &x in &[0.5, 1.0, 3.0, 10.0] {
            close(d.cdf(x), 1.0 - (-x / 2.0f64).exp(), 1e-12);
        }
    }

    #[test]
    fn quantile_known_values() {
        // Standard table values for χ²₁.
        let d = ChiSquared::new(1.0);
        close(d.quantile(0.95), 3.841_458_820_694_124, 1e-8);
        close(d.quantile(0.99), 6.634_896_601_021_214, 1e-8);
        // χ²₅ at 0.95.
        close(
            ChiSquared::new(5.0).quantile(0.95),
            11.070_497_693_516_35,
            1e-8,
        );
    }

    #[test]
    fn quantile_deep_tail_alpha_1e7() {
        // The paper's α = 1e-7 interval uses χ²₁ at 1 − 1e-7 ≈ 28.37.
        let q = ChiSquared::new(1.0).quantile(1.0 - 1e-7);
        // Cross-check: z² where z is the two-sided normal quantile.
        let z = Normal::standard().quantile(1.0 - 0.5e-7);
        close(q, z * z, 1e-6);
        assert!(q > 28.0 && q < 29.0, "q = {q}");
    }

    #[test]
    fn quantile_round_trips() {
        for &k in &[1.0, 2.0, 7.5, 100.0] {
            let d = ChiSquared::new(k);
            for &p in &[0.001, 0.1, 0.5, 0.9, 0.999, 1.0 - 1e-7] {
                close(d.cdf(d.quantile(p)), p, 1e-9);
            }
        }
    }

    #[test]
    fn sf_complementary() {
        let d = ChiSquared::new(3.0);
        for &x in &[0.1, 1.0, 5.0, 20.0] {
            close(d.cdf(x) + d.sf(x), 1.0, 1e-12);
        }
    }
}
