//! Probability distributions used by the capture–recapture machinery.
//!
//! Each distribution exposes (at least) a log-pmf/pdf, a CDF and a sampler.
//! The right-truncated Poisson distribution ([`truncated_poisson`]) is the
//! paper's refinement over the plain Poisson cell model (§3.3.1): counts of
//! capture histories are bounded above by the size of the publicly routed
//! space, and modelling that bound substantially improves estimates for
//! small strata (§5.2).

pub mod binomial;
pub mod chi_squared;
pub mod normal;
pub mod poisson;
pub mod truncated_poisson;

pub use binomial::Binomial;
pub use chi_squared::ChiSquared;
pub use normal::Normal;
pub use poisson::Poisson;
pub use truncated_poisson::TruncatedPoisson;
