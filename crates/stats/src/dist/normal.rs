//! The normal distribution.
//!
//! Used for sampler fallbacks, Wald-style sanity intervals and the
//! quantiles behind the χ² quantile (via Wilson–Hilferty starting points).

use crate::special::{erf, erfc};
use rand::Rng;

/// A normal distribution with the given mean and standard deviation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    sd: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Panics
    ///
    /// Panics if `sd` is not finite and strictly positive.
    pub fn new(mean: f64, sd: f64) -> Self {
        assert!(
            sd.is_finite() && sd > 0.0,
            "Normal: sd must be positive and finite, got {sd}"
        );
        Self { mean, sd }
    }

    /// The standard normal, `N(0, 1)`.
    pub fn standard() -> Self {
        Self::new(0.0, 1.0)
    }

    /// Mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard deviation.
    pub fn sd(&self) -> f64 {
        self.sd
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.sd;
        (-(z * z) / 2.0).exp() / (self.sd * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// CDF at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / (self.sd * std::f64::consts::SQRT_2);
        0.5 * (1.0 + erf(z))
    }

    /// Survival function `Pr[X > x]`, stable in the upper tail.
    pub fn sf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / (self.sd * std::f64::consts::SQRT_2);
        0.5 * erfc(z)
    }

    /// Inverse CDF (quantile function) via the Acklam rational approximation
    /// polished by one Newton step against the exact CDF (absolute error
    /// below 1e-12 over (1e-300, 1 − 1e-16)).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile: p must be in (0,1), got {p}");
        let z = standard_quantile(p);
        self.mean + self.sd * z
    }

    /// Draws a sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.sd * sample_standard(rng)
    }
}

/// Samples a standard normal via the Box–Muller polar method.
pub fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen::<f64>() * 2.0 - 1.0;
        let v: f64 = rng.gen::<f64>() * 2.0 - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Acklam's rational approximation to the standard normal quantile, with a
/// single Halley refinement step for near machine-precision accuracy.
fn standard_quantile(p: f64) -> f64 {
    // Coefficients from Acklam (2003).
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    // Horner evaluation; starting from 0.0 reproduces the classic nested
    // form `((c0*x + c1)*x + …)` operation for operation, so results stay
    // bit-identical to the hand-expanded version.
    fn horner(coeffs: &[f64], x: f64) -> f64 {
        coeffs.iter().fold(0.0, |acc, &c| acc * x + c)
    }

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        horner(&C, q) / (q * horner(&D, q) + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        horner(&A, r) * q / (r * horner(&B, r) + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -horner(&C, q) / (q * horner(&D, q) + 1.0)
    };

    // Halley refinement against the exact CDF.
    let n = Normal::standard();
    let e = n.cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol * (1.0 + b.abs()), "got {a}, want {b}");
    }

    #[test]
    fn cdf_known_values() {
        let n = Normal::standard();
        close(n.cdf(0.0), 0.5, 1e-14);
        close(n.cdf(1.0), 0.841_344_746_068_542_9, 1e-10);
        close(n.cdf(-1.96), 0.024_997_895_148_220_43, 1e-8);
        close(n.sf(3.0), 0.001_349_898_031_630_095, 1e-8);
    }

    #[test]
    fn quantile_round_trips_cdf() {
        let n = Normal::standard();
        for &p in &[
            1e-10,
            1e-7,
            0.001,
            0.025,
            0.5,
            0.8,
            0.975,
            0.999,
            1.0 - 1e-9,
        ] {
            let x = n.quantile(p);
            close(n.cdf(x), p, 1e-9);
        }
    }

    #[test]
    fn quantile_known_values() {
        let n = Normal::standard();
        close(n.quantile(0.5), 0.0, 1e-12);
        close(n.quantile(0.975), 1.959_963_984_540_054, 1e-9);
        close(n.quantile(0.025), -1.959_963_984_540_054, 1e-9);
    }

    #[test]
    fn nonstandard_parameters() {
        let n = Normal::new(10.0, 2.0);
        close(n.cdf(10.0), 0.5, 1e-14);
        close(n.quantile(0.841_344_746_068_542_9), 12.0, 1e-8);
        close(
            n.pdf(10.0),
            1.0 / (2.0 * (2.0 * std::f64::consts::PI).sqrt()),
            1e-12,
        );
    }

    #[test]
    fn sampler_moments() {
        let n = Normal::new(-3.0, 0.5);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let count = 50_000;
        let xs: Vec<f64> = (0..count).map(|_| n.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / count as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / count as f64;
        assert!((mean + 3.0).abs() < 0.01, "mean {mean}");
        assert!((var - 0.25).abs() < 0.01, "var {var}");
    }

    #[test]
    #[should_panic]
    fn bad_sd_panics() {
        Normal::new(0.0, 0.0);
    }

    #[test]
    #[should_panic]
    fn quantile_out_of_range_panics() {
        Normal::standard().quantile(1.0);
    }
}
