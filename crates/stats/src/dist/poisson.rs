//! The Poisson distribution.
//!
//! Log-linear capture–recapture assumes each contingency-table cell count
//! `Z_s` is Poisson distributed (§3.3.1 of the paper). This module provides
//! the pmf/CDF used for likelihoods and information criteria, plus a sampler
//! for the simulator and property tests.

use crate::special::{ln_factorial, reg_gamma_q};
use rand::Rng;

/// A Poisson distribution with rate `lambda > 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson distribution.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not finite and strictly positive.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "Poisson: lambda must be positive and finite, got {lambda}"
        );
        Self { lambda }
    }

    /// The rate parameter λ (which is also the mean and the variance).
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The mean, `λ`.
    pub fn mean(&self) -> f64 {
        self.lambda
    }

    /// The variance, `λ`.
    pub fn variance(&self) -> f64 {
        self.lambda
    }

    /// Natural log of the probability mass function at `k`.
    pub fn ln_pmf(&self, k: u64) -> f64 {
        k as f64 * self.lambda.ln() - self.lambda - ln_factorial(k)
    }

    /// Probability mass function at `k`.
    pub fn pmf(&self, k: u64) -> f64 {
        self.ln_pmf(k).exp()
    }

    /// CDF: `Pr[X <= k] = Q(k + 1, λ)` via the regularized upper incomplete
    /// gamma function.
    pub fn cdf(&self, k: u64) -> f64 {
        reg_gamma_q(k as f64 + 1.0, self.lambda)
    }

    /// Natural log of the CDF, stable in the deep lower tail.
    ///
    /// For `Pr[X <= k]` far below the mean the regularized gamma underflows;
    /// in that regime the CDF is summed directly in log space starting from
    /// the dominant term `pmf(k)`. Going downward the terms decay by factors
    /// `j / λ < 1`, so a short backward sum converges quickly.
    pub fn ln_cdf(&self, k: u64) -> f64 {
        let q = self.cdf(k);
        if q > 1e-280 {
            return q.ln();
        }
        // Deep tail: sum pmf(k) * (1 + k/λ + k(k-1)/λ² + ...) in log space.
        let lam = self.lambda;
        let mut ratio_sum = 1.0f64; // relative to pmf(k)
        let mut term = 1.0f64;
        let mut j = k;
        while j > 0 {
            term *= j as f64 / lam;
            ratio_sum += term;
            if term < 1e-18 * ratio_sum {
                break;
            }
            j -= 1;
        }
        self.ln_pmf(k) + ratio_sum.ln()
    }

    /// Survival function: `Pr[X > k]`.
    pub fn sf(&self, k: u64) -> f64 {
        crate::special::reg_gamma_p(k as f64 + 1.0, self.lambda)
    }

    /// Draws a sample.
    ///
    /// Small λ uses Knuth's product-of-uniforms method; large λ uses a
    /// normal approximation with continuity correction rejected against the
    /// exact pmf ratio (simple PTRS-style envelope is overkill here — the
    /// simulator only samples with λ up to a few thousand).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.lambda < 30.0 {
            // Knuth.
            let l = (-self.lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0f64;
            loop {
                p *= rng.gen::<f64>();
                if p <= l {
                    return k;
                }
                k += 1;
            }
        } else {
            // Normal approximation + local correction via inversion from the
            // mode outward would be more exact; for simulation purposes a
            // rounded normal with matched mean/variance is adequate and the
            // property tests bound its bias.
            let sd = self.lambda.sqrt();
            loop {
                let z: f64 = crate::dist::normal::sample_standard(rng);
                let x = self.lambda + sd * z;
                if x >= -0.5 {
                    return (x + 0.5).max(0.0) as u64;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol * (1.0 + b.abs()), "got {a}, want {b}");
    }

    #[test]
    fn pmf_sums_to_one() {
        let d = Poisson::new(3.5);
        let total: f64 = (0..100).map(|k| d.pmf(k)).sum();
        close(total, 1.0, 1e-12);
    }

    #[test]
    fn pmf_known_values() {
        let d = Poisson::new(2.0);
        close(d.pmf(0), (-2.0f64).exp(), 1e-12);
        close(d.pmf(1), 2.0 * (-2.0f64).exp(), 1e-12);
        close(d.pmf(2), 2.0 * (-2.0f64).exp(), 1e-12);
        close(d.pmf(3), 4.0 / 3.0 * (-2.0f64).exp(), 1e-12);
    }

    #[test]
    fn cdf_matches_partial_sums() {
        let d = Poisson::new(7.3);
        let mut acc = 0.0;
        for k in 0..30 {
            acc += d.pmf(k);
            close(d.cdf(k), acc, 1e-11);
            close(d.sf(k), 1.0 - acc, 1e-10);
        }
    }

    #[test]
    fn ln_cdf_deep_tail_is_finite_and_ordered() {
        // λ = 10_000, k = 100: cdf underflows but ln_cdf must be finite.
        let d = Poisson::new(10_000.0);
        let a = d.ln_cdf(100);
        let b = d.ln_cdf(101);
        assert!(a.is_finite() && b.is_finite());
        assert!(b > a, "CDF must be increasing in k: {a} vs {b}");
        // Dominant term check: ln_cdf(k) >= ln_pmf(k).
        assert!(a >= d.ln_pmf(100));
    }

    #[test]
    fn ln_cdf_agrees_with_cdf_when_not_tiny() {
        let d = Poisson::new(5.0);
        for k in 0..20 {
            close(d.ln_cdf(k), d.cdf(k).ln(), 1e-10);
        }
    }

    #[test]
    fn sampler_mean_and_variance_small_lambda() {
        let d = Poisson::new(4.0);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<u64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / n as f64;
        let var = samples
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn sampler_mean_large_lambda() {
        let d = Poisson::new(500.0);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let n = 5_000;
        let mean = (0..n).map(|_| d.sample(&mut rng)).sum::<u64>() as f64 / n as f64;
        assert!((mean - 500.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    #[should_panic]
    fn zero_lambda_panics() {
        Poisson::new(0.0);
    }
}
