//! The right-truncated Poisson distribution on `[0, l] ∩ ℤ`.
//!
//! The paper (§3.3.1) bounds contingency-table cell counts by the size of the
//! publicly routed IPv4 space and therefore models cells as *right-truncated*
//! Poisson rather than plain Poisson: "These improve estimates substantially
//! for small strata, where the counters are relatively close to the limit,
//! but otherwise make little difference."
//!
//! The truncated Poisson is a one-parameter exponential family in the
//! canonical parameter `θ = ln λ`, which gives clean formulas for the GLM
//! fitting in [`crate::glm`]:
//!
//! * `E[Z] = λ · F(l−1; λ) / F(l; λ)`
//! * `Var[Z] = λ² · F(l−2; λ)/F(l; λ) + E[Z] − E[Z]²`
//! * `dE[Z]/dθ = Var[Z]`
//!
//! where `F(k; λ)` is the plain Poisson CDF. CDF ratios are computed in log
//! space so the formulas remain stable when the mean is pushed against the
//! truncation limit (exactly the regime the paper cares about).

use super::poisson::Poisson;
use crate::special::ln_factorial;
use rand::Rng;

/// A Poisson(λ) distribution right-truncated to `[0, limit]`.
///
/// ```
/// use ghosts_stats::TruncatedPoisson;
///
/// // Far limit: indistinguishable from plain Poisson.
/// let easy = TruncatedPoisson::new(10.0, 1_000_000);
/// assert!((easy.mean() - 10.0).abs() < 1e-9);
///
/// // Mean pushed against the limit: the bound bites.
/// let tight = TruncatedPoisson::new(100.0, 20);
/// assert!(tight.mean() < 20.0 && tight.mean() > 19.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedPoisson {
    base: Poisson,
    limit: u64,
}

impl TruncatedPoisson {
    /// Creates a right-truncated Poisson distribution.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not positive/finite (see [`Poisson::new`]).
    pub fn new(lambda: f64, limit: u64) -> Self {
        Self {
            base: Poisson::new(lambda),
            limit,
        }
    }

    /// The untruncated rate parameter λ.
    pub fn lambda(&self) -> f64 {
        self.base.lambda()
    }

    /// The truncation limit `l` (inclusive).
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Natural log of the normalising constant `F(l; λ)` (the probability a
    /// plain Poisson falls inside the support).
    fn ln_norm(&self) -> f64 {
        self.base.ln_cdf(self.limit)
    }

    /// Natural log of the pmf at `k`. Returns `-inf` outside the support.
    pub fn ln_pmf(&self, k: u64) -> f64 {
        if k > self.limit {
            return f64::NEG_INFINITY;
        }
        let lam = self.base.lambda();
        k as f64 * lam.ln() - lam - ln_factorial(k) - self.ln_norm()
    }

    /// Probability mass function at `k`.
    pub fn pmf(&self, k: u64) -> f64 {
        self.ln_pmf(k).exp()
    }

    /// CDF: `Pr[X <= k]`.
    pub fn cdf(&self, k: u64) -> f64 {
        if k >= self.limit {
            return 1.0;
        }
        (self.base.ln_cdf(k) - self.ln_norm()).exp()
    }

    /// Mean `E[Z] = λ · F(l−1)/F(l)`.
    ///
    /// For λ far below the limit this is indistinguishable from λ; as
    /// λ → ∞ it approaches `l`.
    pub fn mean(&self) -> f64 {
        if self.limit == 0 {
            return 0.0;
        }
        let lam = self.base.lambda();
        // Fast path: when the limit is many standard deviations above λ the
        // ratio is 1 to machine precision.
        if (self.limit as f64) > lam + 12.0 * lam.sqrt() + 30.0 {
            return lam;
        }
        let ratio = (self.base.ln_cdf(self.limit - 1) - self.ln_norm()).exp();
        lam * ratio
    }

    /// Variance of the truncated variable.
    pub fn variance(&self) -> f64 {
        let lam = self.base.lambda();
        if self.limit == 0 {
            return 0.0;
        }
        if (self.limit as f64) > lam + 12.0 * lam.sqrt() + 30.0 {
            return lam;
        }
        let m = self.mean();
        if self.limit == 1 {
            // Bernoulli on {0, 1}.
            return m * (1.0 - m);
        }
        let r2 = (self.base.ln_cdf(self.limit - 2) - self.ln_norm()).exp();
        // E[Z(Z-1)] = λ² F(l-2)/F(l).
        let ezz1 = lam * lam * r2;
        (ezz1 + m - m * m).max(0.0)
    }

    /// Draws a sample by rejection from the untruncated Poisson. When the
    /// acceptance probability is low (λ well above the limit) falls back to
    /// inversion over the bounded support.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let accept_p = self.base.cdf(self.limit);
        if accept_p > 0.1 {
            loop {
                let k = self.base.sample(rng);
                if k <= self.limit {
                    return k;
                }
            }
        }
        // Inversion: the support is [0, l]; walk the pmf from the limit
        // downward (mass concentrates near the limit when λ >> l).
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        let mut k = self.limit;
        loop {
            acc += self.pmf(k);
            if acc >= u || k == 0 {
                return k;
            }
            k -= 1;
        }
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact values on purpose
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol * (1.0 + b.abs()), "got {a}, want {b}");
    }

    fn brute_mean_var(lam: f64, l: u64) -> (f64, f64) {
        let p = Poisson::new(lam);
        let norm: f64 = (0..=l).map(|k| p.pmf(k)).sum();
        let mean: f64 = (0..=l).map(|k| k as f64 * p.pmf(k) / norm).sum();
        let ex2: f64 = (0..=l).map(|k| (k as f64).powi(2) * p.pmf(k) / norm).sum();
        (mean, ex2 - mean * mean)
    }

    #[test]
    fn pmf_normalises() {
        let d = TruncatedPoisson::new(5.0, 7);
        let total: f64 = (0..=7).map(|k| d.pmf(k)).sum();
        close(total, 1.0, 1e-10);
        assert_eq!(d.pmf(8), 0.0);
    }

    #[test]
    fn mean_variance_match_brute_force() {
        for &(lam, l) in &[(2.0, 5u64), (5.0, 5), (10.0, 5), (50.0, 20), (3.0, 100)] {
            let d = TruncatedPoisson::new(lam, l);
            let (bm, bv) = brute_mean_var(lam, l);
            close(d.mean(), bm, 1e-9);
            close(d.variance(), bv, 1e-7);
        }
    }

    #[test]
    fn far_limit_reduces_to_poisson() {
        let d = TruncatedPoisson::new(10.0, 1_000_000);
        close(d.mean(), 10.0, 1e-12);
        close(d.variance(), 10.0, 1e-12);
        let p = Poisson::new(10.0);
        for k in 0..30 {
            close(d.ln_pmf(k), p.ln_pmf(k), 1e-10);
        }
    }

    #[test]
    fn mean_pushed_against_limit() {
        // λ far above the limit: nearly all mass at l.
        let d = TruncatedPoisson::new(1_000.0, 10);
        assert!(d.mean() > 9.8, "mean {}", d.mean());
        assert!(d.mean() <= 10.0);
        assert!(d.variance() < 0.3, "variance {}", d.variance());
    }

    #[test]
    fn limit_zero_degenerate() {
        let d = TruncatedPoisson::new(3.0, 0);
        assert_eq!(d.mean(), 0.0);
        assert_eq!(d.variance(), 0.0);
        close(d.pmf(0), 1.0, 1e-12);
    }

    #[test]
    fn limit_one_is_bernoulli() {
        let d = TruncatedPoisson::new(2.0, 1);
        let p1 = d.pmf(1);
        close(d.mean(), p1, 1e-10);
        close(d.variance(), p1 * (1.0 - p1), 1e-10);
    }

    #[test]
    fn cdf_monotone_and_capped() {
        let d = TruncatedPoisson::new(8.0, 12);
        let mut prev = 0.0;
        for k in 0..=12 {
            let c = d.cdf(k);
            assert!(c >= prev - 1e-12);
            prev = c;
        }
        close(d.cdf(12), 1.0, 1e-12);
        assert_eq!(d.cdf(100), 1.0);
    }

    #[test]
    fn variance_equals_d_mean_d_theta() {
        // Exponential family identity: dE/dθ = Var, θ = ln λ.
        // Finite-difference check.
        let lam: f64 = 6.0;
        let l = 8u64;
        let h = 1e-5;
        let m_plus = TruncatedPoisson::new((lam.ln() + h).exp(), l).mean();
        let m_minus = TruncatedPoisson::new((lam.ln() - h).exp(), l).mean();
        let deriv = (m_plus - m_minus) / (2.0 * h);
        let var = TruncatedPoisson::new(lam, l).variance();
        close(deriv, var, 1e-5);
    }

    #[test]
    fn sampler_respects_support_and_mean() {
        let d = TruncatedPoisson::new(20.0, 15);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 10_000;
        let mut sum = 0u64;
        for _ in 0..n {
            let k = d.sample(&mut rng);
            assert!(k <= 15);
            sum += k;
        }
        let mean = sum as f64 / n as f64;
        close(mean, d.mean(), 0.02);
    }

    #[test]
    fn sampler_extreme_rejection_regime() {
        // λ = 500, limit = 5: acceptance ~ 0, must fall back to inversion.
        let d = TruncatedPoisson::new(500.0, 5);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..100 {
            assert!(d.sample(&mut rng) <= 5);
        }
    }
}
