//! Count-data GLMs with a log link: plain Poisson and right-truncated
//! Poisson, fitted by Newton–Raphson (equivalently IRLS).
//!
//! This is the fitting engine behind the log-linear capture–recapture models
//! of the paper (§3.3). A log-linear model is exactly a Poisson GLM whose
//! design matrix encodes which interaction terms `u_h` are free; the paper's
//! right-truncated refinement swaps the Poisson cell likelihood for a
//! truncated one bounded by the routed-space size. Both are one-parameter
//! exponential families in the canonical parameter `θ_i = η_i = xᵢᵀu`, so a
//! single Newton loop covers both:
//!
//! * score  `∇ℓ = Xᵀ (y − m(η))`
//! * hessian `∇²ℓ = −Xᵀ diag(v(η)) X`
//!
//! with `m = v = λ` for Poisson and the truncated mean/variance otherwise.

use crate::dist::{Poisson, TruncatedPoisson};
use crate::linalg::{solve_spd_with_ridge, Matrix};
use crate::special::ln_gamma;

/// Hard clamp on the linear predictor. `exp(120) ≈ 1.3e52` is far beyond any
/// meaningful cell mean (the full IPv4 space is `< 2^32 ≈ 4.3e9`) but small
/// enough that downstream arithmetic cannot overflow.
const ETA_CLAMP: f64 = 120.0;

/// Options controlling the Newton iteration.
#[derive(Debug, Clone, Copy)]
pub struct GlmOptions {
    /// Maximum Newton iterations. Reaching it without meeting the tolerance
    /// still returns a fit, flagged `converged: false`.
    pub max_iter: usize,
    /// Convergence tolerance on the relative log-likelihood change.
    pub tol: f64,
    /// Hard iteration budget. Unlike `max_iter`, exhausting the budget
    /// before convergence is an *error* ([`GlmError::BudgetExhausted`]),
    /// so runaway non-convergence surfaces structurally instead of as
    /// non-finite coefficients downstream. `None` disables the budget.
    pub iteration_budget: Option<usize>,
}

impl Default for GlmOptions {
    fn default() -> Self {
        Self {
            max_iter: 200,
            tol: 1e-10,
            iteration_budget: None,
        }
    }
}

/// The family of the per-cell count distribution.
#[derive(Debug, Clone, PartialEq)]
pub enum CountFamily {
    /// Plain Poisson cells (the classical log-linear model).
    Poisson,
    /// Right-truncated Poisson cells with per-cell inclusive limits
    /// (the paper's refinement, §3.3.1). The vector length must match the
    /// number of observations.
    TruncatedPoisson(Vec<u64>),
}

/// A fitted count GLM.
#[derive(Debug, Clone)]
pub struct GlmFit {
    /// Estimated coefficients, one per design-matrix column.
    pub coef: Vec<f64>,
    /// Fitted cell means `E[Z_i]` (truncated means when truncation applies).
    pub fitted: Vec<f64>,
    /// Fitted untruncated rates `λ_i = exp(η_i)`.
    pub lambda: Vec<f64>,
    /// Maximised log-likelihood.
    pub log_likelihood: f64,
    /// Newton iterations used.
    pub iterations: usize,
    /// Whether the tolerance was met within `max_iter`.
    pub converged: bool,
}

/// Errors from GLM fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum GlmError {
    /// Design/response/limit dimensions disagree.
    DimensionMismatch {
        /// Rows in the design matrix.
        rows: usize,
        /// Length of the response (or limit) vector.
        ys: usize,
    },
    /// The response contains negative or non-finite values.
    InvalidResponse {
        /// Index of the offending response value.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// The design matrix contains a NaN or infinite entry.
    InvalidDesign {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
        /// The offending value.
        value: f64,
    },
    /// The Newton system could not be solved even with ridging.
    SingularSystem,
    /// The iteration produced non-finite coefficients (numerical
    /// breakdown that ridging could not prevent).
    NonFiniteFit,
    /// The Newton iteration budget ran out before the tolerance was met
    /// (only when [`GlmOptions::iteration_budget`] is set).
    BudgetExhausted {
        /// Iterations consumed when the budget ran out.
        iterations: usize,
    },
}

impl std::fmt::Display for GlmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GlmError::DimensionMismatch { rows, ys } => {
                write!(f, "design has {rows} rows but response has {ys}")
            }
            GlmError::InvalidResponse { index, value } => {
                write!(f, "invalid response value {value} at index {index}")
            }
            GlmError::InvalidDesign { row, col, value } => {
                write!(f, "invalid design entry {value} at ({row}, {col})")
            }
            GlmError::SingularSystem => write!(f, "Newton system singular"),
            GlmError::NonFiniteFit => write!(f, "iteration produced non-finite coefficients"),
            GlmError::BudgetExhausted { iterations } => {
                write!(f, "Newton budget exhausted after {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for GlmError {}

/// Per-cell mean and variance under the family at rate `λ` (limit-aware).
fn mean_var(family: &CountFamily, i: usize, lambda: f64) -> (f64, f64) {
    match family {
        CountFamily::Poisson => (lambda, lambda),
        CountFamily::TruncatedPoisson(limits) => {
            let d = TruncatedPoisson::new(lambda, limits[i]);
            (d.mean(), d.variance())
        }
    }
}

/// Per-cell log-likelihood contribution. `y` may be non-integral (the IC
/// divisor heuristic scales counts), so `ln y!` generalises to `ln Γ(y+1)`.
fn cell_loglik(family: &CountFamily, i: usize, lambda: f64, y: f64) -> f64 {
    let base = y * lambda.ln() - lambda - ln_gamma(y + 1.0);
    match family {
        CountFamily::Poisson => base,
        CountFamily::TruncatedPoisson(limits) => base - Poisson::new(lambda).ln_cdf(limits[i]),
    }
}

/// Total log-likelihood at coefficients `coef`.
pub fn log_likelihood(design: &Matrix, y: &[f64], family: &CountFamily, coef: &[f64]) -> f64 {
    let eta = design.matvec(coef);
    eta.iter()
        .enumerate()
        .map(|(i, &e)| cell_loglik(family, i, e.clamp(-ETA_CLAMP, ETA_CLAMP).exp(), y[i]))
        .sum()
}

/// Fits a count GLM with log link by damped Newton–Raphson.
///
/// `design` is the `n × p` model matrix, `y` the `n` observed counts
/// (non-negative, possibly non-integral after IC scaling).
///
/// # Errors
///
/// Returns [`GlmError`] on dimension mismatch, invalid responses, or an
/// unsolvable Newton system.
pub fn fit(
    design: &Matrix,
    y: &[f64],
    family: &CountFamily,
    opts: GlmOptions,
) -> Result<GlmFit, GlmError> {
    // Fault point (a no-op unless a fault plan is armed; DESIGN.md §11):
    // forces the failure classes the degradation ladder must handle. The
    // NaN-cell fault poisons a copy of the response so the regular
    // validation below reports it — injection exercises the real error
    // path, it does not invent a new one.
    let mut y = y;
    let poisoned: Vec<f64>;
    match ghosts_faultinject::fire("glm.fit") {
        Some(ghosts_faultinject::Fault::NonFiniteFit) => return Err(GlmError::NonFiniteFit),
        Some(ghosts_faultinject::Fault::BudgetExhaustion) => {
            return Err(GlmError::BudgetExhausted {
                iterations: opts.iteration_budget.unwrap_or(0),
            });
        }
        Some(ghosts_faultinject::Fault::NanCell) => {
            let mut cells = y.to_vec();
            if let Some(first) = cells.first_mut() {
                *first = f64::NAN;
            }
            poisoned = cells;
            y = &poisoned;
        }
        _ => {}
    }

    let n = design.rows();
    let p = design.cols();
    if y.len() != n {
        return Err(GlmError::DimensionMismatch {
            rows: n,
            ys: y.len(),
        });
    }
    if let CountFamily::TruncatedPoisson(limits) = family {
        if limits.len() != n {
            return Err(GlmError::DimensionMismatch {
                rows: n,
                ys: limits.len(),
            });
        }
    }
    for (i, &v) in y.iter().enumerate() {
        if !v.is_finite() || v < 0.0 {
            return Err(GlmError::InvalidResponse { index: i, value: v });
        }
    }
    for row in 0..n {
        for col in 0..p {
            let value = design[(row, col)];
            if !value.is_finite() {
                return Err(GlmError::InvalidDesign { row, col, value });
            }
        }
    }

    // Initialise from the least-squares fit to ln(y + 0.5): X u ≈ ln(y+0.5).
    let target: Vec<f64> = y.iter().map(|&v| (v + 0.5).ln()).collect();
    let gram = design.weighted_gram(&vec![1.0; n]);
    let rhs = design.tr_matvec(&target);
    let mut coef = match solve_spd_with_ridge(&gram, &rhs) {
        Ok((c, _)) => c,
        Err(_) => vec![0.0; p],
    };

    let mut loglik = log_likelihood(design, y, family, &coef);
    let mut converged = false;
    let mut iterations = 0;

    for iter in 0..opts.max_iter {
        iterations = iter + 1;
        let eta = design.matvec(&coef);
        let mut resid = vec![0.0; n];
        let mut weights = vec![0.0; n];
        for i in 0..n {
            let lam = eta[i].clamp(-ETA_CLAMP, ETA_CLAMP).exp();
            let (m, v) = mean_var(family, i, lam);
            resid[i] = y[i] - m;
            // Floor the weight so cells whose variance collapses (mean hard
            // against the truncation limit) do not zero out the Hessian row.
            weights[i] = v.max(1e-12);
        }
        let score = design.tr_matvec(&resid);
        let hessian = design.weighted_gram(&weights);
        let (delta, _ridge) =
            solve_spd_with_ridge(&hessian, &score).map_err(|_| GlmError::SingularSystem)?;

        // Damped step: halve until the log-likelihood does not decrease.
        let mut step = 1.0f64;
        let mut accepted = false;
        for _ in 0..40 {
            let trial: Vec<f64> = coef.iter().zip(&delta).map(|(c, d)| c + step * d).collect();
            let trial_ll = log_likelihood(design, y, family, &trial);
            if trial_ll.is_finite() && trial_ll >= loglik - 1e-12 {
                let improvement = trial_ll - loglik;
                coef = trial;
                let prev = loglik;
                loglik = trial_ll;
                accepted = true;
                if improvement.abs() <= opts.tol * (1.0 + prev.abs()) {
                    converged = true;
                }
                break;
            }
            step *= 0.5;
        }
        if !accepted {
            // No ascent possible: treat the current point as the optimum.
            converged = true;
        }
        if converged {
            break;
        }
        if let Some(budget) = opts.iteration_budget {
            if iterations >= budget {
                return Err(GlmError::BudgetExhausted { iterations });
            }
        }
    }

    // Numerical-safety invariant: never hand back NaN/∞ coefficients — a
    // caller summing stratum estimates would silently poison the total.
    if coef.iter().any(|c| !c.is_finite()) || !loglik.is_finite() {
        return Err(GlmError::NonFiniteFit);
    }

    let eta = design.matvec(&coef);
    let mut fitted = vec![0.0; n];
    let mut lambda_out = vec![0.0; n];
    for i in 0..n {
        let lam = eta[i].clamp(-ETA_CLAMP, ETA_CLAMP).exp();
        lambda_out[i] = lam;
        fitted[i] = mean_var(family, i, lam).0;
    }

    Ok(GlmFit {
        coef,
        fitted,
        lambda: lambda_out,
        log_likelihood: loglik,
        iterations,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol * (1.0 + b.abs()), "got {a}, want {b}");
    }

    #[test]
    fn intercept_only_poisson_fits_mean() {
        // With only an intercept the MLE of λ is the sample mean.
        let design = Matrix::from_vec(4, 1, vec![1.0; 4]);
        let y = [2.0, 4.0, 6.0, 8.0];
        let fit = fit(&design, &y, &CountFamily::Poisson, GlmOptions::default()).unwrap();
        assert!(fit.converged);
        close(fit.coef[0].exp(), 5.0, 1e-8);
        for &f in &fit.fitted {
            close(f, 5.0, 1e-8);
        }
    }

    #[test]
    fn saturated_poisson_reproduces_counts() {
        // One indicator per observation → fitted = observed.
        let design = Matrix::identity(3);
        let y = [3.0, 7.0, 11.0];
        let fit = fit(&design, &y, &CountFamily::Poisson, GlmOptions::default()).unwrap();
        for (f, want) in fit.fitted.iter().zip(&y) {
            close(*f, *want, 1e-6);
        }
    }

    #[test]
    fn two_group_poisson_matches_group_means() {
        // Column 0 = intercept, column 1 = group indicator.
        let design = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 0.0], &[1.0, 1.0], &[1.0, 1.0]]);
        let y = [10.0, 14.0, 30.0, 34.0];
        let fit = fit(&design, &y, &CountFamily::Poisson, GlmOptions::default()).unwrap();
        close(fit.coef[0].exp(), 12.0, 1e-7); // group-0 mean
        close((fit.coef[0] + fit.coef[1]).exp(), 32.0, 1e-7); // group-1 mean
    }

    #[test]
    fn independence_log_linear_model_two_sources() {
        // Classic 2×2 contingency table generated from an independence model:
        // both-sources 30, only-1 60, only-2 20. Under independence the
        // intercept exp(u) estimates the unseen cell: z00 = z10*z01/z11.
        // Cells ordered (s1,s2) = (1,1), (1,0), (0,1); columns: 1, s1, s2.
        let design = Matrix::from_rows(&[&[1.0, 1.0, 1.0], &[1.0, 1.0, 0.0], &[1.0, 0.0, 1.0]]);
        let y = [30.0, 60.0, 20.0];
        let fit = fit(&design, &y, &CountFamily::Poisson, GlmOptions::default()).unwrap();
        // Saturated model on 3 cells with 3 params → fitted == observed, and
        // exp(intercept) = 60*20/30 = 40 (Lincoln–Petersen's unseen cell).
        close(fit.coef[0].exp(), 40.0, 1e-6);
    }

    #[test]
    fn zero_counts_are_handled() {
        let design = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 0.0]]);
        let y = [0.0, 5.0];
        let fit = fit(&design, &y, &CountFamily::Poisson, GlmOptions::default()).unwrap();
        assert!(fit.log_likelihood.is_finite());
        close(fit.fitted[1], 5.0, 1e-6);
        assert!(fit.fitted[0] < 1e-6, "zero cell fit {}", fit.fitted[0]);
    }

    #[test]
    fn truncated_far_limit_matches_poisson() {
        let design = Matrix::from_vec(3, 1, vec![1.0; 3]);
        let y = [4.0, 5.0, 6.0];
        let plain = fit(&design, &y, &CountFamily::Poisson, GlmOptions::default()).unwrap();
        let trunc = fit(
            &design,
            &y,
            &CountFamily::TruncatedPoisson(vec![1_000_000; 3]),
            GlmOptions::default(),
        )
        .unwrap();
        close(trunc.coef[0], plain.coef[0], 1e-8);
    }

    #[test]
    fn truncated_tight_limit_lowers_lambda_estimate() {
        // Observations near the limit: under truncation, a λ above the limit
        // explains them with truncated mean ≈ limit; the plain Poisson must
        // put λ at the sample mean. The truncated λ estimate is therefore
        // at least the plain one.
        let design = Matrix::from_vec(4, 1, vec![1.0; 4]);
        let y = [9.0, 10.0, 10.0, 8.0];
        let limit = 10u64;
        let plain = fit(&design, &y, &CountFamily::Poisson, GlmOptions::default()).unwrap();
        let trunc = fit(
            &design,
            &y,
            &CountFamily::TruncatedPoisson(vec![limit; 4]),
            GlmOptions::default(),
        )
        .unwrap();
        assert!(
            trunc.lambda[0] > plain.lambda[0],
            "truncated λ {} should exceed plain λ {}",
            trunc.lambda[0],
            plain.lambda[0]
        );
        // Fitted (truncated) means still match the data scale.
        assert!(trunc.fitted[0] <= limit as f64 + 1e-9);
    }

    #[test]
    fn loglik_increases_along_fit() {
        // The fit's maximised log-likelihood is at least the init's.
        let design = Matrix::from_rows(&[&[1.0, 1.0, 1.0], &[1.0, 1.0, 0.0], &[1.0, 0.0, 1.0]]);
        let y = [12.0, 40.0, 9.0];
        let f = fit(&design, &y, &CountFamily::Poisson, GlmOptions::default()).unwrap();
        let at_zero = log_likelihood(&design, &y, &CountFamily::Poisson, &[0.0, 0.0, 0.0]);
        assert!(f.log_likelihood >= at_zero);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let design = Matrix::zeros(3, 2);
        let y = [1.0, 2.0];
        assert!(matches!(
            fit(&design, &y, &CountFamily::Poisson, GlmOptions::default()),
            Err(GlmError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn negative_response_rejected() {
        let design = Matrix::from_vec(2, 1, vec![1.0; 2]);
        let y = [1.0, -2.0];
        assert!(matches!(
            fit(&design, &y, &CountFamily::Poisson, GlmOptions::default()),
            Err(GlmError::InvalidResponse { index: 1, .. })
        ));
    }

    #[test]
    fn exhausted_budget_is_a_structured_error() {
        // The saturated 3-cell fit needs several Newton steps; a budget of 1
        // must surface as BudgetExhausted, not as a silent non-converged fit.
        let design = Matrix::from_rows(&[&[1.0, 1.0, 1.0], &[1.0, 1.0, 0.0], &[1.0, 0.0, 1.0]]);
        let y = [30.0, 60.0, 20.0];
        let opts = GlmOptions {
            iteration_budget: Some(1),
            ..GlmOptions::default()
        };
        assert_eq!(
            fit(&design, &y, &CountFamily::Poisson, opts).unwrap_err(),
            GlmError::BudgetExhausted { iterations: 1 }
        );
    }

    #[test]
    fn generous_budget_does_not_change_the_fit() {
        let design = Matrix::from_vec(4, 1, vec![1.0; 4]);
        let y = [2.0, 4.0, 6.0, 8.0];
        let opts = GlmOptions {
            iteration_budget: Some(200),
            ..GlmOptions::default()
        };
        let budgeted = fit(&design, &y, &CountFamily::Poisson, opts).unwrap();
        let plain = fit(&design, &y, &CountFamily::Poisson, GlmOptions::default()).unwrap();
        assert!(budgeted.converged);
        assert_eq!(budgeted.coef[0].to_bits(), plain.coef[0].to_bits());
    }

    #[test]
    fn non_integer_counts_accepted() {
        // The IC divisor heuristic produces scaled, non-integral counts.
        let design = Matrix::from_vec(3, 1, vec![1.0; 3]);
        let y = [1.5, 2.5, 3.5];
        let f = fit(&design, &y, &CountFamily::Poisson, GlmOptions::default()).unwrap();
        close(f.coef[0].exp(), 2.5, 1e-7);
    }
}
