//! # ghosts-stats
//!
//! Statistics substrate for the *Capturing Ghosts* reproduction (Zander,
//! Andrew & Armitage, IMC 2014). The paper's capture–recapture machinery is
//! built in R on top of `Rcapture` and base-R GLM fitting; the Rust
//! ecosystem has no equivalent, so this crate provides everything from the
//! special functions up:
//!
//! * [`special`] — log-gamma, regularized incomplete gamma/beta, erf.
//! * [`dist`] — Poisson, **right-truncated Poisson** (the paper's cell
//!   model, §3.3.1), binomial (spoof-filter thresholds, §4.5), normal and
//!   chi-squared (profile-likelihood ranges, §3.3.3).
//! * [`linalg`] — dense matrices, LU/Cholesky solvers, the §7 matrix `A`.
//! * [`glm`] — Newton/IRLS fitting of Poisson and truncated-Poisson
//!   log-linear models.
//! * [`optimize`] — bisection/golden-section for profile-likelihood
//!   interval inversion.
//! * [`regression`] — linear trend fitting for the growth analysis (§6).
//! * [`summary`] — RMSE/MAE/quantiles for the cross-validation (§5).
//! * [`rng`] — deterministic per-component random streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx;
pub mod dist;
pub mod glm;
pub mod linalg;
pub mod optimize;
pub mod regression;
pub mod rng;
pub mod special;
pub mod summary;

pub use dist::{Binomial, ChiSquared, Normal, Poisson, TruncatedPoisson};
pub use glm::{fit as glm_fit, CountFamily, GlmError, GlmFit, GlmOptions};
pub use linalg::{LinalgError, Matrix};
pub use regression::{linear_fit, LinearFit};
