//! A dense row-major matrix of `f64`.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} != {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from nested row slices (convenient in tests).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "Matrix::from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Self::from_vec(r, c, data)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// A view of row `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// A mutable view of row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The underlying row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix–matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if crate::approx::is_exact_zero(a) {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for j in 0..other.cols {
                    out_row[j] += a * orow[j];
                }
            }
        }
        out
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    #[allow(clippy::needless_range_loop)]
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec: dimension mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Transposed matrix–vector product `selfᵀ * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.rows()`.
    #[allow(clippy::needless_range_loop)]
    pub fn tr_matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows, "tr_matvec: dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            let vi = v[i];
            if crate::approx::is_exact_zero(vi) {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(self.row(i)) {
                *o += a * vi;
            }
        }
        out
    }

    /// Computes `Xᵀ diag(w) X` — the weighted Gram matrix at the heart of
    /// every IRLS step.
    ///
    /// # Panics
    ///
    /// Panics if `w.len() != self.rows()`.
    pub fn weighted_gram(&self, w: &[f64]) -> Matrix {
        assert_eq!(w.len(), self.rows, "weighted_gram: weight length mismatch");
        let p = self.cols;
        let mut g = Matrix::zeros(p, p);
        for (i, &wi) in w.iter().enumerate() {
            if crate::approx::is_exact_zero(wi) {
                continue;
            }
            let row = self.row(i);
            for a in 0..p {
                let ra = wi * row[a];
                if crate::approx::is_exact_zero(ra) {
                    continue;
                }
                let grow = g.row_mut(a);
                for b in a..p {
                    grow[b] += ra * row[b];
                }
            }
        }
        // Mirror the upper triangle.
        for a in 0..p {
            for b in (a + 1)..p {
                g[(b, a)] = g[(a, b)];
            }
        }
        g
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(12) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(12) {
                write!(f, "{:10.4}", self[(i, j)])?;
                if j + 1 < self.cols {
                    write!(f, ", ")?;
                }
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact values on purpose
mod tests {
    use super::*;

    #[test]
    fn identity_matmul_is_identity_op() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn matvec_and_tr_matvec() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[2.0, 1.0], &[0.0, 3.0]]);
        assert_eq!(a.matvec(&[2.0, 5.0]), vec![2.0, 9.0, 15.0]);
        assert_eq!(a.tr_matvec(&[1.0, 1.0, 1.0]), vec![3.0, 4.0]);
    }

    #[test]
    fn weighted_gram_matches_explicit() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[1.0, -1.0], &[1.0, 0.5]]);
        let w = [2.0, 1.0, 4.0];
        let g = x.weighted_gram(&w);
        // Explicit Xᵀ W X.
        let mut wx = x.clone();
        for i in 0..3 {
            for j in 0..2 {
                wx[(i, j)] *= w[i];
            }
        }
        let expect = x.transpose().matmul(&wx);
        for i in 0..2 {
            for j in 0..2 {
                assert!((g[(i, j)] - expect[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic]
    fn matmul_dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        a.matmul(&b);
    }
}
