//! Small dense linear algebra.
//!
//! The log-linear model fitting in `ghosts-core` solves Newton systems whose
//! dimension equals the number of model parameters — at most a few dozen for
//! nine sources — and the unused-space model of §7 inverts a 32×32
//! triangular matrix. A compact row-major [`Matrix`] with LU and Cholesky
//! factorisations covers everything; no external BLAS needed.

pub mod matrix;
pub mod solve;

pub use matrix::Matrix;
pub use solve::{cholesky_solve, lu_solve, solve_spd_with_ridge, LinalgError};
