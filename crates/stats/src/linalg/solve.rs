//! Linear system solvers: LU with partial pivoting and Cholesky, plus a
//! ridge-stabilised SPD solve used by the GLM fitter when a Newton system is
//! near-singular (which happens when a model term is almost aliased — e.g. a
//! high-order interaction supported by a single sparse cell).

use super::matrix::Matrix;

/// Errors from the dense solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// The matrix is singular (or numerically so) at the given pivot.
    Singular {
        /// Index of the failing pivot.
        pivot: usize,
    },
    /// The matrix is not positive definite (Cholesky only).
    NotPositiveDefinite {
        /// Index of the failing pivot.
        pivot: usize,
    },
    /// Dimensions of the system are inconsistent.
    DimensionMismatch,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::Singular { pivot } => {
                write!(f, "singular matrix at pivot {pivot}")
            }
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix not positive definite at pivot {pivot}")
            }
            LinalgError::DimensionMismatch => write!(f, "dimension mismatch"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Solves `A x = b` by LU decomposition with partial pivoting.
///
/// `A` must be square; `b.len()` must equal its dimension.
pub fn lu_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let n = a.rows();
    if a.cols() != n || b.len() != n {
        return Err(LinalgError::DimensionMismatch);
    }
    let mut lu = a.clone();
    let mut perm: Vec<usize> = (0..n).collect();

    for k in 0..n {
        // Partial pivot: find the largest |entry| in column k at/below row k.
        let mut max_val = lu[(k, k)].abs();
        let mut max_row = k;
        for i in (k + 1)..n {
            let v = lu[(i, k)].abs();
            if v > max_val {
                max_val = v;
                max_row = i;
            }
        }
        if max_val < 1e-300 {
            return Err(LinalgError::Singular { pivot: k });
        }
        if max_row != k {
            perm.swap(k, max_row);
            for j in 0..n {
                let tmp = lu[(k, j)];
                lu[(k, j)] = lu[(max_row, j)];
                lu[(max_row, j)] = tmp;
            }
        }
        let pivot = lu[(k, k)];
        for i in (k + 1)..n {
            let factor = lu[(i, k)] / pivot;
            lu[(i, k)] = factor;
            for j in (k + 1)..n {
                let v = lu[(k, j)];
                lu[(i, j)] -= factor * v;
            }
        }
    }

    // Forward substitution with permuted b: L y = P b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut acc = b[perm[i]];
        for j in 0..i {
            acc -= lu[(i, j)] * y[j];
        }
        y[i] = acc;
    }
    // Back substitution: U x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut acc = y[i];
        for j in (i + 1)..n {
            acc -= lu[(i, j)] * x[j];
        }
        x[i] = acc / lu[(i, i)];
    }
    Ok(x)
}

/// Inverts a square matrix by LU-solving against the identity columns.
pub fn invert(a: &Matrix) -> Result<Matrix, LinalgError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::DimensionMismatch);
    }
    let mut out = Matrix::zeros(n, n);
    let mut e = vec![0.0; n];
    for j in 0..n {
        e[j] = 1.0;
        let col = lu_solve(a, &e)?;
        for i in 0..n {
            out[(i, j)] = col[i];
        }
        e[j] = 0.0;
    }
    Ok(out)
}

/// Solves `A x = b` for symmetric positive definite `A` by Cholesky
/// decomposition (`A = L Lᵀ`).
pub fn cholesky_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let n = a.rows();
    if a.cols() != n || b.len() != n {
        return Err(LinalgError::DimensionMismatch);
    }
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut acc = a[(i, j)];
            for k in 0..j {
                acc -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if acc <= 0.0 || !acc.is_finite() {
                    return Err(LinalgError::NotPositiveDefinite { pivot: i });
                }
                l[(i, j)] = acc.sqrt();
            } else {
                l[(i, j)] = acc / l[(j, j)];
            }
        }
    }
    // L y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut acc = b[i];
        for j in 0..i {
            acc -= l[(i, j)] * y[j];
        }
        y[i] = acc / l[(i, i)];
    }
    // Lᵀ x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut acc = y[i];
        for j in (i + 1)..n {
            acc -= l[(j, i)] * x[j];
        }
        x[i] = acc / l[(i, i)];
    }
    Ok(x)
}

/// Solves an SPD system, adding an escalating ridge `λI` if the plain
/// Cholesky fails. Returns the solution together with the ridge that was
/// needed (0.0 when the system was well conditioned).
///
/// Newton steps computed with a ridge are still ascent directions for the
/// GLM log-likelihood, so fitting remains correct — just slower.
pub fn solve_spd_with_ridge(a: &Matrix, b: &[f64]) -> Result<(Vec<f64>, f64), LinalgError> {
    match cholesky_solve(a, b) {
        Ok(x) => return Ok((x, 0.0)),
        Err(LinalgError::DimensionMismatch) => return Err(LinalgError::DimensionMismatch),
        Err(_) => {}
    }
    // Scale the ridge to the matrix diagonal.
    let n = a.rows();
    let diag_max = (0..n).map(|i| a[(i, i)].abs()).fold(0.0f64, f64::max);
    let base = if diag_max > 0.0 { diag_max } else { 1.0 };
    let mut ridge = base * 1e-10;
    for _ in 0..40 {
        let mut m = a.clone();
        for i in 0..n {
            m[(i, i)] += ridge;
        }
        if let Ok(x) = cholesky_solve(&m, b) {
            return Ok((x, ridge));
        }
        ridge *= 10.0;
    }
    Err(LinalgError::NotPositiveDefinite { pivot: 0 })
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact values on purpose
mod tests {
    use super::*;

    fn close_vec(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn lu_solves_hand_system() {
        // 2x + y = 5; x + 3y = 10 → x = 1, y = 3.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = lu_solve(&a, &[5.0, 10.0]).unwrap();
        close_vec(&x, &[1.0, 3.0], 1e-12);
    }

    #[test]
    fn lu_requires_pivoting() {
        // Zero in the (0,0) position forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = lu_solve(&a, &[2.0, 3.0]).unwrap();
        close_vec(&x, &[3.0, 2.0], 1e-12);
    }

    #[test]
    fn lu_detects_singularity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            lu_solve(&a, &[1.0, 2.0]),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn invert_round_trip() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 2.0]]);
        let inv = invert(&a).unwrap();
        let prod = a.matmul(&inv);
        let id = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert!((prod[(i, j)] - id[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn invert_unused_space_matrix_a() {
        // The §7 matrix A (here 4x4): -1 on diagonal, +1 above.
        let n = 4;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = -1.0;
            for j in (i + 1)..n {
                a[(i, j)] = 1.0;
            }
        }
        let inv = invert(&a).unwrap();
        let prod = a.matmul(&inv);
        for i in 0..n {
            for j in 0..n {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cholesky_solves_spd() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let x = cholesky_solve(&a, &[8.0, 7.0]).unwrap();
        // Verify by substitution.
        let ax = a.matvec(&x);
        close_vec(&ax, &[8.0, 7.0], 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(matches!(
            cholesky_solve(&a, &[1.0, 1.0]),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn ridge_recovers_from_semidefinite() {
        // Rank-1 SPSD matrix: plain Cholesky fails, ridge succeeds.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let (x, ridge) = solve_spd_with_ridge(&a, &[2.0, 2.0]).unwrap();
        assert!(ridge > 0.0);
        // Solution of (A + λI)x = b approaches the minimum-norm solution
        // [1, 1]; only sanity-check the residual direction here.
        let ax = a.matvec(&x);
        assert!((ax[0] - 2.0).abs() < 1e-3, "ax = {ax:?}");
    }

    #[test]
    fn ridge_zero_when_well_conditioned() {
        let a = Matrix::from_rows(&[&[5.0, 0.0], &[0.0, 5.0]]);
        let (x, ridge) = solve_spd_with_ridge(&a, &[5.0, 10.0]).unwrap();
        assert_eq!(ridge, 0.0);
        close_vec(&x, &[1.0, 2.0], 1e-12);
    }

    #[test]
    fn lu_agrees_with_cholesky_on_spd() {
        let a = Matrix::from_rows(&[&[6.0, 2.0, 1.0], &[2.0, 5.0, 2.0], &[1.0, 2.0, 4.0]]);
        let b = [1.0, -2.0, 3.0];
        let x1 = lu_solve(&a, &b).unwrap();
        let x2 = cholesky_solve(&a, &b).unwrap();
        close_vec(&x1, &x2, 1e-10);
    }
}
