//! One-dimensional root finding and minimisation.
//!
//! The profile-likelihood interval (§3.3.3) inverts a monotone
//! likelihood-ratio function — bisection does that robustly; golden-section
//! is used for nuisance maximisations where derivatives are unavailable.

/// Result of a root search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Root {
    /// The abscissa of the root.
    pub x: f64,
    /// The function value at `x` (should be ~0).
    pub f: f64,
    /// Iterations used.
    pub iterations: usize,
}

/// Errors from the 1-D searches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimizeError {
    /// `f(lo)` and `f(hi)` have the same sign — no bracket.
    NoBracket,
    /// The bounds are invalid (`lo >= hi` or non-finite).
    InvalidBounds,
}

impl std::fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptimizeError::NoBracket => write!(f, "no sign change in bracket"),
            OptimizeError::InvalidBounds => write!(f, "invalid bounds"),
        }
    }
}

impl std::error::Error for OptimizeError {}

/// Finds a root of `f` in `[lo, hi]` by bisection.
///
/// Requires `f(lo)` and `f(hi)` to have opposite signs (a zero at either
/// endpoint is returned immediately). Converges to within
/// `tol * (1 + |x|)`.
///
/// # Errors
///
/// [`OptimizeError::NoBracket`] when no sign change exists;
/// [`OptimizeError::InvalidBounds`] when the bounds are malformed.
#[allow(clippy::neg_cmp_op_on_partial_ord)] // !(lo < hi) also rejects NaN
pub fn bisect<F: FnMut(f64) -> f64>(
    mut f: F,
    mut lo: f64,
    mut hi: f64,
    tol: f64,
) -> Result<Root, OptimizeError> {
    if !(lo < hi) || !lo.is_finite() || !hi.is_finite() {
        return Err(OptimizeError::InvalidBounds);
    }
    let mut flo = f(lo);
    let mut fhi = f(hi);
    if crate::approx::is_exact_zero(flo) {
        return Ok(Root {
            x: lo,
            f: 0.0,
            iterations: 0,
        });
    }
    if crate::approx::is_exact_zero(fhi) {
        return Ok(Root {
            x: hi,
            f: 0.0,
            iterations: 0,
        });
    }
    if flo.signum() == fhi.signum() {
        return Err(OptimizeError::NoBracket);
    }
    let mut iterations = 0;
    for _ in 0..200 {
        iterations += 1;
        let mid = 0.5 * (lo + hi);
        let fmid = f(mid);
        if crate::approx::is_exact_zero(fmid) || (hi - lo) < tol * (1.0 + mid.abs()) {
            return Ok(Root {
                x: mid,
                f: fmid,
                iterations,
            });
        }
        if fmid.signum() == flo.signum() {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
            fhi = fmid;
        }
        let _ = fhi;
    }
    let mid = 0.5 * (lo + hi);
    Ok(Root {
        x: mid,
        f: f(mid),
        iterations,
    })
}

/// Minimises a unimodal `f` on `[lo, hi]` by golden-section search.
/// Returns the abscissa of the minimum.
///
/// # Errors
///
/// [`OptimizeError::InvalidBounds`] when the bounds are malformed.
#[allow(clippy::neg_cmp_op_on_partial_ord)] // !(lo < hi) also rejects NaN
pub fn golden_min<F: FnMut(f64) -> f64>(
    mut f: F,
    mut lo: f64,
    mut hi: f64,
    tol: f64,
) -> Result<f64, OptimizeError> {
    if !(lo < hi) || !lo.is_finite() || !hi.is_finite() {
        return Err(OptimizeError::InvalidBounds);
    }
    const INV_PHI: f64 = 0.618_033_988_749_894_8;
    let mut x1 = hi - INV_PHI * (hi - lo);
    let mut x2 = lo + INV_PHI * (hi - lo);
    let mut f1 = f(x1);
    let mut f2 = f(x2);
    for _ in 0..300 {
        if (hi - lo) < tol * (1.0 + lo.abs() + hi.abs()) {
            break;
        }
        if f1 <= f2 {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - INV_PHI * (hi - lo);
            f1 = f(x1);
        } else {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + INV_PHI * (hi - lo);
            f2 = f(x2);
        }
    }
    Ok(0.5 * (lo + hi))
}

/// Expands `hi` geometrically from `start` until `f` changes sign relative
/// to `f(start)`, returning the bracketing endpoint. Used to find the outer
/// end of a profile-likelihood interval whose width is not known a priori.
///
/// Returns `None` if no sign change is found within `max_expansions`.
pub fn expand_until_sign_change<F: FnMut(f64) -> f64>(
    mut f: F,
    start: f64,
    initial_step: f64,
    max_expansions: usize,
) -> Option<f64> {
    let f0 = f(start);
    let mut step = initial_step;
    let mut x = start;
    for _ in 0..max_expansions {
        x += step;
        if !x.is_finite() {
            return None;
        }
        if f(x).signum() != f0.signum() {
            return Some(x);
        }
        step *= 2.0;
    }
    None
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact values on purpose
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_sqrt_two() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12).unwrap();
        assert!((r.x - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn bisect_root_at_endpoint() {
        let r = bisect(|x| x, 0.0, 1.0, 1e-12).unwrap();
        assert_eq!(r.x, 0.0);
    }

    #[test]
    fn bisect_no_bracket() {
        assert_eq!(
            bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12).unwrap_err(),
            OptimizeError::NoBracket
        );
    }

    #[test]
    fn bisect_invalid_bounds() {
        assert_eq!(
            bisect(|x| x, 1.0, 0.0, 1e-12).unwrap_err(),
            OptimizeError::InvalidBounds
        );
    }

    #[test]
    fn bisect_decreasing_function() {
        let r = bisect(|x| 5.0 - x, 0.0, 10.0, 1e-12).unwrap();
        assert!((r.x - 5.0).abs() < 1e-10);
    }

    #[test]
    fn golden_finds_parabola_minimum() {
        let x = golden_min(|x| (x - 3.0) * (x - 3.0) + 1.0, -10.0, 10.0, 1e-10).unwrap();
        assert!((x - 3.0).abs() < 1e-6);
    }

    #[test]
    fn golden_handles_boundary_minimum() {
        let x = golden_min(|x| x, 2.0, 5.0, 1e-10).unwrap();
        assert!((x - 2.0).abs() < 1e-5);
    }

    #[test]
    fn expand_finds_bracket() {
        // f(x) = 10 - x starting from 0: sign change past x = 10.
        let hi = expand_until_sign_change(|x| 10.0 - x, 0.0, 1.0, 64).unwrap();
        assert!(hi > 10.0);
    }

    #[test]
    fn expand_gives_up() {
        assert!(expand_until_sign_change(|_| 1.0, 0.0, 1.0, 8).is_none());
    }

    #[test]
    fn profile_likelihood_shape_inversion() {
        // A quadratic pseudo-log-likelihood ℓ(n) = -((n - 100)/10)² ;
        // the χ²₁(0.95)/2 = 1.92 drop is at n = 100 ± 10·√1.92.
        let ell = |n: f64| -((n - 100.0) / 10.0).powi(2);
        let drop = 3.841_458_820_694_124 / 2.0;
        let upper = bisect(|n| ell(n) + drop, 100.0, 200.0, 1e-10).unwrap();
        assert!((upper.x - (100.0 + 10.0 * drop.sqrt())).abs() < 1e-6);
    }
}
