//! Ordinary least-squares linear regression on a single predictor.
//!
//! The growth analysis (§6) fits linear trends to the quarterly time series
//! of used /24 subnets and addresses ("growth was roughly linear, with an
//! increase of 0.45 million /24 subnets and 170 million IPv4 addresses per
//! year"), and the supply projection (Table 6) extrapolates those lines to
//! run-out years.

/// A fitted simple linear model `y = intercept + slope · x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Intercept `a`.
    pub intercept: f64,
    /// Slope `b`.
    pub slope: f64,
    /// Coefficient of determination `R²` (0 when the response is constant).
    pub r_squared: f64,
    /// Number of points fitted.
    pub n: usize,
}

impl LinearFit {
    /// Predicts `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }

    /// Solves `predict(x) = y` for `x`; `None` when the slope is ~0.
    pub fn solve_for_x(&self, y: f64) -> Option<f64> {
        if self.slope.abs() < 1e-300 {
            None
        } else {
            Some((y - self.intercept) / self.slope)
        }
    }
}

/// Errors from regression fitting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegressionError {
    /// Fewer than two points, or mismatched input lengths.
    NotEnoughData,
    /// All predictor values identical — the slope is unidentifiable.
    DegeneratePredictor,
}

impl std::fmt::Display for RegressionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegressionError::NotEnoughData => write!(f, "need at least two points"),
            RegressionError::DegeneratePredictor => write!(f, "all x values identical"),
        }
    }
}

impl std::error::Error for RegressionError {}

/// Fits `y = a + b·x` by ordinary least squares.
///
/// # Errors
///
/// [`RegressionError::NotEnoughData`] for fewer than 2 points or length
/// mismatch; [`RegressionError::DegeneratePredictor`] when all `x` coincide.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Result<LinearFit, RegressionError> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return Err(RegressionError::NotEnoughData);
    }
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mean_x;
        let dy = y - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx < 1e-300 {
        return Err(RegressionError::DegeneratePredictor);
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r_squared = if syy < 1e-300 {
        0.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Ok(LinearFit {
        intercept,
        slope,
        r_squared,
        n: xs.len(),
    })
}

/// Simple centred moving-average smoother with window `2·half + 1`,
/// truncated at the series ends. The paper plots smoothed estimate lines
/// alongside the raw quarterly points (Figs 4–5).
pub fn moving_average(ys: &[f64], half: usize) -> Vec<f64> {
    let n = ys.len();
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half).min(n - 1);
            ys[lo..=hi].iter().sum::<f64>() / (hi - lo + 1) as f64
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact values on purpose
mod tests {
    use super::*;

    #[test]
    fn perfect_line_recovered() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 3.0, 5.0, 7.0];
        let f = linear_fit(&xs, &ys).unwrap();
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.intercept - 1.0).abs() < 1e-12);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
        assert!((f.predict(10.0) - 21.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_reasonable() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| {
                5.0 + 0.45 * x
                    + if (x as u64).is_multiple_of(2) {
                        0.1
                    } else {
                        -0.1
                    }
            })
            .collect();
        let f = linear_fit(&xs, &ys).unwrap();
        assert!((f.slope - 0.45).abs() < 0.01);
        assert!(f.r_squared > 0.99);
    }

    #[test]
    fn runout_year_solved() {
        // Supply model: used(t) grows linearly; run-out when used = capacity.
        let f = LinearFit {
            intercept: 720.0,
            slope: 170.0,
            r_squared: 1.0,
            n: 11,
        };
        // capacity 2_370 → (2370 - 720)/170 ≈ 9.7 years.
        let t = f.solve_for_x(2_370.0).unwrap();
        assert!((t - 9.705_882).abs() < 1e-3);
    }

    #[test]
    fn zero_slope_has_no_solution() {
        let f = LinearFit {
            intercept: 1.0,
            slope: 0.0,
            r_squared: 0.0,
            n: 2,
        };
        assert!(f.solve_for_x(5.0).is_none());
    }

    #[test]
    fn constant_response_r2_zero() {
        let f = linear_fit(&[0.0, 1.0, 2.0], &[4.0, 4.0, 4.0]).unwrap();
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.r_squared, 0.0);
    }

    #[test]
    fn errors() {
        assert_eq!(
            linear_fit(&[1.0], &[1.0]).unwrap_err(),
            RegressionError::NotEnoughData
        );
        assert_eq!(
            linear_fit(&[1.0, 2.0], &[1.0]).unwrap_err(),
            RegressionError::NotEnoughData
        );
        assert_eq!(
            linear_fit(&[2.0, 2.0], &[1.0, 5.0]).unwrap_err(),
            RegressionError::DegeneratePredictor
        );
    }

    #[test]
    fn moving_average_smooths() {
        let ys = [0.0, 10.0, 0.0, 10.0, 0.0];
        let sm = moving_average(&ys, 1);
        assert_eq!(sm.len(), 5);
        assert!((sm[2] - 20.0 / 3.0).abs() < 1e-12);
        // Ends use truncated windows.
        assert!((sm[0] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn moving_average_zero_window_is_identity() {
        let ys = [1.0, 2.0, 3.0];
        assert_eq!(moving_average(&ys, 0), ys.to_vec());
    }
}
