//! Deterministic random-number streams.
//!
//! Every stochastic component of the simulator (allocation generator, usage
//! model, each measurement source, the spoofer, probe loss …) gets its own
//! independent ChaCha8 stream derived from one master seed, so experiments
//! are exactly reproducible and adding a component never perturbs the
//! streams of the others.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Creates a deterministic RNG from a bare seed.
pub fn rng_from_seed(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Derives a sub-seed from a master seed and a component label using
/// FNV-1a over the label mixed with the seed (stable across platforms and
/// releases — no `Hash` trait involvement).
pub fn derive_seed(master: u64, label: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET ^ master.rotate_left(17);
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    // Final avalanche (splitmix64 finaliser).
    let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Convenience: an RNG for component `label` under `master`.
pub fn component_rng(master: u64, label: &str) -> ChaCha8Rng {
    rng_from_seed(derive_seed(master, label))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng_from_seed(42);
        let mut b = rng_from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn derive_is_deterministic_and_label_sensitive() {
        assert_eq!(derive_seed(1, "iping"), derive_seed(1, "iping"));
        assert_ne!(derive_seed(1, "iping"), derive_seed(1, "tping"));
        assert_ne!(derive_seed(1, "iping"), derive_seed(2, "iping"));
    }

    #[test]
    fn component_streams_diverge() {
        let mut a = component_rng(7, "alloc");
        let mut b = component_rng(7, "usage");
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derive_spreads_bits() {
        // Crude avalanche check: single-label-char change flips many bits.
        let a = derive_seed(0, "sourceA");
        let b = derive_seed(0, "sourceB");
        let flipped = (a ^ b).count_ones();
        assert!(flipped > 16, "only {flipped} bits flipped");
    }
}
