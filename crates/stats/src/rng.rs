//! Deterministic random-number streams.
//!
//! Every stochastic component of the simulator (allocation generator, usage
//! model, each measurement source, the spoofer, probe loss …) gets its own
//! independent ChaCha8 stream derived from one master seed, so experiments
//! are exactly reproducible and adding a component never perturbs the
//! streams of the others.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Creates a deterministic RNG from a bare seed.
pub fn rng_from_seed(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Derives a sub-seed from a master seed and a component label using
/// FNV-1a over the label mixed with the seed (stable across platforms and
/// releases — no `Hash` trait involvement).
pub fn derive_seed(master: u64, label: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET ^ master.rotate_left(17);
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    // Final avalanche (splitmix64 finaliser).
    let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Convenience: an RNG for component `label` under `master`.
pub fn component_rng(master: u64, label: &str) -> ChaCha8Rng {
    rng_from_seed(derive_seed(master, label))
}

/// Derives a sub-seed for item `index` of component `label` — the
/// per-replicate stream primitive of the reliability engine. Mixing the
/// index through a second [`derive_seed`] round (rather than string
/// formatting) keeps derivation allocation-free on the hot path and makes
/// stream identity a pure function of `(master, label, index)`, never of
/// scheduling or completion order.
pub fn derive_indexed_seed(master: u64, label: &str, index: u64) -> u64 {
    derive_seed(derive_seed(master, label) ^ index.rotate_left(32), "idx")
}

/// Convenience: an RNG for item `index` of component `label` under
/// `master`. Every bootstrap replicate gets its own independent stream,
/// so resampling is bit-identical at every thread count and invariant to
/// the order replicates complete in.
pub fn indexed_rng(master: u64, label: &str, index: u64) -> ChaCha8Rng {
    rng_from_seed(derive_indexed_seed(master, label, index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng_from_seed(42);
        let mut b = rng_from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn derive_is_deterministic_and_label_sensitive() {
        assert_eq!(derive_seed(1, "iping"), derive_seed(1, "iping"));
        assert_ne!(derive_seed(1, "iping"), derive_seed(1, "tping"));
        assert_ne!(derive_seed(1, "iping"), derive_seed(2, "iping"));
    }

    #[test]
    fn component_streams_diverge() {
        let mut a = component_rng(7, "alloc");
        let mut b = component_rng(7, "usage");
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn indexed_streams_are_deterministic_and_independent() {
        assert_eq!(
            derive_indexed_seed(9, "bootstrap", 3),
            derive_indexed_seed(9, "bootstrap", 3)
        );
        assert_ne!(
            derive_indexed_seed(9, "bootstrap", 3),
            derive_indexed_seed(9, "bootstrap", 4)
        );
        assert_ne!(
            derive_indexed_seed(9, "bootstrap", 3),
            derive_indexed_seed(9, "coverage", 3)
        );
        let mut a = indexed_rng(9, "bootstrap", 0);
        let mut b = indexed_rng(9, "bootstrap", 1);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn indexed_seed_differs_from_plain_label_seed() {
        // The indexed derivation must not collide with the unindexed
        // component stream of the same label.
        assert_ne!(derive_indexed_seed(7, "alloc", 0), derive_seed(7, "alloc"));
    }

    #[test]
    fn derive_spreads_bits() {
        // Crude avalanche check: single-label-char change flips many bits.
        let a = derive_seed(0, "sourceA");
        let b = derive_seed(0, "sourceB");
        let flipped = (a ^ b).count_ones();
        assert!(flipped > 16, "only {flipped} bits flipped");
    }
}
