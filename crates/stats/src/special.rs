//! Special functions: log-gamma, log-factorial, regularized incomplete gamma
//! and beta functions, and the error function.
//!
//! These are the numerical bedrock of every distribution in this crate. The
//! Rust ecosystem for statistics is thin, so we implement them from scratch
//! using the classic Lanczos / continued-fraction formulations (Numerical
//! Recipes style) with accuracy targets of ~1e-12 relative error over the
//! parameter ranges this library exercises (counts up to 2^32, shape
//! parameters up to ~1e8).

/// Lanczos coefficients for `g = 7`, `n = 9` (Godfrey's coefficients).
const LANCZOS_G: f64 = 7.0;
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation with reflection for `x < 0.5`. Relative
/// error is below 1e-13 for all positive arguments of practical interest.
///
/// # Panics
///
/// Panics if `x` is not finite or `x <= 0` and `x` is an exact non-positive
/// integer (poles of the gamma function).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x.is_finite(), "ln_gamma: argument must be finite, got {x}");
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx).
        let sin_pi_x = (std::f64::consts::PI * x).sin();
        assert!(
            !crate::approx::is_exact_zero(sin_pi_x),
            "ln_gamma: pole at non-positive integer {x}"
        );
        return std::f64::consts::PI.ln() - sin_pi_x.abs().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    // lint: allow(panic-path) LANCZOS is a non-empty const table; index 0 always exists
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Size of the cached factorial table. 256 covers every per-/24 count the
/// spoof filter ever evaluates, which is the hot path for `ln_factorial`.
const FACT_TABLE_LEN: usize = 256;

fn fact_table() -> &'static [f64; FACT_TABLE_LEN] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[f64; FACT_TABLE_LEN]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0.0f64; FACT_TABLE_LEN];
        let mut acc = 0.0f64;
        for (n, slot) in t.iter_mut().enumerate() {
            if n > 0 {
                acc += (n as f64).ln();
            }
            *slot = acc;
        }
        t
    })
}

/// `ln(n!)` with a small-n lookup table and `ln_gamma` fallback.
pub fn ln_factorial(n: u64) -> f64 {
    if (n as usize) < FACT_TABLE_LEN {
        // lint: allow(panic-path) index < FACT_TABLE_LEN checked on the line above
        fact_table()[n as usize]
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// `ln C(n, k)` — the natural log of the binomial coefficient.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Maximum iterations for the incomplete gamma/beta series and continued
/// fractions. Near `x ≈ a` both expansions need `O(√a)` terms, so this must
/// comfortably exceed `√a` for the largest shape below [`LARGE_SHAPE`].
const MAX_ITER: usize = 40_000;
/// Above this shape parameter the Wilson–Hilferty normal approximation is
/// used instead of the series/continued fraction. Its absolute error is
/// `O(1/a)` — below 1e-7 here — and it avoids `O(√a)` iteration counts for
/// the `a` up to 2^32 the truncated-Poisson cells can produce.
const LARGE_SHAPE: f64 = 1e7;
const EPS: f64 = 1e-15;
/// A number very close to the smallest normalised f64, used to avoid
/// divisions by zero in the Lentz continued-fraction algorithm.
const FPMIN: f64 = 1e-300;

/// Regularized lower incomplete gamma function `P(a, x) = γ(a,x) / Γ(a)`.
///
/// `P(a, x)` is the CDF of a Gamma(shape = a, rate = 1) variable at `x`;
/// `P(k+1, λ)` is the probability a Poisson(λ) variable exceeds `k`
/// (see [`crate::dist::poisson`]).
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn reg_gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "reg_gamma_p: shape must be positive, got {a}");
    assert!(x >= 0.0, "reg_gamma_p: x must be non-negative, got {x}");
    if crate::approx::is_exact_zero(x) {
        return 0.0;
    }
    if a > LARGE_SHAPE {
        return wilson_hilferty_p(a, x);
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_contfrac(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
pub fn reg_gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "reg_gamma_q: shape must be positive, got {a}");
    assert!(x >= 0.0, "reg_gamma_q: x must be non-negative, got {x}");
    if crate::approx::is_exact_zero(x) {
        return 1.0;
    }
    if a > LARGE_SHAPE {
        return 1.0 - wilson_hilferty_p(a, x);
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_contfrac(a, x)
    }
}

/// Wilson–Hilferty cube-root normal approximation to `P(a, x)`, used for
/// very large shape parameters where the exact expansions need `O(√a)`
/// iterations. `(X/a)^{1/3}` is approximately normal with mean
/// `1 − 1/(9a)` and variance `1/(9a)`.
fn wilson_hilferty_p(a: f64, x: f64) -> f64 {
    let t = (x / a).powf(1.0 / 3.0);
    let z = (t - (1.0 - 1.0 / (9.0 * a))) * (9.0 * a).sqrt();
    // Standard normal CDF via erf/erfc (tail-stable on both sides).
    if z >= 0.0 {
        1.0 - 0.5 * erfc(z / std::f64::consts::SQRT_2)
    } else {
        0.5 * erfc(-z / std::f64::consts::SQRT_2)
    }
}

/// Series expansion of P(a, x), accurate for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    let ln_pref = a * x.ln() - x - ln_gamma(a);
    (sum.ln() + ln_pref).exp()
}

/// Lentz continued fraction for Q(a, x), accurate for `x >= a + 1`.
fn gamma_q_contfrac(a: f64, x: f64) -> f64 {
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    let ln_pref = a * x.ln() - x - ln_gamma(a);
    (h.ln() + ln_pref).exp()
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// `I_x(a, b)` is the CDF of a Beta(a, b) variable; the binomial CDF is
/// expressed through it (see [`crate::dist::binomial`]).
///
/// # Panics
///
/// Panics if `a <= 0`, `b <= 0`, or `x` is outside `[0, 1]`.
pub fn reg_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "reg_beta: shapes must be positive");
    assert!(
        (0.0..=1.0).contains(&x),
        "reg_beta: x must be in [0,1], got {x}"
    );
    if crate::approx::is_exact_zero(x) {
        return 0.0;
    }
    if crate::approx::bits_eq(x, 1.0) {
        return 1.0;
    }
    let ln_pref = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    // Use the continued fraction directly when it converges fast, else the
    // symmetry relation I_x(a,b) = 1 - I_{1-x}(b,a).
    if x < (a + 1.0) / (a + b + 2.0) {
        ln_pref.exp() * beta_contfrac(a, b, x) / a
    } else {
        1.0 - ln_pref.exp() * beta_contfrac(b, a, 1.0 - x) / b
    }
}

/// Lentz continued fraction for the incomplete beta function.
fn beta_contfrac(a: f64, b: f64, x: f64) -> f64 {
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Error function `erf(x)`, via the incomplete gamma function.
pub fn erf(x: f64) -> f64 {
    if crate::approx::is_exact_zero(x) {
        0.0
    } else if x > 0.0 {
        reg_gamma_p(0.5, x * x)
    } else {
        -reg_gamma_p(0.5, x * x)
    }
}

/// Complementary error function `erfc(x) = 1 - erf(x)`, computed without
/// cancellation for large positive `x`.
pub fn erfc(x: f64) -> f64 {
    if x >= 0.0 {
        reg_gamma_q(0.5, x * x)
    } else {
        1.0 + reg_gamma_p(0.5, x * x)
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact values on purpose
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * (1.0 + b.abs()),
            "expected {b}, got {a} (tol {tol})"
        );
    }

    #[test]
    fn ln_gamma_integer_values() {
        // Γ(n) = (n-1)!
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), (24.0f64).ln(), 1e-12);
        close(ln_gamma(11.0), (3_628_800.0f64).ln(), 1e-12);
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(π)
        close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-12);
        // Γ(3/2) = sqrt(π)/2
        close(
            ln_gamma(1.5),
            0.5 * std::f64::consts::PI.ln() - 2.0f64.ln(),
            1e-12,
        );
    }

    #[test]
    fn ln_gamma_reflection_region() {
        // Γ(0.3)Γ(0.7) = π / sin(0.3π)
        let lhs = ln_gamma(0.3) + ln_gamma(0.7);
        let rhs = (std::f64::consts::PI / (0.3 * std::f64::consts::PI).sin()).ln();
        close(lhs, rhs, 1e-12);
    }

    #[test]
    fn ln_gamma_large_argument_stirling() {
        // Stirling: ln Γ(x) ≈ (x-0.5)ln x - x + 0.5 ln(2π) + 1/(12x)
        let x: f64 = 1e6;
        let stirling =
            (x - 0.5) * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI).ln() + 1.0 / (12.0 * x);
        close(ln_gamma(x), stirling, 1e-12);
    }

    #[test]
    #[should_panic]
    fn ln_gamma_pole_panics() {
        ln_gamma(0.0);
    }

    #[test]
    fn factorial_table_matches_gamma() {
        for n in 0..FACT_TABLE_LEN as u64 {
            close(ln_factorial(n), ln_gamma(n as f64 + 1.0), 1e-11);
        }
        close(ln_factorial(1000), ln_gamma(1001.0), 1e-12);
    }

    #[test]
    fn choose_small_values() {
        close(ln_choose(5, 2), (10.0f64).ln(), 1e-12);
        close(ln_choose(10, 0), 0.0, 1e-12);
        close(ln_choose(10, 10), 0.0, 1e-12);
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
        // C(52, 5) = 2,598,960
        close(ln_choose(52, 5), (2_598_960.0f64).ln(), 1e-12);
    }

    #[test]
    fn gamma_p_known_values() {
        // P(1, x) = 1 - e^{-x} (exponential CDF).
        for &x in &[0.1, 0.5, 1.0, 2.0, 10.0] {
            close(reg_gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-12);
        }
        // P(a, 0) = 0, Q(a, 0) = 1.
        assert_eq!(reg_gamma_p(3.0, 0.0), 0.0);
        assert_eq!(reg_gamma_q(3.0, 0.0), 1.0);
    }

    #[test]
    fn gamma_p_q_complementary() {
        for &a in &[0.5, 1.0, 3.7, 20.0, 500.0] {
            for &x in &[0.01, 0.5, 1.0, 5.0, 19.0, 400.0, 600.0] {
                let p = reg_gamma_p(a, x);
                let q = reg_gamma_q(a, x);
                close(p + q, 1.0, 1e-12);
                assert!((0.0..=1.0).contains(&p), "P out of range: {p}");
            }
        }
    }

    #[test]
    fn gamma_p_poisson_relation() {
        // Poisson(λ) CDF at k equals Q(k+1, λ). Check against a direct sum.
        let lambda = 4.2f64;
        for k in 0..12u64 {
            let mut direct = 0.0;
            for j in 0..=k {
                direct += (-lambda + j as f64 * lambda.ln() - ln_factorial(j)).exp();
            }
            close(reg_gamma_q(k as f64 + 1.0, lambda), direct, 1e-12);
        }
    }

    #[test]
    fn gamma_large_shape() {
        // Central value: P(a, a) → 0.5 as a → ∞ (slightly above).
        let p = reg_gamma_p(1e8, 1e8);
        assert!((p - 0.5).abs() < 1e-3, "P(a,a) = {p}");
    }

    #[test]
    fn beta_known_values() {
        // I_x(1, 1) = x (uniform CDF).
        for &x in &[0.0, 0.25, 0.5, 0.99, 1.0] {
            close(reg_beta(1.0, 1.0, x), x, 1e-12);
        }
        // I_x(2, 1) = x^2.
        close(reg_beta(2.0, 1.0, 0.3), 0.09, 1e-12);
        // I_x(1, b) = 1 - (1-x)^b.
        close(reg_beta(1.0, 3.0, 0.2), 1.0 - 0.8f64.powi(3), 1e-12);
        // Symmetry: I_x(a, b) = 1 - I_{1-x}(b, a).
        let v = reg_beta(3.4, 7.1, 0.37);
        close(v, 1.0 - reg_beta(7.1, 3.4, 0.63), 1e-12);
    }

    #[test]
    fn beta_binomial_relation() {
        // Pr[Bin(n, p) >= k] = I_p(k, n - k + 1). Check against a direct sum.
        let (n, p) = (20u64, 0.3f64);
        for k in 1..=20u64 {
            let mut direct = 0.0;
            for j in k..=n {
                direct +=
                    (ln_choose(n, j) + j as f64 * p.ln() + (n - j) as f64 * (1.0 - p).ln()).exp();
            }
            close(reg_beta(k as f64, (n - k + 1) as f64, p), direct, 1e-11);
        }
    }

    #[test]
    fn erf_known_values() {
        close(erf(0.0), 0.0, 1e-15);
        close(erf(1.0), 0.842_700_792_949_714_9, 1e-10);
        close(erf(-1.0), -0.842_700_792_949_714_9, 1e-10);
        close(erfc(2.0), 0.004_677_734_981_063_127, 1e-9);
        // erf + erfc = 1 also for negative arguments.
        close(erf(-0.7) + erfc(-0.7), 1.0, 1e-12);
    }
}
