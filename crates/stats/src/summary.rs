//! Descriptive statistics: means, variances, error metrics and quantiles.
//!
//! The cross-validation of §5.1 reports Root Mean Square Error and Mean
//! Absolute Error averaged over sources and time windows (Table 3).

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance (divides by n); 0 for fewer than 2 elements.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Standard deviation (population).
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Root mean square error between predictions and truths.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn rmse(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "rmse: length mismatch");
    assert!(!pred.is_empty(), "rmse: empty input");
    let ss: f64 = pred.iter().zip(truth).map(|(p, t)| (p - t) * (p - t)).sum();
    (ss / pred.len() as f64).sqrt()
}

/// Mean absolute error between predictions and truths.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn mae(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "mae: length mismatch");
    assert!(!pred.is_empty(), "mae: empty input");
    pred.iter()
        .zip(truth)
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / pred.len() as f64
}

/// Linear-interpolated quantile `q ∈ [0, 1]` of the data.
///
/// # Panics
///
/// Panics if `xs` is empty or `q` outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile: empty input");
    assert!((0.0..=1.0).contains(&q), "quantile: q out of range");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("quantile: NaN in data")); // lint: allow(no-unwrap) loud NaN rejection is the contract
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (the 0.5 quantile).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// What went wrong in a fallible summary computation.
///
/// The panicking helpers above serve analysis code whose inputs are
/// constructed locally; the reliability engine aggregates thousands of
/// replicate outcomes where a single poisoned value must surface as a
/// structured error, not a worker panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SummaryError {
    /// The input slice was empty.
    Empty,
    /// The input contained a NaN or infinite value.
    NonFinite,
    /// The requested quantile/alpha was outside its valid range.
    InvalidLevel,
}

impl std::fmt::Display for SummaryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SummaryError::Empty => write!(f, "empty input"),
            SummaryError::NonFinite => write!(f, "non-finite value in input"),
            SummaryError::InvalidLevel => write!(f, "level outside its valid range"),
        }
    }
}

impl std::error::Error for SummaryError {}

/// Fallible linear-interpolated quantile: like [`quantile`] but returns a
/// structured error instead of panicking on empty input, a NaN/infinite
/// element, or `q` outside `[0, 1]`.
///
/// # Errors
///
/// [`SummaryError::Empty`], [`SummaryError::NonFinite`] or
/// [`SummaryError::InvalidLevel`].
pub fn try_quantile(xs: &[f64], q: f64) -> Result<f64, SummaryError> {
    if xs.is_empty() {
        return Err(SummaryError::Empty);
    }
    if xs.iter().any(|x| !x.is_finite()) {
        return Err(SummaryError::NonFinite);
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(SummaryError::InvalidLevel);
    }
    Ok(quantile(xs, q))
}

/// The percentile bootstrap interval `[q_{α/2}, q_{1−α/2}]` of a replicate
/// distribution.
///
/// # Errors
///
/// [`SummaryError::InvalidLevel`] unless `0 < α < 1`; propagates
/// [`try_quantile`] errors (empty or poisoned replicate sets).
pub fn percentile_interval(xs: &[f64], alpha: f64) -> Result<(f64, f64), SummaryError> {
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(SummaryError::InvalidLevel);
    }
    let lo = try_quantile(xs, alpha / 2.0)?;
    let hi = try_quantile(xs, 1.0 - alpha / 2.0)?;
    Ok((lo, hi))
}

/// The basic (reverse-percentile) bootstrap interval
/// `[2θ̂ − q_{1−α/2}, 2θ̂ − q_{α/2}]` around the point estimate `point`.
///
/// # Errors
///
/// [`SummaryError::NonFinite`] for a non-finite `point`; otherwise as
/// [`percentile_interval`].
pub fn basic_interval(point: f64, xs: &[f64], alpha: f64) -> Result<(f64, f64), SummaryError> {
    if !point.is_finite() {
        return Err(SummaryError::NonFinite);
    }
    let (lo, hi) = percentile_interval(xs, alpha)?;
    Ok((2.0 * point - hi, 2.0 * point - lo))
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact values on purpose
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert_eq!(std_dev(&xs), 2.0);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
    }

    #[test]
    fn rmse_and_mae() {
        let pred = [1.0, 2.0, 3.0];
        let truth = [1.0, 4.0, 1.0];
        assert!((mae(&pred, &truth) - 4.0 / 3.0).abs() < 1e-12);
        assert!((rmse(&pred, &truth) - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
        // RMSE >= MAE always.
        assert!(rmse(&pred, &truth) >= mae(&pred, &truth));
    }

    #[test]
    fn rmse_zero_on_perfect_prediction() {
        let v = [5.0, 6.0, 7.0];
        assert_eq!(rmse(&v, &v), 0.0);
        assert_eq!(mae(&v, &v), 0.0);
    }

    #[test]
    fn quantiles() {
        let xs = [3.0, 1.0, 2.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(median(&xs), 2.5);
        assert!((quantile(&xs, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn quantile_empty_panics() {
        quantile(&[], 0.5);
    }

    #[test]
    #[should_panic]
    fn rmse_mismatch_panics() {
        rmse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn try_quantile_matches_quantile_on_clean_input() {
        let xs = [3.0, 1.0, 2.0, 4.0];
        assert_eq!(try_quantile(&xs, 0.5), Ok(median(&xs)));
        assert_eq!(try_quantile(&[], 0.5), Err(SummaryError::Empty));
        assert_eq!(
            try_quantile(&[1.0, f64::NAN], 0.5),
            Err(SummaryError::NonFinite)
        );
        assert_eq!(
            try_quantile(&[1.0, f64::INFINITY], 0.5),
            Err(SummaryError::NonFinite)
        );
        assert_eq!(try_quantile(&xs, 1.5), Err(SummaryError::InvalidLevel));
    }

    #[test]
    fn percentile_interval_brackets_the_middle() {
        let xs: Vec<f64> = (0..101).map(f64::from).collect();
        let (lo, hi) = percentile_interval(&xs, 0.05).unwrap();
        assert!((lo - 2.5).abs() < 1e-9 && (hi - 97.5).abs() < 1e-9);
        assert!(lo <= hi);
        assert_eq!(
            percentile_interval(&xs, 0.0),
            Err(SummaryError::InvalidLevel)
        );
        assert_eq!(
            percentile_interval(&xs, 1.0),
            Err(SummaryError::InvalidLevel)
        );
        assert_eq!(percentile_interval(&[], 0.05), Err(SummaryError::Empty));
    }

    #[test]
    fn basic_interval_reflects_around_point() {
        let xs: Vec<f64> = (0..101).map(f64::from).collect();
        let point = 50.0;
        let (plo, phi) = percentile_interval(&xs, 0.1).unwrap();
        let (blo, bhi) = basic_interval(point, &xs, 0.1).unwrap();
        assert!((blo - (2.0 * point - phi)).abs() < 1e-12);
        assert!((bhi - (2.0 * point - plo)).abs() < 1e-12);
        assert_eq!(
            basic_interval(f64::NAN, &xs, 0.1),
            Err(SummaryError::NonFinite)
        );
    }
}
