//! Descriptive statistics: means, variances, error metrics and quantiles.
//!
//! The cross-validation of §5.1 reports Root Mean Square Error and Mean
//! Absolute Error averaged over sources and time windows (Table 3).

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance (divides by n); 0 for fewer than 2 elements.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Standard deviation (population).
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Root mean square error between predictions and truths.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn rmse(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "rmse: length mismatch");
    assert!(!pred.is_empty(), "rmse: empty input");
    let ss: f64 = pred.iter().zip(truth).map(|(p, t)| (p - t) * (p - t)).sum();
    (ss / pred.len() as f64).sqrt()
}

/// Mean absolute error between predictions and truths.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn mae(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "mae: length mismatch");
    assert!(!pred.is_empty(), "mae: empty input");
    pred.iter()
        .zip(truth)
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / pred.len() as f64
}

/// Linear-interpolated quantile `q ∈ [0, 1]` of the data.
///
/// # Panics
///
/// Panics if `xs` is empty or `q` outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile: empty input");
    assert!((0.0..=1.0).contains(&q), "quantile: q out of range");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("quantile: NaN in data")); // lint: allow(no-unwrap) loud NaN rejection is the contract
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (the 0.5 quantile).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert exact values on purpose
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert_eq!(std_dev(&xs), 2.0);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
    }

    #[test]
    fn rmse_and_mae() {
        let pred = [1.0, 2.0, 3.0];
        let truth = [1.0, 4.0, 1.0];
        assert!((mae(&pred, &truth) - 4.0 / 3.0).abs() < 1e-12);
        assert!((rmse(&pred, &truth) - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
        // RMSE >= MAE always.
        assert!(rmse(&pred, &truth) >= mae(&pred, &truth));
    }

    #[test]
    fn rmse_zero_on_perfect_prediction() {
        let v = [5.0, 6.0, 7.0];
        assert_eq!(rmse(&v, &v), 0.0);
        assert_eq!(mae(&v, &v), 0.0);
    }

    #[test]
    fn quantiles() {
        let xs = [3.0, 1.0, 2.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(median(&xs), 2.5);
        assert!((quantile(&xs, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn quantile_empty_panics() {
        quantile(&[], 0.5);
    }

    #[test]
    #[should_panic]
    fn rmse_mismatch_panics() {
        rmse(&[1.0], &[1.0, 2.0]);
    }
}
