//! Property-based tests for the statistics substrate: distribution
//! identities, special-function complements, and GLM invariants.

use ghosts_stats::glm::{fit, CountFamily, GlmOptions};
use ghosts_stats::special::{reg_beta, reg_gamma_p, reg_gamma_q};
use ghosts_stats::{Binomial, Matrix, Normal, Poisson, TruncatedPoisson};
use proptest::prelude::*;

proptest! {
    #[test]
    fn gamma_p_q_complement(a in 0.1f64..5_000.0, x in 0.0f64..10_000.0) {
        let p = reg_gamma_p(a, x);
        let q = reg_gamma_q(a, x);
        prop_assert!((p + q - 1.0).abs() < 1e-9, "P+Q = {}", p + q);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn gamma_p_monotone_in_x(a in 0.1f64..100.0, x in 0.0f64..200.0, dx in 0.01f64..10.0) {
        prop_assert!(reg_gamma_p(a, x + dx) >= reg_gamma_p(a, x) - 1e-12);
    }

    #[test]
    fn beta_symmetry(a in 0.1f64..50.0, b in 0.1f64..50.0, x in 0.0f64..=1.0) {
        let lhs = reg_beta(a, b, x);
        let rhs = 1.0 - reg_beta(b, a, 1.0 - x);
        prop_assert!((lhs - rhs).abs() < 1e-9, "{lhs} vs {rhs}");
    }

    #[test]
    fn poisson_cdf_increments_are_pmf(lambda in 0.01f64..500.0, k in 0u64..100) {
        let d = Poisson::new(lambda);
        let inc = d.cdf(k + 1) - d.cdf(k);
        prop_assert!((inc - d.pmf(k + 1)).abs() < 1e-9);
    }

    #[test]
    fn truncated_poisson_mean_bounds(lambda in 0.01f64..2_000.0, limit in 1u64..500) {
        let d = TruncatedPoisson::new(lambda, limit);
        let m = d.mean();
        // Mean within the support and below the untruncated mean.
        prop_assert!(m >= 0.0 && m <= limit as f64 + 1e-9);
        prop_assert!(m <= lambda + 1e-9);
        // Variance non-negative and no larger than untruncated.
        prop_assert!(d.variance() >= -1e-9);
        prop_assert!(d.variance() <= lambda + 1e-9);
    }

    #[test]
    fn truncated_poisson_normalises(lambda in 0.01f64..60.0, limit in 0u64..60) {
        let d = TruncatedPoisson::new(lambda, limit);
        let total: f64 = (0..=limit).map(|k| d.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-8, "sums to {total}");
    }

    #[test]
    fn binomial_threshold_is_minimal(n in 1u64..2_000, p in 0.0001f64..0.2) {
        let d = Binomial::new(n, p);
        let m = d.upper_tail_threshold(1e-8);
        prop_assert!(d.sf(m) < 1e-8);
        if m > 0 {
            prop_assert!(d.sf(m - 1) >= 1e-8);
        }
    }

    #[test]
    fn normal_quantile_roundtrip(mean in -100.0f64..100.0, sd in 0.01f64..50.0, p in 0.0001f64..0.9999) {
        let d = Normal::new(mean, sd);
        let x = d.quantile(p);
        prop_assert!((d.cdf(x) - p).abs() < 1e-7);
    }

    /// GLM invariant: every fitted cell mean and untruncated rate is
    /// finite and non-negative, for both Poisson and right-truncated
    /// Poisson families on the same random data.
    #[test]
    fn glm_fitted_means_finite_nonnegative(
        counts in proptest::collection::vec(0u64..2_000, 2..16),
        slack in 1u64..5_000,
        truncated in any::<bool>(),
    ) {
        let n = counts.len();
        let mut data = vec![0.0; n * 2];
        for i in 0..n {
            data[i * 2] = 1.0; // intercept
            data[i * 2 + 1] = (i % 4) as f64;
        }
        let design = Matrix::from_vec(n, 2, data);
        let y: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        prop_assume!(y.iter().sum::<f64>() > 0.0);
        let max_count = *counts.iter().max().unwrap();
        let family = if truncated {
            CountFamily::TruncatedPoisson(vec![max_count + slack; n])
        } else {
            CountFamily::Poisson
        };
        if let Ok(fit) = fit(&design, &y, &family, GlmOptions::default()) {
            for (i, (&m, &l)) in fit.fitted.iter().zip(&fit.lambda).enumerate() {
                prop_assert!(m.is_finite(), "cell {i}: fitted mean {m}");
                prop_assert!(m >= 0.0, "cell {i}: fitted mean {m} negative");
                prop_assert!(l.is_finite() && l >= 0.0, "cell {i}: rate {l}");
                if truncated {
                    // A truncated mean can never exceed its cell limit.
                    prop_assert!(m <= (max_count + slack) as f64 + 1e-9,
                        "cell {i}: truncated mean {m} above limit");
                }
            }
            prop_assert!(fit.log_likelihood.is_finite());
        }
    }

    /// With a generous limit the truncated family is numerically the
    /// plain Poisson family: same fitted means on the same data.
    #[test]
    fn truncated_glm_converges_to_poisson_at_large_limit(
        counts in proptest::collection::vec(1u64..200, 3..10),
    ) {
        let n = counts.len();
        let design = Matrix::from_vec(n, 1, vec![1.0; n]);
        let y: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        let plain = fit(&design, &y, &CountFamily::Poisson, GlmOptions::default());
        let trunc = fit(
            &design,
            &y,
            &CountFamily::TruncatedPoisson(vec![u64::MAX / 2; n]),
            GlmOptions::default(),
        );
        let (Ok(plain), Ok(trunc)) = (plain, trunc) else {
            return Err(TestCaseError::reject("fit failed"));
        };
        for (a, b) in plain.fitted.iter().zip(&trunc.fitted) {
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    /// Adversarial GLM inputs: exactly collinear columns (rank-deficient
    /// normal equations), wildly scaled covariates and huge counts. The
    /// contract under attack is all-or-nothing: `fit` must either return
    /// `Err` or a fit whose every coefficient, mean and rate is finite —
    /// never a "successful" result carrying NaN/∞ into model selection.
    #[test]
    fn glm_rejects_or_stays_finite_on_adversarial_input(
        counts in proptest::collection::vec(0u64..1_000_000, 3..12),
        scale in prop_oneof![Just(1e-30f64), Just(1e-8), Just(1.0), Just(1e8), Just(1e30)],
        collinear in any::<bool>(),
        truncated in any::<bool>(),
    ) {
        let n = counts.len();
        let mut data = vec![0.0; n * 3];
        for i in 0..n {
            data[i * 3] = 1.0; // intercept
            data[i * 3 + 1] = (i % 4) as f64 * scale;
            // Third column: either an exact copy of the second (singular
            // normal equations) or an independent alternating covariate.
            data[i * 3 + 2] = if collinear {
                data[i * 3 + 1]
            } else {
                f64::from(u8::from(i % 2 == 0))
            };
        }
        let design = Matrix::from_vec(n, 3, data);
        let y: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        let family = if truncated {
            let max_count = *counts.iter().max().unwrap();
            CountFamily::TruncatedPoisson(vec![max_count + 1; n])
        } else {
            CountFamily::Poisson
        };
        if let Ok(fit) = fit(&design, &y, &family, GlmOptions::default()) {
            for (i, &c) in fit.coef.iter().enumerate() {
                prop_assert!(c.is_finite(), "coef {i} = {c} not finite");
            }
            for (i, (&m, &l)) in fit.fitted.iter().zip(&fit.lambda).enumerate() {
                prop_assert!(m.is_finite() && m >= 0.0, "fitted[{i}] = {m}");
                prop_assert!(l.is_finite() && l >= 0.0, "lambda[{i}] = {l}");
            }
            prop_assert!(fit.log_likelihood.is_finite(), "loglik not finite");
        }
    }

    /// Non-finite inputs must be rejected up front, never fitted through.
    #[test]
    fn glm_rejects_non_finite_design_and_response(
        counts in proptest::collection::vec(0u64..100, 3..8),
        poison in prop_oneof![Just(f64::NAN), Just(f64::INFINITY), Just(f64::NEG_INFINITY)],
        in_design in any::<bool>(),
    ) {
        let n = counts.len();
        let mut data = vec![1.0; n * 2];
        for i in 0..n {
            data[i * 2 + 1] = i as f64;
        }
        let mut y: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        if in_design {
            data[n] = poison; // somewhere past the first row
        } else {
            y[n / 2] = poison;
        }
        let design = Matrix::from_vec(n, 2, data);
        prop_assert!(fit(&design, &y, &CountFamily::Poisson, GlmOptions::default()).is_err());
    }

    /// Poisson GLM invariant: with an intercept column, the fitted means
    /// sum to the observed total (score equation for the intercept).
    #[test]
    fn poisson_glm_means_match_total(counts in proptest::collection::vec(0u64..500, 2..12)) {
        let n = counts.len();
        let mut data = vec![0.0; n * 2];
        for i in 0..n {
            data[i * 2] = 1.0; // intercept
            data[i * 2 + 1] = (i % 3) as f64; // arbitrary covariate
        }
        let design = Matrix::from_vec(n, 2, data);
        let y: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        let total: f64 = y.iter().sum();
        prop_assume!(total > 0.0);
        let fit = fit(&design, &y, &CountFamily::Poisson, GlmOptions::default()).unwrap();
        let fitted_total: f64 = fit.fitted.iter().sum();
        prop_assert!((fitted_total - total).abs() < 1e-3 * (1.0 + total),
            "fitted {} vs observed {}", fitted_total, total);
    }
}

// ---------------------------------------------------------------------------
// Summary metrics and bootstrap intervals (reliability engine substrate).
// ---------------------------------------------------------------------------

use ghosts_stats::rng::rng_from_seed;
use ghosts_stats::summary::{
    basic_interval, mae, percentile_interval, rmse, try_quantile, SummaryError,
};
use rand::Rng;

/// Applies the Fisher–Yates permutation drawn from `seed` to `xs` (the
/// vendored `rand` has no `shuffle`, so the swaps are spelled out).
fn permuted(xs: &[f64], seed: u64) -> Vec<f64> {
    let mut rng = rng_from_seed(seed);
    let mut out = xs.to_vec();
    for i in (1..out.len()).rev() {
        let j = rng.gen_range(0..=i);
        out.swap(i, j);
    }
    out
}

/// Splits a flat draw into equal-length (pred, truth) halves; the vendored
/// proptest has no tuple strategies, so paired inputs come from one vector.
fn split_pairs(xs: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let n = xs.len() / 2;
    (xs[..n].to_vec(), xs[n..2 * n].to_vec())
}

proptest! {
    #[test]
    fn rmse_mae_invariant_under_paired_permutation(
        flat in proptest::collection::vec(-1e6f64..1e6, 2..64),
        seed in any::<u64>(),
    ) {
        let (pred, truth) = split_pairs(&flat);
        // The same seed applies the same swap sequence to both slices, so
        // the pairing is preserved while the order changes.
        let pp = permuted(&pred, seed);
        let pt = permuted(&truth, seed);
        prop_assert!((rmse(&pred, &truth) - rmse(&pp, &pt)).abs() < 1e-9);
        prop_assert!((mae(&pred, &truth) - mae(&pp, &pt)).abs() < 1e-9);
    }

    #[test]
    fn rmse_dominates_mae(flat in proptest::collection::vec(-1e6f64..1e6, 2..64)) {
        // Jensen: sqrt(mean(d^2)) >= mean(|d|).
        let (pred, truth) = split_pairs(&flat);
        prop_assert!(rmse(&pred, &truth) >= mae(&pred, &truth) - 1e-9);
    }

    #[test]
    fn errors_scale_linearly(
        flat in proptest::collection::vec(-1e3f64..1e3, 2..32),
        k in 0.0f64..100.0,
    ) {
        // Scaling every residual by k scales both metrics by k.
        let (pred, truth) = split_pairs(&flat);
        let scaled: Vec<f64> = pred
            .iter()
            .zip(&truth)
            .map(|(p, t)| t + k * (p - t))
            .collect();
        let tol = 1e-6 * (1.0 + k);
        prop_assert!((rmse(&scaled, &truth) - k * rmse(&pred, &truth)).abs() < tol);
        prop_assert!((mae(&scaled, &truth) - k * mae(&pred, &truth)).abs() < tol);
    }

    #[test]
    fn try_quantile_permutation_invariant_and_monotone(
        xs in proptest::collection::vec(-1e6f64..1e6, 1..48),
        q1 in 0.0f64..=1.0,
        q2 in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let shuffled = permuted(&xs, seed);
        let a = try_quantile(&xs, q1).unwrap();
        let b = try_quantile(&shuffled, q1).unwrap();
        prop_assert!((a - b).abs() < 1e-9, "order-dependent quantile: {a} vs {b}");
        // Monotone in the level.
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(try_quantile(&xs, lo).unwrap() <= try_quantile(&xs, hi).unwrap() + 1e-12);
    }

    #[test]
    fn quantile_nan_poisoning_is_an_error(
        xs in proptest::collection::vec(-1e6f64..1e6, 1..24),
        pick in any::<u64>(),
        q in 0.0f64..=1.0,
        inf in any::<bool>(),
    ) {
        let mut poisoned = xs.clone();
        let i = (pick as usize) % poisoned.len();
        poisoned[i] = if inf { f64::INFINITY } else { f64::NAN };
        prop_assert_eq!(try_quantile(&poisoned, q), Err(SummaryError::NonFinite));
        prop_assert_eq!(percentile_interval(&poisoned, 0.05), Err(SummaryError::NonFinite));
        prop_assert_eq!(basic_interval(0.0, &poisoned, 0.05), Err(SummaryError::NonFinite));
    }

    #[test]
    fn empty_input_is_an_error(q in 0.0f64..=1.0, alpha in 0.001f64..0.999) {
        prop_assert_eq!(try_quantile(&[], q), Err(SummaryError::Empty));
        prop_assert_eq!(percentile_interval(&[], alpha), Err(SummaryError::Empty));
        prop_assert_eq!(basic_interval(1.0, &[], alpha), Err(SummaryError::Empty));
    }

    #[test]
    fn percentile_interval_ordered_and_widens_as_alpha_shrinks(
        xs in proptest::collection::vec(-1e6f64..1e6, 2..48),
        a1 in 0.01f64..0.99,
        a2 in 0.01f64..0.99,
    ) {
        let (narrow_a, wide_a) = if a1 >= a2 { (a1, a2) } else { (a2, a1) };
        let (nlo, nhi) = percentile_interval(&xs, narrow_a).unwrap();
        let (wlo, whi) = percentile_interval(&xs, wide_a).unwrap();
        prop_assert!(nlo <= nhi + 1e-12);
        // Smaller alpha -> wider (nested) interval.
        prop_assert!(wlo <= nlo + 1e-9 && whi >= nhi - 1e-9,
            "[{wlo},{whi}] at α={wide_a} does not contain [{nlo},{nhi}] at α={narrow_a}");
    }

    #[test]
    fn basic_interval_mirrors_percentile(
        xs in proptest::collection::vec(-1e4f64..1e4, 2..48),
        point in -1e4f64..1e4,
        alpha in 0.01f64..0.99,
    ) {
        let (plo, phi) = percentile_interval(&xs, alpha).unwrap();
        let (blo, bhi) = basic_interval(point, &xs, alpha).unwrap();
        prop_assert!((blo - (2.0 * point - phi)).abs() < 1e-9);
        prop_assert!((bhi - (2.0 * point - plo)).abs() < 1e-9);
        prop_assert!(blo <= bhi + 1e-12);
        prop_assert_eq!(basic_interval(f64::NAN, &xs, alpha), Err(SummaryError::NonFinite));
        prop_assert_eq!(basic_interval(point, &xs, 0.0), Err(SummaryError::InvalidLevel));
    }
}
