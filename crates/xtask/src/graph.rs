//! Workspace-wide approximate call graph for ghost-lint.
//!
//! Built on top of the per-file item trees from [`crate::items`]. The
//! graph is deliberately an *over*-approximation: a call site resolves to
//! every function the name could plausibly mean (method calls match any
//! impl'd method of that name anywhere in the workspace; free calls match
//! same-crate functions plus whatever the file's `use` edges point at).
//! Rules that consume reachability therefore err on the side of flagging
//! — which is the correct polarity for panic-path analysis — and every
//! finding carries the call chain so a human can audit the edge.

use crate::items::{FileItems, FnItem};
use crate::lexer::{Token, TokenKind};
use crate::rules::{FileClass, Section};
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Index of a function node in the workspace graph.
pub type NodeId = usize;

/// One function node: which file it lives in and which of that file's
/// items it is.
#[derive(Debug, Clone, Copy)]
pub struct NodeRef {
    /// Index into the file list the graph was built from.
    pub file: usize,
    /// Index into that file's `FileItems::fns`.
    pub item: usize,
}

/// A call site extracted from a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Call {
    /// `recv.name(…)` — receiver type unknown.
    Method(String),
    /// `name(…)` with no path qualifier.
    Free(String),
    /// `a::b::name(…)` — path segments, outermost first, excluding the
    /// final name.
    Path(Vec<String>, String),
}

impl Call {
    /// The called function's bare name.
    pub fn name(&self) -> &str {
        match self {
            Call::Method(n) | Call::Free(n) => n,
            Call::Path(_, n) => n,
        }
    }
}

/// One file as the graph sees it: classification, tokens, items.
pub struct GraphFile<'a> {
    /// Workspace classification.
    pub class: &'a FileClass,
    /// Full token stream.
    pub tokens: &'a [Token],
    /// Parsed item tree.
    pub items: &'a FileItems,
}

/// The workspace call graph.
pub struct CallGraph {
    /// All function nodes, in (file, item) order — deterministic.
    pub nodes: Vec<NodeRef>,
    /// Forward edges: `edges[n]` = sorted, deduped callees of node `n`.
    pub edges: Vec<Vec<NodeId>>,
    /// Call sites per node (token index of the name, resolved or not) —
    /// kept for rules that care about unresolved calls too.
    pub calls: Vec<Vec<(usize, Call)>>,
    /// bare name -> node ids, for entrypoint lookup.
    name_index: BTreeMap<String, Vec<NodeId>>,
}

/// Keywords that look like idents to the lexer but can never be call
/// names or receivers.
const KEYWORDS: [&str; 28] = [
    "as", "break", "const", "continue", "crate", "else", "enum", "extern", "fn", "for", "if",
    "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref", "return", "static",
    "struct", "trait", "use", "where", "while",
];

/// True when `word` is a Rust keyword (so never a call name or receiver).
pub fn is_keyword(word: &str) -> bool {
    KEYWORDS.contains(&word)
}

/// Maps a path's first segment to a workspace crate name, given the
/// importing file's crate and its `use` edges. Returns `None` when the
/// segment points outside the workspace (std, vendor shims).
fn crate_of_segment(seg: &str, own_crate: &str, crates: &BTreeSet<String>) -> Option<String> {
    match seg {
        "crate" | "self" | "super" => Some(own_crate.to_string()),
        "std" | "core" | "alloc" => None,
        _ => {
            // `ghosts_stats` -> crate `stats`; plain `xtask` -> `xtask`.
            let stripped = seg.strip_prefix("ghosts_").unwrap_or(seg);
            let dashed = stripped.replace('_', "-");
            if crates.contains(stripped) {
                Some(stripped.to_string())
            } else if crates.contains(&dashed) {
                Some(dashed)
            } else {
                None
            }
        }
    }
}

impl CallGraph {
    /// Builds the graph over `files` (already parsed). File order must be
    /// deterministic (the caller sorts by path); node ids then are too.
    pub fn build(files: &[GraphFile<'_>]) -> CallGraph {
        let crate_names: BTreeSet<String> =
            files.iter().map(|f| f.class.crate_name.clone()).collect();

        let mut nodes = Vec::new();
        let mut name_index: BTreeMap<String, Vec<NodeId>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (ii, f) in file.items.fns.iter().enumerate() {
                let id = nodes.len();
                nodes.push(NodeRef { file: fi, item: ii });
                name_index.entry(f.name.clone()).or_default().push(id);
            }
        }

        let mut edges: Vec<Vec<NodeId>> = vec![Vec::new(); nodes.len()];
        let mut calls: Vec<Vec<(usize, Call)>> = vec![Vec::new(); nodes.len()];
        for (id, nref) in nodes.iter().enumerate() {
            let file = &files[nref.file];
            let item = &file.items.fns[nref.item];
            if item.body.is_empty() {
                continue;
            }
            let sites = extract_calls(file.tokens, item.body.clone());
            let mut out = BTreeSet::new();
            for (tok_idx, call) in &sites {
                // A call inside a *nested* fn belongs to the nested node.
                if file.items.enclosing_fn(*tok_idx).map(|f| f.line) != Some(item.line) {
                    continue;
                }
                for callee in resolve(
                    call,
                    file.class.crate_name.as_str(),
                    file,
                    &name_index,
                    files,
                    &crate_names,
                ) {
                    if callee != id {
                        out.insert(callee);
                    }
                }
            }
            calls[id] = sites
                .into_iter()
                .filter(|(tok_idx, _)| {
                    files[nref.file]
                        .items
                        .enclosing_fn(*tok_idx)
                        .map(|f| f.line)
                        == Some(item.line)
                })
                .collect();
            edges[id] = out.into_iter().collect();
        }

        CallGraph {
            nodes,
            edges,
            calls,
            name_index,
        }
    }

    /// Node ids whose function matches `(crate, fn name)` in a Src or Bin
    /// section file.
    pub fn entrypoints(&self, files: &[GraphFile<'_>], krate: &str, name: &str) -> Vec<NodeId> {
        self.name_index
            .get(name)
            .map(|ids| {
                ids.iter()
                    .copied()
                    .filter(|&id| {
                        let nref = self.nodes[id];
                        let class = files[nref.file].class;
                        class.crate_name == krate
                            && matches!(class.section, Section::Src | Section::Bin)
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// BFS from `roots`; returns, for each reachable node, its
    /// predecessor on a shortest path (roots map to themselves).
    pub fn reachable_from(&self, roots: &[NodeId]) -> BTreeMap<NodeId, NodeId> {
        let mut parent: BTreeMap<NodeId, NodeId> = BTreeMap::new();
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        let mut sorted_roots: Vec<NodeId> = roots.to_vec();
        sorted_roots.sort_unstable();
        for &r in &sorted_roots {
            if let Entry::Vacant(e) = parent.entry(r) {
                e.insert(r);
                queue.push_back(r);
            }
        }
        while let Some(n) = queue.pop_front() {
            for &m in &self.edges[n] {
                if let Entry::Vacant(e) = parent.entry(m) {
                    e.insert(n);
                    queue.push_back(m);
                }
            }
        }
        parent
    }

    /// Renders the shortest call chain from a root to `node` as
    /// `root -> … -> node`, using the parent map from
    /// [`Self::reachable_from`]. Long chains keep both ends.
    pub fn chain(
        &self,
        files: &[GraphFile<'_>],
        parents: &BTreeMap<NodeId, NodeId>,
        node: NodeId,
    ) -> String {
        let mut names = Vec::new();
        let mut cur = node;
        loop {
            names.push(self.qualified_name(files, cur));
            let Some(&p) = parents.get(&cur) else { break };
            if p == cur {
                break;
            }
            cur = p;
        }
        names.reverse();
        if names.len() > 6 {
            let tail = names.split_off(names.len() - 2);
            names.truncate(3);
            names.push("…".to_string());
            names.extend(tail);
        }
        names.join(" -> ")
    }

    /// `Type::name` or bare `name` for display.
    pub fn qualified_name(&self, files: &[GraphFile<'_>], id: NodeId) -> String {
        let nref = self.nodes[id];
        let f = &files[nref.file].items.fns[nref.item];
        match &f.impl_type {
            Some(ty) if !ty.is_empty() => format!("{ty}::{}", f.name),
            _ => f.name.clone(),
        }
    }

    /// The `FnItem` behind a node.
    pub fn item<'a>(&self, files: &'a [GraphFile<'a>], id: NodeId) -> &'a FnItem {
        let nref = self.nodes[id];
        &files[nref.file].items.fns[nref.item]
    }
}

/// Resolves one call to candidate node ids (sorted by construction of the
/// name index). Over-approximates; never panics on odd input.
fn resolve(
    call: &Call,
    own_crate: &str,
    file: &GraphFile<'_>,
    name_index: &BTreeMap<String, Vec<NodeId>>,
    files: &[GraphFile<'_>],
    crates: &BTreeSet<String>,
) -> Vec<NodeId> {
    let Some(candidates) = name_index.get(call.name()) else {
        return Vec::new();
    };
    match call {
        // Receiver type unknown: any impl'd method of this name, anywhere
        // — except in xtask itself. The analyzer is never a callee of the
        // estimation pipeline, and its method names (`load`, `check`, …)
        // collide with std atomics and collections constantly.
        Call::Method(_) => candidates
            .iter()
            .copied()
            .filter(|&id| {
                let nref = node_ref(candidates, files, id);
                nref.is_some_and(|(f, item)| {
                    f.items.fns[item].impl_type.is_some() && f.class.crate_name != "xtask"
                })
            })
            .collect(),
        // Unqualified: same crate, or an import whose leaf matches.
        Call::Free(name) => {
            let mut target_crates: BTreeSet<String> = BTreeSet::new();
            target_crates.insert(own_crate.to_string());
            for u in &file.items.uses {
                if u.leaf == *name {
                    if let Some(c) = u
                        .segments
                        .first()
                        .and_then(|s| crate_of_segment(s, own_crate, crates))
                    {
                        target_crates.insert(c);
                    }
                }
            }
            filter_by_crate(candidates, files, &target_crates)
        }
        Call::Path(segs, name) => {
            let Some(first) = segs.first() else {
                return Vec::new();
            };
            // `Type::method(…)`: prefer methods of exactly that type.
            if first.chars().next().is_some_and(char::is_uppercase) {
                let typed: Vec<NodeId> = candidates
                    .iter()
                    .copied()
                    .filter(|&id| {
                        node_ref(candidates, files, id).is_some_and(|(f, item)| {
                            f.items.fns[item].impl_type.as_deref() == Some(first.as_str())
                        })
                    })
                    .collect();
                if !typed.is_empty() {
                    return typed;
                }
            }
            // Module path: map the head segment to a crate — directly, or
            // through an import (`use ghosts_stats::glm; glm::fit(…)`).
            let mut target_crates: BTreeSet<String> = BTreeSet::new();
            if let Some(c) = crate_of_segment(first, own_crate, crates) {
                target_crates.insert(c);
            }
            for u in &file.items.uses {
                if u.leaf == *first {
                    if let Some(c) = u
                        .segments
                        .first()
                        .and_then(|s| crate_of_segment(s, own_crate, crates))
                    {
                        target_crates.insert(c);
                    }
                }
            }
            if target_crates.is_empty() {
                // Head is a local module (`helpers::go(…)`) — stay in-crate.
                target_crates.insert(own_crate.to_string());
            }
            let _ = name;
            filter_by_crate(candidates, files, &target_crates)
        }
    }
}

fn node_ref<'a>(
    _candidates: &[NodeId],
    files: &'a [GraphFile<'a>],
    id: NodeId,
) -> Option<(&'a GraphFile<'a>, usize)> {
    // Node ids are assigned file-major; recover (file, item) by scanning.
    // Kept simple: the graph passes its own `nodes` table instead in the
    // methods above; this helper is only used during resolution where the
    // same ordering invariant holds.
    let mut remaining = id;
    for f in files {
        let n = f.items.fns.len();
        if remaining < n {
            return Some((f, remaining));
        }
        remaining -= n;
    }
    None
}

fn filter_by_crate(
    candidates: &[NodeId],
    files: &[GraphFile<'_>],
    target: &BTreeSet<String>,
) -> Vec<NodeId> {
    candidates
        .iter()
        .copied()
        .filter(|&id| {
            node_ref(candidates, files, id)
                .is_some_and(|(f, _)| target.contains(&f.class.crate_name))
        })
        .collect()
}

/// Extracts call sites from a token range: `name(`, `recv.name(`,
/// `a::b::name(`, with turbofish (`name::<T>(`) tolerated. Macro
/// invocations are *not* calls (they're matched separately by rules that
/// care, e.g. panic-path's `panic!` detection).
pub fn extract_calls(tokens: &[Token], body: std::ops::Range<usize>) -> Vec<(usize, Call)> {
    let mut out = Vec::new();
    let mut i = body.start;
    while i < body.end.min(tokens.len()) {
        let Some(name) = tokens[i].ident() else {
            i += 1;
            continue;
        };
        if is_keyword(name) {
            i += 1;
            continue;
        }
        // `fn name(` is a declaration (possibly a nested fn), not a call.
        if i > 0 && tokens[i - 1].ident() == Some("fn") {
            i += 1;
            continue;
        }
        // Find the token after an optional turbofish: `name ::< … > (`.
        let mut j = i + 1;
        if tokens.get(j).is_some_and(|t| t.is_punct(':'))
            && tokens.get(j + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(j + 2).is_some_and(|t| t.is_punct('<'))
        {
            let mut depth = 0usize;
            let mut k = j + 2;
            while k < tokens.len() {
                match tokens[k].kind {
                    TokenKind::Punct('<') => depth += 1,
                    TokenKind::Punct('>') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            j = k + 1;
        }
        if !tokens.get(j).is_some_and(|t| t.is_punct('(')) {
            i += 1;
            continue;
        }
        // Classify by what precedes the name.
        let call = if i > 0 && tokens[i - 1].is_punct('.') {
            Call::Method(name.to_string())
        } else if i >= 2 && tokens[i - 1].is_punct(':') && tokens[i - 2].is_punct(':') {
            // Walk the path backwards: `seg :: seg :: name`.
            let mut segs: Vec<String> = Vec::new();
            let mut k = i;
            while k >= 2 && tokens[k - 1].is_punct(':') && tokens[k - 2].is_punct(':') {
                let Some(prev) = k.checked_sub(3).and_then(|p| tokens.get(p)) else {
                    break;
                };
                match prev.ident() {
                    Some(seg)
                        if !is_keyword(seg)
                            || seg == "crate"
                            || seg == "self"
                            || seg == "super" =>
                    {
                        segs.push(seg.to_string());
                        k -= 3;
                    }
                    _ => break,
                }
            }
            segs.reverse();
            if segs.is_empty() {
                Call::Free(name.to_string())
            } else {
                Call::Path(segs, name.to_string())
            }
        } else {
            Call::Free(name.to_string())
        };
        out.push((i, call));
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_items;
    use crate::lexer::tokenize;
    use crate::rules::{FileClass, Section};

    struct Owned {
        class: FileClass,
        tokens: Vec<Token>,
        items: FileItems,
    }

    fn file(krate: &str, rel: &str, src: &str) -> Owned {
        Owned {
            class: FileClass {
                crate_name: krate.to_string(),
                section: Section::Src,
                rel_path: rel.to_string(),
                is_crate_root: false,
            },
            tokens: tokenize(src),
            items: parse_items(&tokenize(src)),
        }
    }

    fn graph_files(owned: &[Owned]) -> Vec<GraphFile<'_>> {
        owned
            .iter()
            .map(|o| GraphFile {
                class: &o.class,
                tokens: &o.tokens,
                items: &o.items,
            })
            .collect()
    }

    #[test]
    fn extracts_free_method_and_path_calls() {
        let tokens = tokenize("fn f() { go(); x.run(); ghosts_stats::glm::fit(d); v.push(1); }");
        let calls: Vec<Call> = extract_calls(&tokens, 0..tokens.len())
            .into_iter()
            .map(|(_, c)| c)
            .collect();
        assert_eq!(
            calls,
            vec![
                Call::Free("go".into()),
                Call::Method("run".into()),
                Call::Path(vec!["ghosts_stats".into(), "glm".into()], "fit".into()),
                Call::Method("push".into()),
            ]
        );
    }

    #[test]
    fn turbofish_calls_are_still_calls() {
        let tokens = tokenize("fn f() { parse::<u64>(s); }");
        let calls: Vec<Call> = extract_calls(&tokens, 0..tokens.len())
            .into_iter()
            .map(|(_, c)| c)
            .collect();
        assert_eq!(calls, vec![Call::Free("parse".into())]);
    }

    #[test]
    fn cross_crate_edges_through_use() {
        let a = file(
            "core",
            "src/estimator.rs",
            "use ghosts_stats::glm::fit;\npub fn estimate() { fit(); }\n",
        );
        let b = file(
            "stats",
            "src/glm.rs",
            "pub fn fit() { helper(); }\nfn helper() {}\n",
        );
        let owned = vec![a, b];
        let files = graph_files(&owned);
        let g = CallGraph::build(&files);
        let roots = g.entrypoints(&files, "core", "estimate");
        assert_eq!(roots.len(), 1);
        let reach = g.reachable_from(&roots);
        let names: Vec<String> = reach
            .keys()
            .map(|&id| g.qualified_name(&files, id))
            .collect();
        assert!(names.contains(&"estimate".to_string()));
        assert!(names.contains(&"fit".to_string()));
        assert!(
            names.contains(&"helper".to_string()),
            "transitive edge missing: {names:?}"
        );
    }

    #[test]
    fn method_calls_over_approximate_across_impls() {
        let a = file(
            "serve",
            "src/server.rs",
            "pub fn route(b: &dyn Backend) { b.estimate(); }\n",
        );
        let b = file(
            "bench",
            "src/repro.rs",
            "struct ReproBackend;\nimpl ReproBackend { pub fn estimate(&self) {} }\n",
        );
        let owned = vec![a, b];
        let files = graph_files(&owned);
        let g = CallGraph::build(&files);
        let roots = g.entrypoints(&files, "serve", "route");
        let reach = g.reachable_from(&roots);
        let names: Vec<String> = reach
            .keys()
            .map(|&id| g.qualified_name(&files, id))
            .collect();
        assert!(
            names.contains(&"ReproBackend::estimate".to_string()),
            "{names:?}"
        );
    }

    #[test]
    fn free_calls_do_not_leak_across_crates_without_imports() {
        let a = file(
            "core",
            "src/a.rs",
            "pub fn entry() { local(); }\nfn local() {}\n",
        );
        let b = file(
            "stats",
            "src/b.rs",
            "pub fn local() { forbidden(); }\nfn forbidden() {}\n",
        );
        let owned = vec![a, b];
        let files = graph_files(&owned);
        let g = CallGraph::build(&files);
        let roots = g.entrypoints(&files, "core", "entry");
        let reach = g.reachable_from(&roots);
        // Only core::local is reachable, not stats::local / stats::forbidden.
        assert_eq!(reach.len(), 2, "expected entry + core::local only");
    }

    #[test]
    fn chains_render_root_to_leaf() {
        let a = file(
            "core",
            "src/a.rs",
            "pub fn entry() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\n",
        );
        let owned = vec![a];
        let files = graph_files(&owned);
        let g = CallGraph::build(&files);
        let roots = g.entrypoints(&files, "core", "entry");
        let reach = g.reachable_from(&roots);
        let leaf = (0..g.nodes.len())
            .find(|&id| g.qualified_name(&files, id) == "leaf")
            .expect("leaf node");
        assert_eq!(g.chain(&files, &reach, leaf), "entry -> mid -> leaf");
    }
}
