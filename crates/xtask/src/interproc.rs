//! Interprocedural ghost-lint rules, built on the item graph
//! ([`crate::items`]) and approximate call graph ([`crate::graph`]).
//!
//! Four rule families live here (DESIGN.md §14):
//!
//! - **panic-path** — no `unwrap`/`expect`, `panic!`-family macro, or
//!   unguarded indexing in any function reachable from the public
//!   estimation entry points or the serve router, unless justified at the
//!   source site. Findings carry the shortest call chain from the
//!   entrypoint so the edge can be audited.
//! - **lock-discipline** — no second lock acquisition while a guard is
//!   live without a declared order, and no guard live across a
//!   `par_map`/`try_par_map` fan-out or (in the serve crate) a socket
//!   I/O call. Functions whose return type names a `MutexGuard` count as
//!   acquisitions at their call sites, which is how the serve cache's
//!   `lock()` helpers participate.
//! - **counting-overflow** — unchecked `+`/`*`/`<<` where an operand is a
//!   declared `u32`/`u64` value (parameter, annotated `let`, suffixed
//!   literal, `as u32`/`as u64` cast, or a bare `.count_ones()`
//!   popcount, which is `u32` and overflows a `u32` accumulator after
//!   2^27 full words) in the core/stats/pipeline/addrplane library
//!   code. Widening first via `u64::from(x.count_ones())` is the
//!   sanctioned idiom and is not flagged. The static complement of the
//!   runtime `totals ≤ 2^32` validator.
//! - **event-exhaustiveness** — every literal event name passed to a
//!   `Scope` emission method must be registered in
//!   `ghosts_obs::schema::EVENT_NAMES` under the same kind, and every
//!   registry entry must be emitted somewhere.
//!
//! All approximations here are deliberately *over*-approximations
//! (reachability and guard liveness may include paths a human can rule
//! out): the escape hatch is the same `// lint: allow(<rule>) <reason>`
//! comment as everywhere else, placed at the flagged line.

use crate::graph::{is_keyword, CallGraph, GraphFile, NodeId};
use crate::items::FnItem;
use crate::lexer::{Token, TokenKind};
use crate::rules::{
    Allows, FileClass, Section, Violation, RULE_COUNTING_OVERFLOW, RULE_EVENT_EXHAUSTIVENESS,
    RULE_LOCK_DISCIPLINE, RULE_PANIC_PATH, RULE_UNWRAP,
};
use std::collections::{BTreeMap, BTreeSet};

/// The public entry points whose call trees must be panic-free:
/// everything a paper table or a serve request flows through.
pub const PANIC_ENTRYPOINTS: &[(&str, &str)] = &[
    ("core", "estimate_table"),
    ("core", "estimate_table_with_range"),
    ("core", "estimate_table_with_fit"),
    ("core", "estimate_stratified"),
    ("core", "fit_llm"),
    ("core", "fit_llm_traced"),
    ("core", "fit_llm_opts"),
    ("core", "select_model"),
    ("serve", "route"),
];

/// Crates in scope for the counting-overflow rule: where the paper's
/// address counts live.
const COUNTING_CRATES: [&str; 4] = ["core", "stats", "pipeline", "addrplane"];

/// `Scope` emission methods and the trace-line kind each produces.
const EMIT_METHODS: [(&str, &str); 5] = [
    ("degradation", "degradation"),
    ("error", "error"),
    ("event", "event"),
    ("fault_injected", "fault_injected"),
    ("reliability", "reliability"),
];

/// Socket I/O methods a guard must not be live across (serve crate).
const SOCKET_METHODS: [&str; 6] = [
    "accept",
    "flush",
    "read_exact",
    "read_to_end",
    "read_until",
    "write_all",
];

/// One analyzed file as the interprocedural rules see it.
pub struct InterprocFile<'a> {
    /// Workspace classification.
    pub class: &'a FileClass,
    /// Full token stream.
    pub tokens: &'a [Token],
    /// Item tree.
    pub items: &'a crate::items::FileItems,
    /// Lines inside `#[cfg(test)]` items.
    pub test_lines: &'a BTreeSet<usize>,
    /// Justification comments (usage-tracked).
    pub allows: &'a Allows,
}

/// Runs all interprocedural rules over the workspace.
pub fn lint_interproc(files: &[InterprocFile<'_>]) -> Vec<Violation> {
    // Vendor shims and unclassified files (fixtures) stay out of the
    // graph: their panics are stand-ins, not ours.
    let in_graph: Vec<usize> = (0..files.len())
        .filter(|&i| {
            let c = files[i].class;
            !c.crate_name.starts_with("vendor/") && !matches!(c.section, Section::Other)
        })
        .collect();
    let graph_files: Vec<GraphFile<'_>> = in_graph
        .iter()
        .map(|&i| GraphFile {
            class: files[i].class,
            tokens: files[i].tokens,
            items: files[i].items,
        })
        .collect();
    let graph = CallGraph::build(&graph_files);

    let mut out = Vec::new();
    rule_panic_path(files, &in_graph, &graph_files, &graph, &mut out);
    rule_lock_discipline(files, &in_graph, &graph_files, &mut out);
    rule_counting_overflow(files, &mut out);
    rule_event_exhaustiveness(files, &mut out);
    out
}

/// The file-index (into `files`) of a graph node.
fn node_file(in_graph: &[usize], graph: &CallGraph, node: NodeId) -> usize {
    in_graph[graph.nodes[node].file]
}

// ---------------------------------------------------------------------------
// panic-path
// ---------------------------------------------------------------------------

fn rule_panic_path(
    files: &[InterprocFile<'_>],
    in_graph: &[usize],
    graph_files: &[GraphFile<'_>],
    graph: &CallGraph,
    out: &mut Vec<Violation>,
) {
    let mut roots = Vec::new();
    for (krate, name) in PANIC_ENTRYPOINTS {
        roots.extend(graph.entrypoints(graph_files, krate, name));
    }
    let parents = graph.reachable_from(&roots);
    for &node in parents.keys() {
        let file = &files[node_file(in_graph, graph, node)];
        if !matches!(file.class.section, Section::Src | Section::Bin) {
            continue;
        }
        let item = graph.item(graph_files, node);
        if item.body.is_empty() || file.test_lines.contains(&item.line) {
            continue;
        }
        let chain = graph.chain(graph_files, &parents, node);
        scan_panic_sites(file, item, &chain, out);
    }
}

fn scan_panic_sites(
    file: &InterprocFile<'_>,
    item: &FnItem,
    chain: &str,
    out: &mut Vec<Violation>,
) {
    let tokens = file.tokens;
    // One finding per line: several indexing ops in one expression are
    // one fix for the reader.
    let mut seen_lines: BTreeSet<usize> = BTreeSet::new();
    let mut flag = |line: usize, what: &str, hint: &str| {
        if file.test_lines.contains(&line) || !seen_lines.insert(line) {
            return;
        }
        // Sites already justified for no-unwrap keep their justification:
        // the stated invariant covers the reachable path too.
        if file.allows.check(line, RULE_PANIC_PATH) || file.allows.check(line, RULE_UNWRAP) {
            return;
        }
        out.push(Violation {
            file: file.class.rel_path.clone(),
            line,
            rule: RULE_PANIC_PATH,
            message: format!(
                "{what} on a panic path (reachable via {chain}): {hint}, or state the \
                 invariant with `// lint: allow(panic-path) <why it cannot fail>`"
            ),
        });
    };
    let body = item.body.clone();
    let mut i = body.start;
    while i < body.end.min(tokens.len()) {
        let t = &tokens[i];
        match &t.kind {
            TokenKind::Ident(w) => {
                // `.unwrap()` / `.expect()` …
                if (w == "unwrap" || w == "expect")
                    && i > 0
                    && tokens[i - 1].is_punct('.')
                    && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
                {
                    flag(t.line, &format!("{w}()"), "propagate the error");
                }
                // …and the panicking macros.
                if matches!(
                    w.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) && tokens.get(i + 1).is_some_and(|t| t.is_punct('!'))
                {
                    flag(t.line, &format!("{w}!"), "return an error instead");
                }
            }
            TokenKind::Punct('[') if i > body.start => {
                let prev = &tokens[i - 1];
                let indexes = match &prev.kind {
                    TokenKind::Ident(w) => !is_keyword(w),
                    TokenKind::Punct(')') | TokenKind::Punct(']') => true,
                    _ => false,
                };
                if indexes {
                    // `xs[..]` is total; everything else can panic.
                    let close = match_brace_sq(tokens, i);
                    let inner = &tokens[i + 1..close.min(tokens.len())];
                    let is_full_range = inner.len() == 2 && inner.iter().all(|t| t.is_punct('.'));
                    if !is_full_range {
                        flag(
                            t.line,
                            "unguarded indexing",
                            "use .get()/.get_mut() and handle None",
                        );
                    }
                    i += 1;
                    continue;
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Matching `]` for the `[` at `open`.
fn match_brace_sq(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        match t.kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    tokens.len().saturating_sub(1)
}

// ---------------------------------------------------------------------------
// lock-discipline
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct LiveGuard {
    /// Binding name, when `let`-bound (for `drop(name)` release).
    name: Option<String>,
    /// Brace depth (within the fn body) the guard is scoped to; it dies
    /// when the depth drops below this.
    depth: usize,
    /// A statement temporary: dies at the next `;` at or below its depth.
    temp: bool,
    /// Line of the acquisition, for messages.
    line: usize,
}

fn rule_lock_discipline(
    files: &[InterprocFile<'_>],
    in_graph: &[usize],
    graph_files: &[GraphFile<'_>],
    out: &mut Vec<Violation>,
) {
    // Names of workspace functions that return a lock guard: calling one
    // is an acquisition (`self.lock()` helpers on the serve cache and
    // sharded ReproContext maps). `lock` itself is always an acquisition
    // — that's std's `Mutex::lock`.
    let mut guard_names: BTreeSet<&str> = BTreeSet::new();
    guard_names.insert("lock");
    for gf in graph_files {
        for f in &gf.items.fns {
            if f.returns_guard {
                guard_names.insert(f.name.as_str());
            }
        }
    }

    for (gi, gf) in graph_files.iter().enumerate() {
        let file = &files[in_graph[gi]];
        if !matches!(file.class.section, Section::Src | Section::Bin) {
            continue;
        }
        for item in &gf.items.fns {
            if item.body.is_empty() || file.test_lines.contains(&item.line) {
                continue;
            }
            scan_fn_locks(file, item, &guard_names, out);
        }
    }
}

fn scan_fn_locks(
    file: &InterprocFile<'_>,
    item: &FnItem,
    guard_names: &BTreeSet<&str>,
    out: &mut Vec<Violation>,
) {
    let tokens = file.tokens;
    let body = item.body.clone();
    let mut guards: Vec<LiveGuard> = Vec::new();
    let mut depth = 0usize;
    let mut i = body.start;
    while i < body.end.min(tokens.len()) {
        let t = &tokens[i];
        match &t.kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
            }
            TokenKind::Punct(';') => {
                guards.retain(|g| !(g.temp && g.depth >= depth));
            }
            TokenKind::Ident(w) => {
                let next_is_call = tokens.get(i + 1).is_some_and(|t| t.is_punct('('));
                let after_dot = i > 0 && tokens[i - 1].is_punct('.');
                // Release: drop(name).
                if w == "drop" && next_is_call && !after_dot {
                    if let Some(arg) = tokens.get(i + 2).and_then(Token::ident) {
                        guards.retain(|g| g.name.as_deref() != Some(arg));
                    }
                    i += 1;
                    continue;
                }
                // Fan-out with a guard live.
                if matches!(w.as_str(), "par_map" | "try_par_map") && next_is_call {
                    if let Some(g) = guards.first() {
                        if !file.test_lines.contains(&t.line)
                            && !file.allows.check(t.line, RULE_LOCK_DISCIPLINE)
                        {
                            out.push(Violation {
                                file: file.class.rel_path.clone(),
                                line: t.line,
                                rule: RULE_LOCK_DISCIPLINE,
                                message: format!(
                                    "MutexGuard acquired at line {} is live across {w}: \
                                     release the guard before fanning out (workers \
                                     re-acquiring it deadlocks or serialises the pool)",
                                    g.line
                                ),
                            });
                        }
                    }
                }
                // Socket I/O with a guard live (serve only).
                if file.class.crate_name == "serve"
                    && after_dot
                    && next_is_call
                    && SOCKET_METHODS.contains(&w.as_str())
                {
                    if let Some(g) = guards.first() {
                        if !file.test_lines.contains(&t.line)
                            && !file.allows.check(t.line, RULE_LOCK_DISCIPLINE)
                        {
                            out.push(Violation {
                                file: file.class.rel_path.clone(),
                                line: t.line,
                                rule: RULE_LOCK_DISCIPLINE,
                                message: format!(
                                    "MutexGuard acquired at line {} is live across socket \
                                     I/O (.{w}()): a slow peer holds the lock for every \
                                     other request — buffer under the lock, write after \
                                     release",
                                    g.line
                                ),
                            });
                        }
                    }
                }
                // Acquisition: `.lock()` or any call to a guard-returning fn.
                let acquires = next_is_call
                    && (if after_dot {
                        w == "lock" || guard_names.contains(w.as_str())
                    } else {
                        guard_names.contains(w.as_str())
                    });
                if acquires {
                    if let Some(g) = guards.first() {
                        if !file.test_lines.contains(&t.line)
                            && !file.allows.check(t.line, RULE_LOCK_DISCIPLINE)
                        {
                            out.push(Violation {
                                file: file.class.rel_path.clone(),
                                line: t.line,
                                rule: RULE_LOCK_DISCIPLINE,
                                message: format!(
                                    "nested lock acquisition while the guard from line \
                                     {} is live: release it first, or declare the order \
                                     with `// lint: allow(lock-discipline) order: \
                                     <outer> then <inner>`",
                                    g.line
                                ),
                            });
                        }
                    }
                    guards.push(new_guard(tokens, body.start, i, depth, t.line));
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Builds the [`LiveGuard`] for an acquisition at token `i`: `let`-bound
/// guards live to the end of their block (the *body* block for `if let` /
/// `while let` condition bindings), unbound ones to the end of the
/// statement.
fn new_guard(
    tokens: &[Token],
    body_start: usize,
    i: usize,
    depth: usize,
    line: usize,
) -> LiveGuard {
    // Scan back to the statement start.
    let mut j = i;
    let mut stmt_start = body_start;
    while j > body_start {
        j -= 1;
        if matches!(
            tokens[j].kind,
            TokenKind::Punct(';') | TokenKind::Punct('{') | TokenKind::Punct('}')
        ) {
            stmt_start = j + 1;
            break;
        }
    }
    let stmt = &tokens[stmt_start..i];
    let let_pos = stmt.iter().position(|t| t.ident() == Some("let"));
    let Some(let_pos) = let_pos else {
        return LiveGuard {
            name: None,
            depth,
            temp: true,
            line,
        };
    };
    // `if let` / `while let`: the binding lives in the soon-to-open body
    // block, one level deeper.
    let cond = stmt[..let_pos]
        .iter()
        .any(|t| matches!(t.ident(), Some("if" | "while")));
    // Binding name: the last ident between `let` and `=` that isn't
    // `mut`/`ref` or a pattern constructor (`Ok`, `Some`).
    let eq = stmt[let_pos..]
        .iter()
        .position(|t| t.is_punct('='))
        .map(|p| let_pos + p)
        .unwrap_or(stmt.len());
    let name = stmt[let_pos + 1..eq]
        .iter()
        .filter_map(Token::ident)
        .rfind(|w| !matches!(*w, "mut" | "ref" | "Ok" | "Some" | "Err"))
        .map(str::to_string);
    LiveGuard {
        name,
        depth: depth + usize::from(cond),
        temp: false,
        line,
    }
}

// ---------------------------------------------------------------------------
// counting-overflow
// ---------------------------------------------------------------------------

fn rule_counting_overflow(files: &[InterprocFile<'_>], out: &mut Vec<Violation>) {
    for file in files {
        if !COUNTING_CRATES.contains(&file.class.crate_name.as_str())
            || !matches!(file.class.section, Section::Src)
        {
            continue;
        }
        for item in &file.items.fns {
            if item.body.is_empty() || file.test_lines.contains(&item.line) {
                continue;
            }
            scan_fn_arithmetic(file, item, out);
        }
    }
}

/// Declared `u32`/`u64` names in a function: parameters and annotated
/// `let`s whose type is exactly (a reference to) the scalar.
fn counting_idents(tokens: &[Token], item: &FnItem) -> BTreeMap<String, &'static str> {
    let mut out = BTreeMap::new();
    let mut record = |name: &str, ty_tokens: &[Token]| {
        let idents: Vec<&str> = ty_tokens
            .iter()
            .filter(|t| !t.is_punct('&') && !matches!(t.kind, TokenKind::Lifetime))
            .filter_map(Token::ident)
            .filter(|w| *w != "mut")
            .collect();
        match idents.as_slice() {
            ["u32"] => {
                out.insert(name.to_string(), "u32");
            }
            ["u64"] => {
                out.insert(name.to_string(), "u64");
            }
            _ => {}
        }
    };
    // Parameters: `name : <ty>` at paren depth 1 of the signature.
    let sig = &tokens[item.sig.clone()];
    let mut depth = 0usize;
    let mut k = 0usize;
    while k < sig.len() {
        match &sig[k].kind {
            TokenKind::Punct('(') => depth += 1,
            TokenKind::Punct(')') => depth = depth.saturating_sub(1),
            TokenKind::Ident(name)
                if depth == 1 && sig.get(k + 1).is_some_and(|t| t.is_punct(':')) =>
            {
                // Type runs to the next `,` or `)` at this depth.
                let mut end = k + 2;
                let mut d2 = 0usize;
                while end < sig.len() {
                    match sig[end].kind {
                        TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('<') => {
                            d2 += 1
                        }
                        TokenKind::Punct(']') | TokenKind::Punct('>') => d2 = d2.saturating_sub(1),
                        TokenKind::Punct(')') if d2 == 0 => break,
                        TokenKind::Punct(')') => d2 -= 1,
                        TokenKind::Punct(',') if d2 == 0 => break,
                        _ => {}
                    }
                    end += 1;
                }
                record(name, &sig[k + 2..end]);
                k = end;
                continue;
            }
            _ => {}
        }
        k += 1;
    }
    // Annotated lets in the body: `let [mut] name : <ty> =`.
    let body = &tokens[item.body.clone()];
    let mut k = 0usize;
    while k + 3 < body.len() {
        if body[k].ident() == Some("let") {
            let mut n = k + 1;
            if body.get(n).and_then(Token::ident) == Some("mut") {
                n += 1;
            }
            if let Some(name) = body.get(n).and_then(Token::ident) {
                if body.get(n + 1).is_some_and(|t| t.is_punct(':')) {
                    let mut end = n + 2;
                    while end < body.len() && !body[end].is_punct('=') && !body[end].is_punct(';') {
                        end += 1;
                    }
                    record(name, &body[n + 2..end]);
                    k = end;
                    continue;
                }
            }
        }
        k += 1;
    }
    out
}

/// Token-index spans of assert-family macro arguments inside a body —
/// arithmetic there is diagnostic, not counting.
fn assert_spans(tokens: &[Token], body: std::ops::Range<usize>) -> Vec<std::ops::Range<usize>> {
    let mut out = Vec::new();
    let mut i = body.start;
    while i + 2 < body.end.min(tokens.len()) {
        let is_assert = matches!(
            tokens[i].ident(),
            Some(
                "assert"
                    | "assert_eq"
                    | "assert_ne"
                    | "debug_assert"
                    | "debug_assert_eq"
                    | "debug_assert_ne"
            )
        );
        if is_assert && tokens[i + 1].is_punct('!') && tokens[i + 2].is_punct('(') {
            let mut depth = 0usize;
            let mut j = i + 2;
            while j < tokens.len() {
                match tokens[j].kind {
                    TokenKind::Punct('(') => depth += 1,
                    TokenKind::Punct(')') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            out.push(i..j + 1);
            i = j + 1;
            continue;
        }
        i += 1;
    }
    out
}

fn int_suffix(tok: &Token) -> Option<&'static str> {
    let text = tok.int_text()?;
    if text.ends_with("u64") {
        Some("u64")
    } else if text.ends_with("u32") {
        Some("u32")
    } else {
        None
    }
}

fn scan_fn_arithmetic(file: &InterprocFile<'_>, item: &FnItem, out: &mut Vec<Violation>) {
    let tokens = file.tokens;
    let typed = counting_idents(tokens, item);
    let asserts = assert_spans(tokens, item.body.clone());
    let in_assert = |idx: usize| asserts.iter().any(|r| r.contains(&idx));

    // Describes the counting operand at `idx` walking outward from an
    // operator, or None when the type is unknown.
    let operand = |idx: usize, forward: bool| -> Option<(String, &'static str)> {
        let t = tokens.get(idx)?;
        match &t.kind {
            TokenKind::Ident(w) => {
                // A cast decides the operand's type, whatever the ident
                // was declared as: `k as f64` is float arithmetic.
                if tokens.get(idx + 1).and_then(Token::ident) == Some("as") {
                    return match tokens.get(idx + 2).and_then(Token::ident) {
                        Some(ty @ ("u32" | "u64")) if forward => Some((
                            format!("{w} as {ty}"),
                            if ty == "u32" { "u32" } else { "u64" },
                        )),
                        _ => None,
                    };
                }
                // A bare popcount is `u32` whatever the receiver was:
                // `w.count_ones()` summed into a `u32` wraps after 2^27
                // full words. `u64::from(x.count_ones())` widens first
                // and is the sanctioned idiom, so it stays exempt (the
                // receiver here is `u64`, not an identifier pattern).
                if tokens.get(idx + 1).is_some_and(|t| t.is_punct('.'))
                    && tokens.get(idx + 2).and_then(Token::ident) == Some("count_ones")
                    && tokens.get(idx + 3).is_some_and(|t| t.is_punct('('))
                    && tokens.get(idx + 4).is_some_and(|t| t.is_punct(')'))
                {
                    if tokens.get(idx + 5).and_then(Token::ident) == Some("as") {
                        return match tokens.get(idx + 6).and_then(Token::ident) {
                            Some(ty @ ("u32" | "u64")) => Some((
                                format!("{w}.count_ones() as {ty}"),
                                if ty == "u32" { "u32" } else { "u64" },
                            )),
                            _ => None,
                        };
                    }
                    return Some((format!("{w}.count_ones()"), "u32"));
                }
                if let Some(ty) = typed.get(w.as_str()) {
                    // Not a field access `x.w` / call `w(...)`.
                    let prev_dot = idx > 0 && tokens[idx - 1].is_punct('.');
                    let next = tokens.get(idx + 1);
                    let is_call = next.is_some_and(|t| t.is_punct('('));
                    if !prev_dot && !is_call {
                        return Some((w.clone(), ty));
                    }
                }
                // Cast result on the left: `x as u64 + …`.
                if !forward
                    && (w == "u32" || w == "u64")
                    && idx > 0
                    && tokens[idx - 1].ident() == Some("as")
                {
                    return Some(("cast".to_string(), if w == "u32" { "u32" } else { "u64" }));
                }
                None
            }
            TokenKind::Int(_) => {
                int_suffix(t).map(|ty| (t.int_text().unwrap_or("literal").to_string(), ty))
            }
            // `….count_ones() + x`: the token left of the operator is the
            // popcount's closing paren. Inside `u64::from(…)` the paren
            // left of the operator is `from`'s, whose `(` is not preceded
            // by `count_ones`, so the widening idiom does not match.
            TokenKind::Punct(')') if !forward => {
                if idx >= 3
                    && tokens.get(idx - 1).is_some_and(|t| t.is_punct('('))
                    && tokens.get(idx - 2).and_then(Token::ident) == Some("count_ones")
                    && tokens.get(idx - 3).is_some_and(|t| t.is_punct('.'))
                {
                    Some(("count_ones()".to_string(), "u32"))
                } else {
                    None
                }
            }
            _ => None,
        }
    };

    let mut flag = |line: usize, op: &str, name: &str, ty: &str| {
        if file.test_lines.contains(&line) || file.allows.check(line, RULE_COUNTING_OVERFLOW) {
            return;
        }
        let safe = match op {
            "+" | "+=" => "checked_add/saturating_add",
            "*" | "*=" => "checked_mul/saturating_mul",
            _ => "checked_shl or a bounds guard",
        };
        out.push(Violation {
            file: file.class.rel_path.clone(),
            line,
            rule: RULE_COUNTING_OVERFLOW,
            message: format!(
                "unchecked `{op}` on {ty} counting value `{name}`: use {safe} (address \
                 totals are bounded by 2^32 — if this cannot overflow, justify with \
                 `// lint: allow(counting-overflow) <bound>`)"
            ),
        });
    };

    let body = item.body.clone();
    let binary_lhs = |idx: usize| -> bool {
        idx > body.start
            && match &tokens[idx - 1].kind {
                TokenKind::Ident(w) => !is_keyword(w),
                TokenKind::Int(_) | TokenKind::Float => true,
                TokenKind::Punct(')') | TokenKind::Punct(']') => true,
                _ => false,
            }
    };
    let mut i = body.start;
    while i < body.end.min(tokens.len()) {
        if in_assert(i) {
            i += 1;
            continue;
        }
        let t = &tokens[i];
        match t.kind {
            TokenKind::Punct(c @ ('+' | '*')) if binary_lhs(i) => {
                let compound = tokens.get(i + 1).is_some_and(|t| t.is_punct('='));
                let rhs_at = if compound { i + 2 } else { i + 1 };
                let found = operand(i - 1, false).or_else(|| operand(rhs_at, true));
                if let Some((name, ty)) = found {
                    let op = if compound {
                        format!("{c}=")
                    } else {
                        c.to_string()
                    };
                    flag(t.line, &op, &name, ty);
                }
                if compound {
                    i += 2;
                    continue;
                }
            }
            // `<<` (two adjacent `<`), optionally `<<=`.
            TokenKind::Punct('<')
                if tokens.get(i + 1).is_some_and(|t| t.is_punct('<')) && binary_lhs(i) =>
            {
                let compound = tokens.get(i + 2).is_some_and(|t| t.is_punct('='));
                let rhs_at = if compound { i + 3 } else { i + 2 };
                let found = operand(i - 1, false).or_else(|| operand(rhs_at, true));
                if let Some((name, ty)) = found {
                    let op = if compound { "<<=" } else { "<<" };
                    flag(t.line, op, &name, ty);
                }
                i += if compound { 3 } else { 2 };
                continue;
            }
            _ => {}
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// event-exhaustiveness
// ---------------------------------------------------------------------------

/// The registry location, for never-emitted findings.
const REGISTRY_FILE: &str = "crates/obs/src/schema.rs";

fn rule_event_exhaustiveness(files: &[InterprocFile<'_>], out: &mut Vec<Violation>) {
    let registry = ghosts_obs::schema::EVENT_NAMES;
    let mut emitted: BTreeSet<(String, String)> = BTreeSet::new();

    for file in files {
        if file.class.crate_name.starts_with("vendor/")
            || !matches!(file.class.section, Section::Src | Section::Bin)
        {
            continue;
        }
        let tokens = file.tokens;
        for i in 1..tokens.len() {
            if !tokens[i - 1].is_punct('.') {
                continue;
            }
            let Some(method) = tokens[i].ident() else {
                continue;
            };
            let Some((_, kind)) = EMIT_METHODS.iter().find(|(m, _)| *m == method) else {
                continue;
            };
            if !tokens.get(i + 1).is_some_and(|t| t.is_punct('(')) {
                continue;
            }
            let Some(name) = tokens.get(i + 2).and_then(Token::literal) else {
                // Name comes from a variable — out of static reach.
                continue;
            };
            let line = tokens[i].line;
            if file.test_lines.contains(&line) {
                continue;
            }
            emitted.insert((name.to_string(), kind.to_string()));
            if ghosts_obs::schema::is_registered_event(name, kind) {
                continue;
            }
            if file.allows.check(line, RULE_EVENT_EXHAUSTIVENESS) {
                continue;
            }
            let other_kind = registry.iter().find(|(n, _)| *n == name).map(|(_, k)| *k);
            let message = match other_kind {
                Some(other) => format!(
                    "event \"{name}\" is emitted as kind `{kind}` but registered as \
                     `{other}` in ghosts_obs::schema::EVENT_NAMES — align the emission \
                     method or add the ({name}, {kind}) entry"
                ),
                None => format!(
                    "event \"{name}\" (kind `{kind}`) is not in the ghosts-events \
                     registry — add it to ghosts_obs::schema::EVENT_NAMES so trace \
                     consumers can rely on the name"
                ),
            };
            out.push(Violation {
                file: file.class.rel_path.clone(),
                line,
                rule: RULE_EVENT_EXHAUSTIVENESS,
                message,
            });
        }
    }

    // Reverse direction: registered but never emitted = dead schema.
    // Only meaningful when the registry's own file is in the analyzed
    // set (i.e. real workspace runs, not fixture-only test runs).
    let Some(schema_file) = files.iter().find(|f| f.class.rel_path == REGISTRY_FILE) else {
        return;
    };
    let schema_file = Some(schema_file);
    for (name, kind) in registry {
        if emitted.contains(&((*name).to_string(), (*kind).to_string())) {
            continue;
        }
        let line = schema_file
            .and_then(|f| registry_entry_line(f.tokens, name, kind))
            .unwrap_or(1);
        if let Some(f) = schema_file {
            if f.allows.check(line, RULE_EVENT_EXHAUSTIVENESS) {
                continue;
            }
        }
        out.push(Violation {
            file: REGISTRY_FILE.to_string(),
            line,
            rule: RULE_EVENT_EXHAUSTIVENESS,
            message: format!(
                "registry entry (\"{name}\", \"{kind}\") is never emitted from library \
                 or binary code — remove it from EVENT_NAMES or wire up the emission"
            ),
        });
    }
}

/// Line of the `("name", "kind")` pair inside the `EVENT_NAMES` table.
fn registry_entry_line(tokens: &[Token], name: &str, kind: &str) -> Option<usize> {
    let start = tokens
        .iter()
        .position(|t| t.ident() == Some("EVENT_NAMES"))?;
    let end = tokens[start..]
        .iter()
        .position(|t| t.is_punct(';'))
        .map(|p| start + p)
        .unwrap_or(tokens.len());
    tokens[start..end].windows(4).find_map(|w| {
        (w[0].is_punct('(')
            && w[1].literal() == Some(name)
            && w[2].is_punct(',')
            && w[3].literal() == Some(kind))
        .then_some(w[1].line)
    })
}

// ---------------------------------------------------------------------------
// stale-allow
// ---------------------------------------------------------------------------

/// Reports allow comments whose usage flag never got set, plus allows
/// naming unknown rules. Must run after every other rule.
pub fn stale_allow_violations(class: &FileClass, allows: &Allows) -> Vec<Violation> {
    use crate::rules::{KNOWN_RULES, RULE_STALE_ALLOW};
    let mut out = Vec::new();
    for site in allows.sites() {
        if !KNOWN_RULES.contains(&site.rule.as_str()) {
            out.push(Violation {
                file: class.rel_path.clone(),
                line: site.line,
                rule: RULE_STALE_ALLOW,
                message: format!(
                    "`lint: allow({})` names an unknown rule — known rules: {}",
                    site.rule,
                    KNOWN_RULES.join(", ")
                ),
            });
        } else if !site.used.get() {
            out.push(Violation {
                file: class.rel_path.clone(),
                line: site.line,
                rule: RULE_STALE_ALLOW,
                message: format!(
                    "stale suppression: `lint: allow({})` no longer suppresses any \
                     finding — remove the comment (or fix the drifted line it was \
                     meant to cover)",
                    site.rule
                ),
            });
        }
    }
    out
}
