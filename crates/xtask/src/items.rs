//! The item-graph layer of ghost-lint: a lightweight, hand-rolled item
//! parser on top of [`crate::lexer`].
//!
//! The PR-2 linter saw one token at a time; the interprocedural rules
//! (panic paths, lock discipline, counting overflow — see
//! [`crate::interproc`]) need to know *which function* a token belongs
//! to, what that function's visibility and receiver type are, and what
//! other functions it calls. This module recovers exactly that much
//! structure — functions, `impl` blocks, `mod` nesting, `use` edges —
//! without attempting full Rust parsing: bodies stay as token ranges,
//! types as identifier runs. Anything ambiguous degrades to "unknown",
//! never to a panic.

use crate::lexer::{Token, TokenKind};
use std::ops::Range;

/// Item visibility, as far as the rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vis {
    /// `pub`
    Public,
    /// `pub(crate)`, `pub(super)`, `pub(in …)`
    Restricted,
    /// No `pub` at all.
    Private,
}

/// One `fn` item (free function, inherent/trait method, or nested fn).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// `mod` nesting inside the file (outermost first).
    pub module_path: Vec<String>,
    /// The `impl` target type, for methods (`impl Foo` and
    /// `impl Trait for Foo` both record `Foo`).
    pub impl_type: Option<String>,
    /// Visibility of the `fn` itself.
    pub vis: Vis,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token range of the signature: from `fn` up to (not including) the
    /// opening body brace or terminating `;`.
    pub sig: Range<usize>,
    /// Token range strictly inside the body braces (empty for bodiless
    /// trait declarations).
    pub body: Range<usize>,
    /// Whether the return type mentions a lock guard
    /// (`MutexGuard`/`RwLockReadGuard`/`RwLockWriteGuard`): calls to such
    /// functions count as lock acquisitions for the lock-discipline rule.
    pub returns_guard: bool,
}

/// One name brought into scope by a `use` declaration.
#[derive(Debug, Clone)]
pub struct UseImport {
    /// The local name (the path leaf, or the alias after `as`).
    pub leaf: String,
    /// Full path segments, outermost first (`["ghosts_stats", "glm",
    /// "fit"]`).
    pub segments: Vec<String>,
}

/// Everything the item parser extracts from one file.
#[derive(Debug, Clone, Default)]
pub struct FileItems {
    /// Every `fn` in the file, in source order.
    pub fns: Vec<FnItem>,
    /// Every `use` leaf in the file.
    pub uses: Vec<UseImport>,
}

impl FileItems {
    /// The function containing token index `idx`, if any (innermost wins
    /// for nested fns).
    pub fn enclosing_fn(&self, idx: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.body.contains(&idx))
            .min_by_key(|f| f.body.len())
    }
}

/// Keywords that can qualify a `fn` between the visibility and the
/// keyword itself.
const FN_QUALIFIERS: [&str; 4] = ["const", "async", "unsafe", "extern"];

/// Returns the index of the `}` matching the `{` at `open` (or the last
/// token if unbalanced — the compiler rejects such files; the linter must
/// only not loop).
pub fn match_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        match t.kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    tokens.len().saturating_sub(1)
}

/// Parses the item structure of one tokenized file.
pub fn parse_items(tokens: &[Token]) -> FileItems {
    let mut out = FileItems::default();
    // Open frames: (closing-brace token index, frame kind).
    enum Frame {
        Mod(String),
        Impl(String),
    }
    let mut frames: Vec<(usize, Frame)> = Vec::new();

    let mut i = 0usize;
    while i < tokens.len() {
        // Pop any frames whose closing brace we've reached.
        while frames.last().is_some_and(|(end, _)| i > *end) {
            frames.pop();
        }
        let t = &tokens[i];
        let Some(word) = t.ident() else {
            // An unmatched opening brace that no item claimed (e.g. a
            // bare block) — record it as an anonymous frame so `mod`
            // detection below stays aligned. We only push frames for
            // item braces, so plain expression braces are skipped here.
            i += 1;
            continue;
        };
        match word {
            "use" => {
                let (imports, next) = parse_use(tokens, i);
                out.uses.extend(imports);
                i = next;
            }
            "mod" => {
                // `mod name {` opens a module frame; `mod name;` is an
                // out-of-line module (no frame).
                let name = tokens.get(i + 1).and_then(Token::ident);
                if let (Some(name), Some(open)) = (name, find_punct(tokens, i + 2, '{', ';')) {
                    let end = match_brace(tokens, open);
                    frames.push((end, Frame::Mod(name.to_string())));
                    i = open + 1;
                } else {
                    i += 2;
                }
            }
            "impl" => {
                // Scan to the body `{`, honouring a possible `where`
                // clause, and name the implementing type (after `for` if
                // present, else the first type path).
                if let Some(open) = find_punct(tokens, i + 1, '{', ';') {
                    let ty = impl_target(&tokens[i + 1..open]);
                    let end = match_brace(tokens, open);
                    frames.push((end, Frame::Impl(ty)));
                    i = open + 1;
                } else {
                    i += 1;
                }
            }
            "fn" => {
                let Some(name) = tokens.get(i + 1).and_then(Token::ident) else {
                    // `fn(u32) -> u32` pointer type, not an item.
                    i += 1;
                    continue;
                };
                let vis = visibility_before(tokens, i);
                let module_path: Vec<String> = frames
                    .iter()
                    .filter_map(|(_, f)| match f {
                        Frame::Mod(m) => Some(m.clone()),
                        _ => None,
                    })
                    .collect();
                let impl_type = frames.iter().rev().find_map(|(_, f)| match f {
                    Frame::Impl(ty) => Some(ty.clone()),
                    _ => None,
                });
                let (sig_end, body, returns_guard) = fn_signature(tokens, i);
                out.fns.push(FnItem {
                    name: name.to_string(),
                    module_path,
                    impl_type,
                    vis,
                    line: t.line,
                    sig: i..sig_end,
                    body: body.clone(),
                    returns_guard,
                });
                // Continue scanning *inside* the body (nested fns, uses).
                i = sig_end + 1;
            }
            _ => i += 1,
        }
    }
    out
}

/// Finds the next `want` punct at or after `from`, stopping early (with
/// `None`) if `stop` shows up first at nesting depth 0.
fn find_punct(tokens: &[Token], from: usize, want: char, stop: char) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(from) {
        match t.kind {
            TokenKind::Punct(c) if c == want && depth == 0 => return Some(i),
            TokenKind::Punct(c) if c == stop && depth == 0 => return None,
            TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') => depth = depth.saturating_sub(1),
            _ => {}
        }
    }
    None
}

/// The implementing type of an `impl` header (tokens between `impl` and
/// the body `{`): the last path segment before `where`/`{`, taken from
/// after `for` when the header is `impl Trait for Type`.
fn impl_target(header: &[Token]) -> String {
    let after_for = header
        .iter()
        .position(|t| t.ident() == Some("for"))
        .map(|p| &header[p + 1..])
        .unwrap_or(header);
    // First identifier run after stripping leading `&`/generics — the
    // type name is the first path segment's final ident before `<`.
    let mut last_path_ident = String::new();
    let mut angle_depth = 0usize;
    for t in after_for {
        match &t.kind {
            TokenKind::Punct('<') => angle_depth += 1,
            TokenKind::Punct('>') => angle_depth = angle_depth.saturating_sub(1),
            TokenKind::Ident(s) if angle_depth == 0 => {
                if s == "where" {
                    break;
                }
                last_path_ident = s.clone();
            }
            _ => {}
        }
    }
    last_path_ident
}

/// The visibility tokens directly before the `fn` at `at` (skipping
/// qualifier keywords like `const unsafe`).
fn visibility_before(tokens: &[Token], at: usize) -> Vis {
    let mut i = at;
    while i > 0 {
        let prev = &tokens[i - 1];
        match prev.ident() {
            Some(q) if FN_QUALIFIERS.contains(&q) => i -= 1,
            Some("pub") => return Vis::Public,
            _ => match &prev.kind {
                // `pub(crate) fn` / `pub(in path) fn`: skip the balanced
                // parens backwards, then expect `pub`.
                TokenKind::Punct(')') => {
                    let mut depth = 1usize;
                    let mut j = i - 1;
                    while j > 0 && depth > 0 {
                        j -= 1;
                        match tokens[j].kind {
                            TokenKind::Punct(')') => depth += 1,
                            TokenKind::Punct('(') => depth -= 1,
                            _ => {}
                        }
                    }
                    if j > 0 && tokens[j - 1].ident() == Some("pub") {
                        return Vis::Restricted;
                    }
                    return Vis::Private;
                }
                // An ABI string (`extern "C" fn`) sits between qualifiers.
                TokenKind::Literal(_) => i -= 1,
                _ => return Vis::Private,
            },
        }
    }
    Vis::Private
}

/// Parses a `fn` signature starting at the `fn` keyword index: returns
/// (signature end = body `{` or `;` index, body token range, whether the
/// return type names a lock guard).
fn fn_signature(tokens: &[Token], fn_idx: usize) -> (usize, Range<usize>, bool) {
    // Walk to the parameter list `(`, skipping generics `<…>`.
    let mut i = fn_idx + 2; // past `fn name`
    let mut angle = 0usize;
    while i < tokens.len() {
        match tokens[i].kind {
            TokenKind::Punct('<') => angle += 1,
            TokenKind::Punct('>') => angle = angle.saturating_sub(1),
            TokenKind::Punct('(') if angle == 0 => break,
            TokenKind::Punct('{') | TokenKind::Punct(';') if angle == 0 => {
                // Malformed — treat as bodiless.
                return (i, i..i, false);
            }
            _ => {}
        }
        i += 1;
    }
    // Skip the balanced parameter list.
    let mut depth = 0usize;
    while i < tokens.len() {
        match tokens[i].kind {
            TokenKind::Punct('(') => depth += 1,
            TokenKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            _ => {}
        }
        i += 1;
    }
    // Return type / where clause up to the body `{` or `;`. Braces can
    // legally appear inside the return type only behind `dyn Fn() -> …`
    // style nesting, which this workspace avoids; first top-level brace
    // wins.
    let ret_start = i;
    let mut returns_guard = false;
    let mut angle = 0usize;
    while i < tokens.len() {
        match &tokens[i].kind {
            TokenKind::Punct('<') => angle += 1,
            TokenKind::Punct('>') => angle = angle.saturating_sub(1),
            TokenKind::Punct('{') => {
                let end = match_brace(tokens, i);
                returns_guard |= guard_in(&tokens[ret_start..i]);
                return (i, (i + 1)..end, returns_guard);
            }
            TokenKind::Punct(';') if angle == 0 => {
                returns_guard |= guard_in(&tokens[ret_start..i]);
                return (i, i..i, returns_guard);
            }
            _ => {}
        }
        i += 1;
    }
    (tokens.len(), tokens.len()..tokens.len(), false)
}

/// Whether a token run names a lock guard type.
fn guard_in(tokens: &[Token]) -> bool {
    tokens.iter().any(|t| {
        matches!(
            t.ident(),
            Some("MutexGuard" | "RwLockReadGuard" | "RwLockWriteGuard")
        )
    })
}

/// Parses one `use` declaration starting at the `use` keyword, expanding
/// group imports (`use a::{b, c as d};`) into one [`UseImport`] per leaf.
/// Returns the imports and the index just past the terminating `;`.
fn parse_use(tokens: &[Token], use_idx: usize) -> (Vec<UseImport>, usize) {
    let mut out = Vec::new();
    let mut prefix: Vec<Vec<String>> = vec![Vec::new()]; // stack of group prefixes
    let mut current: Vec<String> = Vec::new();
    let mut alias: Option<String> = None;
    let mut in_alias = false;
    let mut i = use_idx + 1;

    let flush = |prefix: &[Vec<String>],
                 current: &mut Vec<String>,
                 alias: &mut Option<String>,
                 out: &mut Vec<UseImport>| {
        if current.is_empty() {
            return;
        }
        let mut segments: Vec<String> = prefix.iter().flatten().cloned().collect();
        segments.append(current);
        let leaf = alias
            .take()
            .or_else(|| segments.last().cloned())
            .unwrap_or_default();
        if leaf != "*" && !leaf.is_empty() {
            out.push(UseImport { leaf, segments });
        }
    };

    while i < tokens.len() {
        match &tokens[i].kind {
            TokenKind::Punct(';') => {
                flush(&prefix, &mut current, &mut alias, &mut out);
                return (out, i + 1);
            }
            TokenKind::Punct('{') => {
                prefix.push(std::mem::take(&mut current));
                in_alias = false;
            }
            TokenKind::Punct('}') => {
                flush(&prefix, &mut current, &mut alias, &mut out);
                prefix.pop();
                in_alias = false;
            }
            TokenKind::Punct(',') => {
                flush(&prefix, &mut current, &mut alias, &mut out);
                in_alias = false;
            }
            TokenKind::Punct('*') => current.push("*".to_string()),
            TokenKind::Ident(s) if s == "as" => in_alias = true,
            TokenKind::Ident(s) => {
                if in_alias {
                    alias = Some(s.clone());
                } else {
                    current.push(s.clone());
                }
            }
            _ => {}
        }
        i += 1;
    }
    flush(&prefix, &mut current, &mut alias, &mut out);
    (out, i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn parse(src: &str) -> FileItems {
        parse_items(&tokenize(src))
    }

    #[test]
    fn finds_free_fns_methods_and_visibility() {
        let src = "\
pub fn outer() { inner(); }
fn inner() {}
pub(crate) fn restricted() {}
struct S;
impl S {
    pub fn method(&self) -> u32 { 1 }
}
impl std::fmt::Display for S {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }
}
";
        let items = parse(src);
        let names: Vec<(&str, Option<&str>, Vis)> = items
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.impl_type.as_deref(), f.vis))
            .collect();
        assert_eq!(
            names,
            vec![
                ("outer", None, Vis::Public),
                ("inner", None, Vis::Private),
                ("restricted", None, Vis::Restricted),
                ("method", Some("S"), Vis::Public),
                ("fmt", Some("S"), Vis::Private),
            ]
        );
    }

    #[test]
    fn module_nesting_and_nested_fns() {
        let src = "\
mod a {
    mod b {
        fn deep() { fn deeper() {} }
    }
}
fn top() {}
";
        let items = parse(src);
        let paths: Vec<(String, Vec<String>)> = items
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.module_path.clone()))
            .collect();
        assert_eq!(
            paths,
            vec![
                ("deep".into(), vec!["a".into(), "b".into()]),
                ("deeper".into(), vec!["a".into(), "b".into()]),
                ("top".into(), Vec::new()),
            ]
        );
        // Nested fn body is inside the outer fn's body range.
        let deep = &items.fns[0];
        let deeper = &items.fns[1];
        assert!(deep.body.start <= deeper.body.start && deeper.body.end <= deep.body.end);
    }

    #[test]
    fn guard_returning_fns_are_marked() {
        let src = "\
fn lock(&self) -> std::sync::MutexGuard<'_, Inner> { self.inner.lock().unwrap() }
fn plain(&self) -> usize { 0 }
";
        let items = parse(src);
        assert!(items.fns[0].returns_guard);
        assert!(!items.fns[1].returns_guard);
    }

    #[test]
    fn use_groups_aliases_and_globs() {
        let src = "\
use ghosts_stats::glm::fit;
use ghosts_core::{estimate_table, parallel::{par_map, try_par_map}};
use ghosts_net::AddrSet as Set;
use ghosts_sim::*;
";
        let items = parse(src);
        let got: Vec<(String, Vec<String>)> = items
            .uses
            .iter()
            .map(|u| (u.leaf.clone(), u.segments.clone()))
            .collect();
        assert_eq!(
            got,
            vec![
                (
                    "fit".into(),
                    vec!["ghosts_stats".into(), "glm".into(), "fit".into()]
                ),
                (
                    "estimate_table".into(),
                    vec!["ghosts_core".into(), "estimate_table".into()]
                ),
                (
                    "par_map".into(),
                    vec!["ghosts_core".into(), "parallel".into(), "par_map".into()]
                ),
                (
                    "try_par_map".into(),
                    vec![
                        "ghosts_core".into(),
                        "parallel".into(),
                        "try_par_map".into()
                    ]
                ),
                ("Set".into(), vec!["ghosts_net".into(), "AddrSet".into()]),
            ]
        );
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let items = parse("fn real(f: fn(u32) -> u32) -> u32 { f(1) }");
        assert_eq!(items.fns.len(), 1);
        assert_eq!(items.fns[0].name, "real");
    }

    #[test]
    fn bodiless_trait_methods_have_empty_bodies() {
        let src = "\
trait T {
    fn decl(&self) -> u32;
    fn with_default(&self) -> u32 { 1 }
}
";
        let items = parse(src);
        assert_eq!(items.fns.len(), 2);
        assert!(items.fns[0].body.is_empty());
        assert!(!items.fns[1].body.is_empty());
    }

    #[test]
    fn enclosing_fn_picks_innermost() {
        let src = "fn outer() { fn inner() { let x = 1; } }";
        let items = parse(src);
        let tokens = tokenize(src);
        let x_idx = tokens
            .iter()
            .position(|t| t.ident() == Some("x"))
            .expect("x token");
        assert_eq!(
            items.enclosing_fn(x_idx).map(|f| f.name.as_str()),
            Some("inner")
        );
    }
}
