//! A lightweight hand-rolled Rust lexer.
//!
//! crates.io is unreachable in this build environment, so `syn` is not an
//! option; ghost-lint's rules only need a *token-accurate* view of the
//! source — comments, strings and char literals stripped, float literals
//! distinguished from integers, identifiers and punctuation kept with line
//! numbers. The lexer therefore handles exactly the Rust surface syntax
//! that can confuse a naive regex: nested block comments, raw strings with
//! arbitrary `#` fences, byte/char literals vs lifetimes, numeric literals
//! with separators/exponents/suffixes, and tuple indexing (`x.0` is not a
//! float).
//!
//! Line comments are kept (as [`TokenKind::Comment`] tokens) because the
//! justification escape hatch (`// lint: allow(rule) reason`) lives in
//! them.

/// What a token is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword.
    Ident(String),
    /// An integer literal (any base, any suffix except f32/f64). The raw
    /// source text is kept so rules can read type suffixes (`1u64`).
    Int(String),
    /// A float literal (decimal point, exponent, or f32/f64 suffix).
    Float,
    /// A string/char/byte literal. The contents are kept (escapes
    /// unprocessed) so rules can read event names and similar registry
    /// keys; they never re-enter identifier matching.
    Literal(String),
    /// A lifetime or loop label, e.g. `'a`.
    Lifetime,
    /// One punctuation character: `.`, `=`, `!`, `<`, `(`, `[`, `#`, ….
    Punct(char),
    /// A line or block comment (text kept for `lint:` markers).
    Comment(String),
}

/// One token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token's kind and payload.
    pub kind: TokenKind,
    /// 1-based line where the token starts.
    pub line: usize,
}

impl Token {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// The literal contents, if this is a string/char/byte literal.
    pub fn literal(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Literal(s) => Some(s),
            _ => None,
        }
    }

    /// The raw source text, if this is an integer literal.
    pub fn int_text(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Int(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// Tokenizes Rust source. Never fails: unterminated constructs consume to
/// end of input (the compiler will reject such files anyway; the linter
/// must simply not panic on them).
pub fn tokenize(source: &str) -> Vec<Token> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    src: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            src,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(ch) = c {
            self.pos += 1;
            if ch == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn run(mut self) -> Vec<Token> {
        let _ = self.src;
        let mut tokens = Vec::new();
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => {
                    let text = self.line_comment();
                    tokens.push(Token {
                        kind: TokenKind::Comment(text),
                        line,
                    });
                }
                '/' if self.peek(1) == Some('*') => {
                    let text = self.block_comment();
                    tokens.push(Token {
                        kind: TokenKind::Comment(text),
                        line,
                    });
                }
                '"' => {
                    let text = self.string_literal();
                    tokens.push(Token {
                        kind: TokenKind::Literal(text),
                        line,
                    });
                }
                '\'' => {
                    let kind = self.char_or_lifetime();
                    tokens.push(Token { kind, line });
                }
                'r' | 'b' if self.raw_or_byte_literal_ahead() => {
                    let text = self.raw_or_byte_literal();
                    tokens.push(Token {
                        kind: TokenKind::Literal(text),
                        line,
                    });
                }
                c if c.is_ascii_digit() => {
                    let kind = self.number();
                    tokens.push(Token { kind, line });
                }
                c if c == '_' || c.is_alphanumeric() => {
                    let ident = self.ident();
                    tokens.push(Token {
                        kind: TokenKind::Ident(ident),
                        line,
                    });
                }
                _ => {
                    self.bump();
                    tokens.push(Token {
                        kind: TokenKind::Punct(c),
                        line,
                    });
                }
            }
        }
        tokens
    }

    fn line_comment(&mut self) -> String {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        text
    }

    fn block_comment(&mut self) -> String {
        let mut text = String::new();
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break,
            }
        }
        text
    }

    fn string_literal(&mut self) -> String {
        let mut text = String::new();
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    text.push(c);
                    if let Some(esc) = self.bump() {
                        text.push(esc); // escaped char (covers \" and \\)
                    }
                }
                '"' => break,
                _ => text.push(c),
            }
        }
        text
    }

    /// Does the cursor sit on `r"`, `r#`, `b"`, `b'`, `br`, `rb`-style
    /// literal openers (rather than an identifier starting with r/b)?
    fn raw_or_byte_literal_ahead(&self) -> bool {
        let mut i = 0;
        // Up to two prefix letters: r, b, br, rb.
        while i < 2 {
            match self.peek(i) {
                Some('r') | Some('b') => i += 1,
                _ => break,
            }
        }
        if i == 0 {
            return false;
        }
        match self.peek(i) {
            Some('"') | Some('\'') => true,
            Some('#') => {
                // raw string fence: r#"..."# or r#ident (raw identifier).
                // Raw identifiers are r#name with no quote after the hashes.
                let mut j = i;
                while self.peek(j) == Some('#') {
                    j += 1;
                }
                self.peek(j) == Some('"')
            }
            _ => false,
        }
    }

    fn raw_or_byte_literal(&mut self) -> String {
        let mut raw = false;
        while let Some(c) = self.peek(0) {
            match c {
                'r' => {
                    raw = true;
                    self.bump();
                }
                'b' => {
                    self.bump();
                }
                _ => break,
            }
        }
        if !raw {
            // b"..." or b'.': delegate to the cooked scanners.
            match self.peek(0) {
                Some('"') => return self.string_literal(),
                Some('\'') => {
                    let mut text = String::new();
                    self.bump(); // opening '
                    if self.peek(0) == Some('\\') {
                        if let Some(c) = self.bump() {
                            text.push(c);
                        }
                    }
                    if let Some(c) = self.bump() {
                        text.push(c); // the byte
                    }
                    self.bump(); // closing '
                    return text;
                }
                _ => return String::new(),
            }
        }
        // Raw string: count fence hashes, then scan to `"` + fence.
        let mut text = String::new();
        let mut fence = 0usize;
        while self.peek(0) == Some('#') {
            fence += 1;
            self.bump();
        }
        self.bump(); // opening quote
        loop {
            match self.bump() {
                Some('"') => {
                    let mut matched = 0usize;
                    while matched < fence && self.peek(0) == Some('#') {
                        matched += 1;
                        self.bump();
                    }
                    if matched == fence {
                        break;
                    }
                    // A quote that did not close the literal is content,
                    // as are the hashes consumed while probing the fence.
                    text.push('"');
                    for _ in 0..matched {
                        text.push('#');
                    }
                }
                Some(c) => text.push(c),
                None => break,
            }
        }
        text
    }

    fn char_or_lifetime(&mut self) -> TokenKind {
        // At a `'`. Lifetime iff an ident follows and is NOT closed by `'`.
        let mut j = 1;
        if let Some(c) = self.peek(1) {
            if c == '_' || c.is_alphabetic() {
                j += 1;
                while let Some(c2) = self.peek(j) {
                    if c2 == '_' || c2.is_alphanumeric() {
                        j += 1;
                    } else {
                        break;
                    }
                }
                if self.peek(j) != Some('\'') {
                    // lifetime or label: consume `'` + ident
                    for _ in 0..j {
                        self.bump();
                    }
                    return TokenKind::Lifetime;
                }
            }
        }
        // Char literal: `'x'`, `'\n'`, `'\u{1F47B}'`.
        let mut text = String::new();
        self.bump(); // opening '
        match self.peek(0) {
            Some('\\') => {
                text.push('\\');
                self.bump();
                if self.peek(0) == Some('u') {
                    // \u{...}
                    text.push('u');
                    self.bump();
                    if self.peek(0) == Some('{') {
                        while let Some(c) = self.bump() {
                            text.push(c);
                            if c == '}' {
                                break;
                            }
                        }
                    }
                } else if let Some(c) = self.bump() {
                    text.push(c);
                }
            }
            Some(c) => {
                text.push(c);
                self.bump();
            }
            None => {}
        }
        if self.peek(0) == Some('\'') {
            self.bump();
        }
        TokenKind::Literal(text)
    }

    fn number(&mut self) -> TokenKind {
        let mut is_float = false;
        let start = self.pos;
        // Radix prefixes are always integers (0x, 0o, 0b).
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x') | Some('o') | Some('b')) {
            self.bump();
            self.bump();
            while let Some(c) = self.peek(0) {
                if c.is_ascii_alphanumeric() || c == '_' {
                    self.bump();
                } else {
                    break;
                }
            }
            return TokenKind::Int(self.chars[start..self.pos].iter().collect());
        }
        while let Some(c) = self.peek(0) {
            if c.is_ascii_digit() || c == '_' {
                self.bump();
            } else {
                break;
            }
        }
        // Decimal point: float only if NOT `..` (range) and NOT `.ident`
        // (method call / tuple field).
        if self.peek(0) == Some('.') {
            match self.peek(1) {
                Some('.') => {}
                Some(c) if c == '_' || c.is_alphabetic() => {}
                _ => {
                    is_float = true;
                    self.bump(); // the dot
                    while let Some(c) = self.peek(0) {
                        if c.is_ascii_digit() || c == '_' {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
            }
        }
        // Exponent.
        if matches!(self.peek(0), Some('e') | Some('E')) {
            let sign = usize::from(matches!(self.peek(1), Some('+') | Some('-')));
            if self.peek(1 + sign).is_some_and(|c| c.is_ascii_digit()) {
                is_float = true;
                self.bump(); // e
                for _ in 0..sign {
                    self.bump();
                }
                while let Some(c) = self.peek(0) {
                    if c.is_ascii_digit() || c == '_' {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        // Type suffix: f32/f64 forces float; other suffixes keep int-ness.
        if self.peek(0) == Some('f')
            && (self.lookahead_word(1, "32") || self.lookahead_word(1, "64"))
        {
            is_float = true;
        }
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_ascii_alphanumeric() {
                self.bump();
            } else {
                break;
            }
        }
        if is_float {
            TokenKind::Float
        } else {
            TokenKind::Int(self.chars[start..self.pos].iter().collect())
        }
    }

    fn lookahead_word(&self, offset: usize, word: &str) -> bool {
        word.chars()
            .enumerate()
            .all(|(i, c)| self.peek(offset + i) == Some(c))
    }

    fn ident(&mut self) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn floats_vs_ints_vs_ranges_vs_methods() {
        assert_eq!(kinds("1.0"), vec![TokenKind::Float]);
        assert_eq!(kinds("1e-9"), vec![TokenKind::Float]);
        assert_eq!(kinds("3f64"), vec![TokenKind::Float]);
        assert_eq!(kinds("42"), vec![TokenKind::Int("42".into())]);
        assert_eq!(kinds("0xffff"), vec![TokenKind::Int("0xffff".into())]);
        // Suffixes are kept in the raw text (the counting-overflow rule
        // reads them).
        assert_eq!(kinds("1u64"), vec![TokenKind::Int("1u64".into())]);
        // `0..10` is int, range, int — not a float.
        assert_eq!(
            kinds("0..10"),
            vec![
                TokenKind::Int("0".into()),
                TokenKind::Punct('.'),
                TokenKind::Punct('.'),
                TokenKind::Int("10".into())
            ]
        );
        // `1.max(2)` is a method call on an integer.
        assert_eq!(
            kinds("1.max"),
            vec![
                TokenKind::Int("1".into()),
                TokenKind::Punct('.'),
                TokenKind::Ident("max".into())
            ]
        );
        // Trailing-dot floats.
        assert_eq!(kinds("1."), vec![TokenKind::Float]);
    }

    #[test]
    fn comments_strings_chars_lifetimes() {
        assert_eq!(
            kinds("// lint: sorted"),
            vec![TokenKind::Comment("// lint: sorted".into())]
        );
        assert_eq!(
            kinds("/* a /* nested */ b */"),
            vec![TokenKind::Comment(" a  nested  b ".into())]
        );
        assert_eq!(
            kinds(r#""text with == 1.0""#),
            vec![TokenKind::Literal("text with == 1.0".into())]
        );
        assert_eq!(
            kinds(r##"r#"raw "with" quotes"#"##),
            vec![TokenKind::Literal(r#"raw "with" quotes"#.into())]
        );
        assert_eq!(kinds("'x'"), vec![TokenKind::Literal("x".into())]);
        assert_eq!(kinds(r"'\n'"), vec![TokenKind::Literal(r"\n".into())]);
        assert_eq!(
            kinds("&'a str"),
            vec![
                TokenKind::Punct('&'),
                TokenKind::Lifetime,
                TokenKind::Ident("str".into())
            ]
        );
    }

    #[test]
    fn string_contents_never_leak_tokens() {
        // A string containing code must produce exactly one token.
        let src = r#"let s = "HashMap.unwrap() == 1.0";"#;
        let idents: Vec<String> = tokenize(src)
            .into_iter()
            .filter_map(|t| t.ident().map(String::from))
            .collect();
        assert_eq!(idents, vec!["let", "s"]);
    }

    #[test]
    fn line_numbers_are_tracked() {
        let toks = tokenize("a\nb\n\nc");
        let lines: Vec<usize> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn byte_and_raw_byte_literals() {
        assert_eq!(
            kinds(r#"b"bytes""#),
            vec![TokenKind::Literal("bytes".into())]
        );
        assert_eq!(kinds("b'x'"), vec![TokenKind::Literal("x".into())]);
        assert_eq!(
            kinds(r##"br#"raw bytes"#"##),
            vec![TokenKind::Literal("raw bytes".into())]
        );
        // r#keyword is a raw identifier, not a raw string.
        assert_eq!(
            kinds("r#fn"),
            vec![
                TokenKind::Ident("r".into()),
                TokenKind::Punct('#'),
                TokenKind::Ident("fn".into())
            ]
        );
    }
}
