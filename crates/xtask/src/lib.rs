//! # xtask — workspace task runner
//!
//! Home of **ghost-lint**, the repo-specific static-analysis pass enforcing
//! the determinism and numerical-safety invariants the *Capturing Ghosts*
//! reproduction depends on (see DESIGN.md §14, "Static analysis").
//!
//! The linter is dependency-free by necessity — the build environment has
//! no crates.io access, so there is no `syn`. Instead [`lexer`] hand-rolls
//! a token stream (comments retained, string/char contents preserved),
//! [`items`] parses it into a workspace item tree (functions, impls,
//! `use` edges, visibility), [`graph`] links the trees into an
//! approximate call graph, and two rule layers consume them:
//! intraprocedural pattern rules in [`rules`] and interprocedural rules
//! (panic paths, lock discipline, counting overflow, event
//! exhaustiveness) in [`interproc`]. [`report`] renders text or
//! deterministic JSON and applies the committed finding baseline;
//! [`api_lock`] pins the public surface of the vendored shims, and
//! [`workspace`] walks and classifies the files.
//!
//! Per-file work fans out through `ghosts_core::parallel::par_map` with a
//! content-hash parse cache; report bytes are identical at every thread
//! count. Run it as `cargo run -p xtask -- lint` (wired into
//! `scripts/ci.sh`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api_lock;
pub mod graph;
pub mod interproc;
pub mod items;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod workspace;

use ghosts_core::parallel::{par_map, Parallelism};
use rules::{Allows, FileClass, Violation};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use std::sync::{Arc, Mutex, OnceLock};

/// Everything derived from one file's source text alone — safe to cache
/// by content hash and share across runs and threads.
pub struct ParseArtifacts {
    /// The token stream.
    pub tokens: Vec<lexer::Token>,
    /// The item tree.
    pub items: items::FileItems,
    /// Lines inside `#[cfg(test)]` items.
    pub test_lines: BTreeSet<usize>,
    /// Allow-comment sites as `(line, rule)` pairs. Usage flags are
    /// per-run state and deliberately *not* cached.
    pub allow_sites: Vec<(usize, String)>,
}

/// FNV-1a 64-bit: tiny, dependency-free, and good enough to key a parse
/// cache (a collision only risks reusing a parse, within one process).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn parse_cache() -> &'static Mutex<BTreeMap<u64, Arc<ParseArtifacts>>> {
    static CACHE: OnceLock<Mutex<BTreeMap<u64, Arc<ParseArtifacts>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Tokenizes and item-parses `source`, consulting the process-wide
/// content-hash cache first. Artifacts are pure functions of the text,
/// so a hit is always valid.
pub fn parse_source(source: &str) -> Arc<ParseArtifacts> {
    let key = fnv64(source.as_bytes());
    {
        let cache = parse_cache().lock().unwrap_or_else(|e| e.into_inner());
        if let Some(hit) = cache.get(&key) {
            return Arc::clone(hit);
        }
    }
    let tokens = lexer::tokenize(source);
    let items = items::parse_items(&tokens);
    let test_lines = rules::cfg_test_lines(&tokens);
    let allow_sites = Allows::from_tokens(&tokens)
        .sites()
        .iter()
        .map(|s| (s.line, s.rule.clone()))
        .collect();
    let arc = Arc::new(ParseArtifacts {
        tokens,
        items,
        test_lines,
        allow_sites,
    });
    let mut cache = parse_cache().lock().unwrap_or_else(|e| e.into_inner());
    cache.insert(key, Arc::clone(&arc));
    arc
}

/// One file after the parallel per-file pass: parse artifacts plus this
/// run's allow-usage state.
pub struct AnalyzedFile {
    /// Workspace classification.
    pub class: FileClass,
    /// Cached parse artifacts.
    pub artifacts: Arc<ParseArtifacts>,
    /// Allow sites with fresh usage flags for this run.
    pub allows: Allows,
}

/// Lints one file's source text under the given classification — the
/// intraprocedural rules only. This is the entry point the original
/// fixture self-tests drive against single files.
pub fn lint_source(source: &str, class: &FileClass) -> Vec<Violation> {
    rules::lint_tokens(&lexer::tokenize(source), class)
}

/// Analyzes a set of classified sources end to end: per-file rules fan
/// out via `par_map` (parse-cached), then the interprocedural pass runs
/// over the assembled item graph, then the stale-allow sweep reports
/// suppressions that never suppressed anything. Output is sorted and
/// byte-deterministic regardless of `par`.
pub fn analyze_sources(sources: &[(FileClass, String)], par: Parallelism) -> Vec<Violation> {
    let analyzed: Vec<(AnalyzedFile, Vec<Violation>)> =
        par_map(par, sources, |_, (class, text)| {
            let artifacts = parse_source(text);
            let allows = Allows::from_sites(&artifacts.allow_sites);
            let violations =
                rules::lint_tokens_with(&artifacts.tokens, class, &allows, &artifacts.test_lines);
            (
                AnalyzedFile {
                    class: class.clone(),
                    artifacts,
                    allows,
                },
                violations,
            )
        });

    let mut out: Vec<Violation> = Vec::new();
    let mut files: Vec<interproc::InterprocFile<'_>> = Vec::with_capacity(analyzed.len());
    for (f, vs) in &analyzed {
        out.extend(vs.iter().cloned());
        files.push(interproc::InterprocFile {
            class: &f.class,
            tokens: &f.artifacts.tokens,
            items: &f.artifacts.items,
            test_lines: &f.artifacts.test_lines,
            allows: &f.allows,
        });
    }
    out.extend(interproc::lint_interproc(&files));
    // Stale-allow must run last: every rule family has had its chance to
    // mark the suppressions it used.
    for (f, _) in &analyzed {
        out.extend(interproc::stale_allow_violations(&f.class, &f.allows));
    }
    out.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    out
}

/// Lints the whole workspace rooted at `root`: every discovered `.rs`
/// file through [`analyze_sources`], plus the vendor API-drift check.
/// Violations come back sorted by path then line.
pub fn lint_workspace(root: &Path, par: Parallelism) -> std::io::Result<Vec<Violation>> {
    let mut sources = Vec::new();
    for (path, class) in workspace::discover(root)? {
        let text = std::fs::read_to_string(&path)?;
        sources.push((class, text));
    }
    let mut out = analyze_sources(&sources, par);
    out.extend(api_lock::check(root)?);
    out.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    Ok(out)
}
