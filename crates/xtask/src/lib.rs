//! # xtask — workspace task runner
//!
//! Home of **ghost-lint**, the repo-specific static-analysis pass enforcing
//! the determinism and numerical-safety invariants the *Capturing Ghosts*
//! reproduction depends on (see DESIGN.md, "Static analysis & invariants").
//!
//! The linter is dependency-free by necessity — the build environment has
//! no crates.io access, so there is no `syn`. Instead [`lexer`] hand-rolls
//! a token stream (comments retained, string/char contents discarded) and
//! [`rules`] pattern-matches invariants over it. [`api_lock`] pins the
//! public surface of the vendored shims, and [`workspace`] walks and
//! classifies the files.
//!
//! Run it as `cargo run -p xtask -- lint` (wired into `scripts/ci.sh`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api_lock;
pub mod lexer;
pub mod rules;
pub mod workspace;

use rules::Violation;
use std::path::Path;

/// Lints one file's source text under the given classification. This is the
/// entry point the self-tests drive against fixture files.
pub fn lint_source(source: &str, class: &rules::FileClass) -> Vec<Violation> {
    rules::lint_tokens(&lexer::tokenize(source), class)
}

/// Lints the whole workspace rooted at `root`: every discovered `.rs` file
/// plus the vendor API-drift check. Violations come back sorted by path
/// then line.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut out = Vec::new();
    for (path, class) in workspace::discover(root)? {
        let source = std::fs::read_to_string(&path)?;
        out.extend(lint_source(&source, &class));
    }
    out.extend(api_lock::check(root)?);
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(out)
}
