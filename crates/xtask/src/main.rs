//! ghost-lint CLI: `cargo run -p xtask -- lint [--update-api]`.

#![forbid(unsafe_code)]

use std::process::ExitCode;
use xtask::{api_lock, lint_workspace, workspace};

const USAGE: &str = "\
Usage: cargo run -p xtask -- <command>

Commands:
  lint                      run ghost-lint over the whole workspace (exit 1 on violations)
  lint --update-api         regenerate crates/xtask/vendor_api.lock, then lint
  lint --check-events PATH  validate a JSONL event trace (repro --trace output)
                            against the ghosts-events/3 schema (v1/v2 traces
                            are still accepted)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let args: Vec<&str> = args.iter().map(String::as_str).collect();
    match args.as_slice() {
        ["lint"] => run_lint(false),
        ["lint", "--update-api"] | ["lint", "--update-api", "lint"] => run_lint(true),
        ["lint", "--check-events", path] => run_check_events(path),
        _ => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Validates a `repro --trace` JSONL file: schema version, line grammar,
/// section ordering, dense per-span sequence numbers, trailing newline.
fn run_check_events(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("ghost-lint: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match ghosts_obs::validate_jsonl(&text) {
        Ok(summary) => {
            eprintln!(
                "ghost-lint: {path}: valid event stream ({} events, {} errors, \
                 {} degradations, {} faults, {} counters, {} histograms)",
                summary.events,
                summary.errors,
                summary.degradations,
                summary.faults,
                summary.counters,
                summary.hists
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ghost-lint: {path}:{}: {}", e.line, e.message);
            ExitCode::FAILURE
        }
    }
}

fn run_lint(update_api: bool) -> ExitCode {
    let root = workspace::workspace_root();
    if update_api {
        if let Err(e) = api_lock::update(&root) {
            eprintln!("ghost-lint: failed to update vendor API lock: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("ghost-lint: regenerated {}", api_lock::LOCK_PATH);
    }
    match lint_workspace(&root) {
        Ok(violations) if violations.is_empty() => {
            eprintln!("ghost-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            eprintln!("ghost-lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("ghost-lint: I/O error: {e}");
            ExitCode::FAILURE
        }
    }
}
