//! ghost-lint CLI: `cargo run -p xtask -- lint [flags]`.

#![forbid(unsafe_code)]

use ghosts_core::parallel::Parallelism;
use std::process::ExitCode;
use xtask::report::{Baseline, ReportEntry, BASELINE_PATH};
use xtask::{api_lock, lint_workspace, report, workspace};

const USAGE: &str = "\
Usage: cargo run -p xtask -- <command>

Commands:
  lint [flags]              run ghost-lint over the whole workspace
  lint --check-events PATH  validate a JSONL event trace (repro --trace output)
                            against the ghosts-events/4 schema (v1–v3 traces
                            are still accepted)

Lint flags:
  --format text|json        report format (default text); json is
                            byte-deterministic at every thread count
  --baseline PATH           finding baseline to check against
                            (default lint-baseline.json at the repo root;
                            a missing file means an empty baseline)
  --update-baseline         rewrite the baseline to accept the current
                            findings, then exit 0
  --threads N               worker threads for the per-file pass
                            (default: one per core)
  --update-api              regenerate crates/xtask/vendor_api.lock first

Exit status: 0 when every finding is baselined (or none exist),
1 on new findings or I/O error, 2 on usage error.
";

struct LintOpts {
    format_json: bool,
    baseline_path: Option<String>,
    update_baseline: bool,
    update_api: bool,
    par: Parallelism,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let args: Vec<&str> = args.iter().map(String::as_str).collect();
    match args.as_slice() {
        ["lint", "--check-events", path] => run_check_events(path),
        ["lint", rest @ ..] => match parse_lint_opts(rest) {
            Ok(opts) => run_lint(&opts),
            Err(msg) => {
                eprintln!("ghost-lint: {msg}");
                eprint!("{USAGE}");
                ExitCode::from(2)
            }
        },
        _ => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn parse_lint_opts(args: &[&str]) -> Result<LintOpts, String> {
    let mut opts = LintOpts {
        format_json: false,
        baseline_path: None,
        update_baseline: false,
        update_api: false,
        par: Parallelism::Auto,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match *arg {
            "--format" => match it.next() {
                Some(&"text") => opts.format_json = false,
                Some(&"json") => opts.format_json = true,
                other => {
                    return Err(format!(
                        "--format takes `text` or `json`, got {}",
                        other.map_or("nothing".to_string(), |o| format!("`{o}`"))
                    ))
                }
            },
            "--baseline" => {
                opts.baseline_path = Some(
                    it.next()
                        .ok_or("--baseline needs a path".to_string())?
                        .to_string(),
                );
            }
            "--update-baseline" => opts.update_baseline = true,
            "--update-api" => opts.update_api = true,
            "--threads" => {
                let n: usize = it
                    .next()
                    .ok_or("--threads needs a count".to_string())?
                    .parse()
                    .map_err(|_| "--threads needs a positive integer".to_string())?;
                if n == 0 {
                    return Err("--threads needs a positive integer".to_string());
                }
                opts.par = Parallelism::Fixed(n);
            }
            other => return Err(format!("unknown lint flag `{other}`")),
        }
    }
    Ok(opts)
}

/// Validates a `repro --trace` JSONL file: schema version, line grammar,
/// section ordering, dense per-span sequence numbers, trailing newline.
fn run_check_events(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("ghost-lint: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match ghosts_obs::validate_jsonl(&text) {
        Ok(summary) => {
            eprintln!(
                "ghost-lint: {path}: valid event stream ({} events, {} errors, \
                 {} degradations, {} faults, {} counters, {} histograms)",
                summary.events,
                summary.errors,
                summary.degradations,
                summary.faults,
                summary.counters,
                summary.hists
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ghost-lint: {path}:{}: {}", e.line, e.message);
            ExitCode::FAILURE
        }
    }
}

fn run_lint(opts: &LintOpts) -> ExitCode {
    let root = workspace::workspace_root();
    if opts.update_api {
        if let Err(e) = api_lock::update(&root) {
            eprintln!("ghost-lint: failed to update vendor API lock: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("ghost-lint: regenerated {}", api_lock::LOCK_PATH);
    }

    let baseline_path = opts
        .baseline_path
        .clone()
        .unwrap_or_else(|| root.join(BASELINE_PATH).to_string_lossy().into_owned());

    let violations = match lint_workspace(&root, opts.par) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("ghost-lint: I/O error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if opts.update_baseline {
        let baseline = Baseline::from_violations(&violations);
        if let Err(e) = ghosts_durable::atomic_write(
            std::path::Path::new(&baseline_path),
            baseline.to_json_bytes().as_bytes(),
        ) {
            eprintln!("ghost-lint: cannot write {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "ghost-lint: baseline updated ({} finding(s) accepted) -> {baseline_path}",
            baseline.len()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match Baseline::load(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("ghost-lint: {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
        Err(e) => {
            eprintln!("ghost-lint: cannot read {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let flags = baseline.apply(&violations);
    let entries: Vec<ReportEntry<'_>> = violations
        .iter()
        .zip(&flags)
        .map(|(violation, &baselined)| ReportEntry {
            violation,
            baselined,
        })
        .collect();
    let fresh = entries.iter().filter(|e| !e.baselined).count();

    if opts.format_json {
        print!("{}", report::render_json(&entries));
    } else {
        print!("{}", report::render_text(&entries));
    }
    if fresh == 0 {
        if entries.is_empty() {
            eprintln!("ghost-lint: clean");
        } else {
            eprintln!(
                "ghost-lint: clean ({} baselined finding(s) outstanding)",
                entries.len()
            );
        }
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "ghost-lint: {fresh} new violation(s) ({} baselined)",
            entries.len() - fresh
        );
        ExitCode::FAILURE
    }
}
