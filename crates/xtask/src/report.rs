//! Lint report rendering and the finding baseline.
//!
//! The JSON report (`--format json`) is produced through
//! [`ghosts_obs::json::JsonValue`], whose `to_compact` serializer is
//! deterministic (insertion-order keys, shortest-float numbers), so the
//! report bytes are identical at every thread count — pinned by a test.
//!
//! The baseline (`lint-baseline.json`, repo root) is a multiset of
//! `(file, rule, line)` keys with counts. A finding that matches a
//! baseline entry (with remaining count) is *baselined*: reported, but
//! not fatal. CI fails only on non-baselined findings, so legacy debt
//! can be burned down without blocking unrelated PRs, while every new
//! finding fails immediately. `--update-baseline` rewrites the file
//! from the current findings.

use crate::rules::{Violation, KNOWN_RULES};
use ghosts_obs::json::{parse, JsonValue};
use std::collections::BTreeMap;

/// Schema tag embedded in every report.
pub const REPORT_SCHEMA: &str = "ghost-lint-report/1";
/// Schema tag embedded in the baseline file.
pub const BASELINE_SCHEMA: &str = "ghost-lint-baseline/1";
/// Repo-root-relative path of the committed baseline.
pub const BASELINE_PATH: &str = "lint-baseline.json";

/// A multiset of accepted findings keyed by `(file, rule, line)`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    entries: BTreeMap<(String, String, usize), usize>,
}

impl Baseline {
    /// Parses a baseline file. Unknown schema tags and malformed entries
    /// are errors: a silently-empty baseline would fail CI everywhere.
    pub fn load(text: &str) -> Result<Self, String> {
        let root = parse(text).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
        if root.get("schema").and_then(JsonValue::as_str) != Some(BASELINE_SCHEMA) {
            return Err(format!("baseline schema tag is not \"{BASELINE_SCHEMA}\""));
        }
        let entries = root
            .get("entries")
            .and_then(JsonValue::as_array)
            .ok_or("baseline has no `entries` array")?;
        let mut out = BTreeMap::new();
        for (i, e) in entries.iter().enumerate() {
            let file = e
                .get("file")
                .and_then(JsonValue::as_str)
                .ok_or(format!("entry {i}: missing `file`"))?;
            let rule = e
                .get("rule")
                .and_then(JsonValue::as_str)
                .ok_or(format!("entry {i}: missing `rule`"))?;
            let line = e
                .get("line")
                .and_then(JsonValue::as_u64)
                .ok_or(format!("entry {i}: missing `line`"))?;
            let count = e.get("count").and_then(JsonValue::as_u64).unwrap_or(1);
            if !KNOWN_RULES.contains(&rule) {
                return Err(format!("entry {i}: unknown rule \"{rule}\""));
            }
            *out.entry((file.to_string(), rule.to_string(), line as usize))
                .or_insert(0) += count as usize;
        }
        Ok(Baseline { entries: out })
    }

    /// Builds a baseline accepting exactly the given findings.
    pub fn from_violations(violations: &[Violation]) -> Self {
        let mut entries = BTreeMap::new();
        for v in violations {
            *entries
                .entry((v.file.clone(), v.rule.to_string(), v.line))
                .or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Serializes to the committed JSON form (trailing newline included).
    pub fn to_json_bytes(&self) -> String {
        let entries: Vec<JsonValue> = self
            .entries
            .iter()
            .map(|((file, rule, line), count)| {
                let mut obj = vec![
                    ("file".to_string(), JsonValue::Str(file.clone())),
                    ("rule".to_string(), JsonValue::Str(rule.clone())),
                    ("line".to_string(), JsonValue::UInt(*line as u64)),
                ];
                if *count > 1 {
                    obj.push(("count".to_string(), JsonValue::UInt(*count as u64)));
                }
                JsonValue::Object(obj)
            })
            .collect();
        let root = JsonValue::Object(vec![
            (
                "schema".to_string(),
                JsonValue::Str(BASELINE_SCHEMA.to_string()),
            ),
            ("entries".to_string(), JsonValue::Array(entries)),
        ]);
        let mut s = root.to_compact();
        s.push('\n');
        s
    }

    /// Number of accepted findings (multiset cardinality).
    pub fn len(&self) -> usize {
        self.entries.values().sum()
    }

    /// True when the baseline accepts nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Marks each violation baselined or not, consuming multiset counts
    /// in order. Returns one flag per input violation.
    pub fn apply(&self, violations: &[Violation]) -> Vec<bool> {
        let mut remaining = self.entries.clone();
        violations
            .iter()
            .map(|v| {
                let key = (v.file.clone(), v.rule.to_string(), v.line);
                match remaining.get_mut(&key) {
                    Some(n) if *n > 0 => {
                        *n -= 1;
                        true
                    }
                    _ => false,
                }
            })
            .collect()
    }
}

/// A finding paired with its baseline status.
pub struct ReportEntry<'a> {
    /// The finding.
    pub violation: &'a Violation,
    /// Accepted by the committed baseline.
    pub baselined: bool,
}

/// Renders the JSON report. Deterministic byte-for-byte given the same
/// findings: key order is fixed, findings arrive pre-sorted.
pub fn render_json(entries: &[ReportEntry<'_>]) -> String {
    let mut by_rule: BTreeMap<&str, u64> = BTreeMap::new();
    let mut fresh = 0u64;
    let findings: Vec<JsonValue> = entries
        .iter()
        .map(|e| {
            *by_rule.entry(e.violation.rule).or_insert(0) += 1;
            if !e.baselined {
                fresh += 1;
            }
            JsonValue::Object(vec![
                ("file".to_string(), JsonValue::Str(e.violation.file.clone())),
                ("line".to_string(), JsonValue::UInt(e.violation.line as u64)),
                (
                    "rule".to_string(),
                    JsonValue::Str(e.violation.rule.to_string()),
                ),
                (
                    "message".to_string(),
                    JsonValue::Str(e.violation.message.clone()),
                ),
                ("baselined".to_string(), JsonValue::Bool(e.baselined)),
            ])
        })
        .collect();
    let summary = JsonValue::Object(vec![
        ("total".to_string(), JsonValue::UInt(entries.len() as u64)),
        ("new".to_string(), JsonValue::UInt(fresh)),
        (
            "baselined".to_string(),
            JsonValue::UInt(entries.len() as u64 - fresh),
        ),
        (
            "by_rule".to_string(),
            JsonValue::Object(
                by_rule
                    .into_iter()
                    .map(|(r, n)| (r.to_string(), JsonValue::UInt(n)))
                    .collect(),
            ),
        ),
    ]);
    let root = JsonValue::Object(vec![
        (
            "schema".to_string(),
            JsonValue::Str(REPORT_SCHEMA.to_string()),
        ),
        ("summary".to_string(), summary),
        ("findings".to_string(), JsonValue::Array(findings)),
    ]);
    let mut s = root.to_compact();
    s.push('\n');
    s
}

/// Renders the human-readable report (the pre-v2 format, plus a
/// `[baselined]` tag on accepted findings).
pub fn render_text(entries: &[ReportEntry<'_>]) -> String {
    let mut out = String::new();
    for e in entries {
        let tag = if e.baselined { " [baselined]" } else { "" };
        out.push_str(&format!(
            "{}:{}: [{}]{} {}\n",
            e.violation.file, e.violation.line, e.violation.rule, tag, e.violation.message
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(file: &str, line: usize, rule: &'static str) -> Violation {
        Violation {
            file: file.to_string(),
            line,
            rule,
            message: "m".to_string(),
        }
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let vs = vec![
            v("a.rs", 3, "no-unwrap"),
            v("a.rs", 3, "no-unwrap"),
            v("b.rs", 9, "panic-path"),
        ];
        let b = Baseline::from_violations(&vs);
        let text = b.to_json_bytes();
        let b2 = Baseline::load(&text).expect("reload");
        assert_eq!(b, b2);
        assert_eq!(b2.len(), 3);
    }

    #[test]
    fn apply_consumes_multiset_counts() {
        let base = Baseline::from_violations(&[v("a.rs", 3, "no-unwrap")]);
        let now = vec![v("a.rs", 3, "no-unwrap"), v("a.rs", 3, "no-unwrap")];
        let flags = base.apply(&now);
        assert_eq!(flags, vec![true, false]);
    }

    #[test]
    fn load_rejects_unknown_rule_and_bad_schema() {
        assert!(Baseline::load("{\"schema\":\"nope\",\"entries\":[]}").is_err());
        let bad = format!(
            "{{\"schema\":\"{BASELINE_SCHEMA}\",\"entries\":[{{\"file\":\"a\",\"rule\":\"zzz\",\"line\":1}}]}}"
        );
        assert!(Baseline::load(&bad).is_err());
    }

    #[test]
    fn json_report_shape() {
        let vs = [v("a.rs", 3, "no-unwrap")];
        let entries: Vec<ReportEntry<'_>> = vs
            .iter()
            .map(|violation| ReportEntry {
                violation,
                baselined: true,
            })
            .collect();
        let s = render_json(&entries);
        let root = parse(&s).expect("report parses");
        assert_eq!(
            root.get("schema").and_then(JsonValue::as_str),
            Some(REPORT_SCHEMA)
        );
        assert_eq!(
            root.get("summary")
                .and_then(|s| s.get("new"))
                .and_then(JsonValue::as_u64),
            Some(0)
        );
        assert_eq!(
            root.get("findings")
                .and_then(JsonValue::as_array)
                .map(|a| a.len()),
            Some(1)
        );
    }
}
