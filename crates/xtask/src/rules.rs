//! ghost-lint rules: repo-specific invariants that clippy cannot express.
//!
//! Every rule operates on the token stream of one file plus a
//! [`FileClass`] describing where the file sits in the workspace. Rules
//! are scoped per crate and per section (library source vs tests vs
//! benches), and every rule honours the justification escape hatch:
//!
//! ```text
//! // lint: allow(<rule-id>) <reason>
//! ```
//!
//! on the offending line or the line directly above it. `// lint: sorted`
//! is an alias for `allow(hash-collections)` — it asserts that the hash
//! container's iteration order cannot reach any output (or that the use is
//! a deliberate reference model).

use crate::lexer::{Token, TokenKind};
use std::cell::Cell;
use std::collections::BTreeSet;

/// Crates whose estimation paths feed the paper's AIC/BIC selection and
/// profile-likelihood ranges: hash-iteration order must never reach them.
const ESTIMATION_CRATES: [&str; 5] = ["core", "stats", "pipeline", "bench", "reliability"];

/// Crates required to be bit-deterministic in their inputs: no wall-clock,
/// no OS randomness, and library code must not panic via unwrap/expect.
const DETERMINISTIC_CRATES: [&str; 11] = [
    "core",
    "stats",
    "net",
    "addrplane",
    "pipeline",
    "sim",
    "analysis",
    "ghosts",
    "obs",
    "reliability",
    "durable",
];

/// The single file allowed to read the OS clock. Everything else goes
/// through `ghosts_obs`: binaries and benches construct a `WallClock`,
/// libraries read time (if at all) through the recorder's `Clock`.
const WALL_CLOCK_FILE: &str = "crates/obs/src/wall.rs";

/// Files allowed to compare floats with `==`: the approved helpers.
const FLOAT_EQ_HELPERS: [&str; 1] = ["crates/stats/src/approx.rs"];

/// Files that must call into `ghosts_core::invariant` (the estimation
/// entry points the runtime validators guard).
const INVARIANT_CALLERS: [&str; 3] = [
    "crates/core/src/estimator.rs",
    "crates/core/src/fit.rs",
    "crates/core/src/select.rs",
];

/// Crates whose library code may contain fault-injection probes
/// (`ghosts_faultinject::fire` and the task-scope plumbing): exactly the
/// crates that declare the documented fault sites of DESIGN.md §11.
const FAULT_SITE_CRATES: [&str; 6] = ["stats", "core", "pipeline", "bench", "serve", "durable"];

/// Crates allowed to open sockets. Network I/O is the serving layer's
/// job (DESIGN.md §12); estimation code computes over in-memory tables
/// and must stay runnable with networking stubbed out entirely. Tests
/// and benches may drive loopback sockets freely.
const NET_IO_CRATES: [&str; 1] = ["serve"];

/// The crate whose atomic writer owns raw file creation. Everything else
/// writes durable artifacts through `ghosts_durable::atomic_write`
/// (temp + fsync + rename), so a crash can never leave a torn file at a
/// final path (DESIGN.md §16). Tests and benches are exempt — they plant
/// corrupt fixtures on purpose.
const FS_DISCIPLINE_CRATE: &str = "durable";

/// `ghosts_faultinject` items that manage the process-global plan rather
/// than probe it. Installing, clearing or draining plans from library
/// code would let a library rearm faults behind the harness's back, so
/// these are reserved for binaries, benches and tests.
const FAULT_PLAN_IDENTS: [&str; 5] = ["install", "clear", "drain_fires", "FaultPlan", "FaultRule"];

/// Which target a file belongs to inside its crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    /// Library source (`src/`, excluding `src/bin/`).
    Src,
    /// Binary source (`src/bin/`).
    Bin,
    /// Integration tests (`tests/`).
    Tests,
    /// Criterion benches (`benches/`).
    Benches,
    /// Examples (`examples/`).
    Examples,
    /// Anything else (build scripts, fixtures).
    Other,
}

/// Where a file sits in the workspace.
#[derive(Debug, Clone)]
pub struct FileClass {
    /// Crate name without the `ghosts-` prefix (`core`, `stats`, …),
    /// `vendor/<name>` for vendored shims, or `""` for workspace-root
    /// tests/examples.
    pub crate_name: String,
    /// The target section.
    pub section: Section,
    /// Repo-relative path with `/` separators.
    pub rel_path: String,
    /// Whether this file is a crate root (`src/lib.rs` or `src/main.rs`).
    pub is_crate_root: bool,
}

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Repo-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Rule identifier (stable, used by `lint: allow(...)`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Rule ids (the vocabulary `lint: allow(...)` accepts).
pub const RULE_HASH: &str = "hash-collections";
/// Float `==`/`!=` comparisons outside the approved helpers.
pub const RULE_FLOAT_EQ: &str = "float-eq";
/// Wall-clock or OS randomness in deterministic crates.
pub const RULE_NONDETERMINISM: &str = "nondeterminism";
/// `unwrap()`/`expect()` in library code outside tests.
pub const RULE_UNWRAP: &str = "no-unwrap";
/// Missing `#![forbid(unsafe_code)]` in a crate root.
pub const RULE_FORBID_UNSAFE: &str = "forbid-unsafe";
/// Estimation entry points not calling the runtime validators.
pub const RULE_INVARIANT: &str = "invariant-usage";
/// Vendored shim public API drifted from the checked-in lock.
pub const RULE_API_DRIFT: &str = "api-drift";
/// Direct `Instant`/`SystemTime` outside `ghosts_obs::wall`, or a
/// `WallClock` constructed inside deterministic library code.
pub const RULE_OBS_CLOCK: &str = "obs-clock";
/// Fault-injection probes outside the documented fault-site crates, or
/// fault-plan management (`install`/`clear`/`drain_fires`/plan types) in
/// library code.
pub const RULE_FAULT_SITES: &str = "fault-sites";
/// Socket types (`TcpListener`/`TcpStream`/`UdpSocket`) outside the
/// serving layer's crates.
pub const RULE_NET_IO: &str = "net-io";
/// `unwrap`/`expect`/`panic!`-family/unguarded indexing reachable from a
/// public estimation or serve entrypoint (interprocedural; see
/// [`crate::interproc`]).
pub const RULE_PANIC_PATH: &str = "panic-path";
/// Nested lock acquisition without a declared order, or a guard live
/// across `par_map` / socket I/O (interprocedural).
pub const RULE_LOCK_DISCIPLINE: &str = "lock-discipline";
/// Unchecked `+`/`*`/`<<` on `u32`/`u64` counting values in the
/// estimation crates.
pub const RULE_COUNTING_OVERFLOW: &str = "counting-overflow";
/// Event name emitted but missing from the `ghosts-events` registry
/// (`ghosts_obs::schema::EVENT_NAMES`), or registered but never emitted.
pub const RULE_EVENT_EXHAUSTIVENESS: &str = "event-exhaustiveness";
/// A `lint: allow(...)` comment that no longer suppresses any finding.
pub const RULE_STALE_ALLOW: &str = "stale-allow";
/// Raw file creation (`File::create`, `fs::write`, `OpenOptions`)
/// outside `ghosts_durable`'s atomic writer: a crash mid-write leaves a
/// torn file at a final path.
pub const RULE_FS_DISCIPLINE: &str = "fs-discipline";

/// Every rule id the `lint: allow(...)` escape hatch accepts. The
/// stale-allow check reports allows naming anything else as unknown.
pub const KNOWN_RULES: [&str; 16] = [
    RULE_HASH,
    RULE_FLOAT_EQ,
    RULE_NONDETERMINISM,
    RULE_UNWRAP,
    RULE_FORBID_UNSAFE,
    RULE_INVARIANT,
    RULE_API_DRIFT,
    RULE_OBS_CLOCK,
    RULE_FAULT_SITES,
    RULE_NET_IO,
    RULE_PANIC_PATH,
    RULE_LOCK_DISCIPLINE,
    RULE_COUNTING_OVERFLOW,
    RULE_EVENT_EXHAUSTIVENESS,
    RULE_STALE_ALLOW,
    RULE_FS_DISCIPLINE,
];

/// One `lint: allow(<rule>)` site, with a used-flag so the stale-allow
/// check can report suppressions that no longer suppress anything.
#[derive(Debug, Clone)]
pub struct AllowSite {
    /// Line the comment sits on (the allow covers this line and the
    /// next).
    pub line: usize,
    /// The rule id named in the comment (`sorted` maps to
    /// `hash-collections`).
    pub rule: String,
    /// Set when the allow actually suppressed a finding this run.
    pub used: Cell<bool>,
}

/// All justification comments of one file, with usage tracking.
///
/// Rules must call [`Allows::check`] only at a site that would otherwise
/// fire — a `true` return both suppresses the finding and marks the
/// allow as earning its keep.
#[derive(Debug, Clone, Default)]
pub struct Allows {
    sites: Vec<AllowSite>,
}

impl Allows {
    /// Extracts allow sites from a token stream (the `lint:` comment
    /// grammar of the module docs).
    pub fn from_tokens(tokens: &[Token]) -> Allows {
        Allows {
            sites: allow_sites(tokens),
        }
    }

    /// Rebuilds from pre-extracted `(line, rule)` pairs (the parse cache
    /// stores those; usage flags must start fresh each run).
    pub fn from_sites(sites: &[(usize, String)]) -> Allows {
        Allows {
            sites: sites
                .iter()
                .map(|(line, rule)| AllowSite {
                    line: *line,
                    rule: rule.clone(),
                    used: Cell::new(false),
                })
                .collect(),
        }
    }

    /// Whether a finding of `rule` at `line` is suppressed; marks the
    /// matching allow(s) used.
    pub fn check(&self, line: usize, rule: &str) -> bool {
        let mut hit = false;
        for site in &self.sites {
            if site.rule == rule && (site.line == line || site.line + 1 == line) {
                site.used.set(true);
                hit = true;
            }
        }
        hit
    }

    /// The sites, for the stale-allow sweep.
    pub fn sites(&self) -> &[AllowSite] {
        &self.sites
    }
}

/// Lints one tokenized file. `tokens` must come from
/// [`crate::lexer::tokenize`] on the file's full text.
pub fn lint_tokens(tokens: &[Token], class: &FileClass) -> Vec<Violation> {
    let allows = Allows::from_tokens(tokens);
    let test_lines = cfg_test_lines(tokens);
    lint_tokens_with(tokens, class, &allows, &test_lines)
}

/// Like [`lint_tokens`], but with caller-provided allow sites and test
/// regions so the workspace pipeline can reuse cached parses and carry
/// allow-usage flags through to the stale-allow sweep.
pub fn lint_tokens_with(
    tokens: &[Token],
    class: &FileClass,
    allows: &Allows,
    test_lines: &BTreeSet<usize>,
) -> Vec<Violation> {
    let mut out = Vec::new();

    rule_hash_collections(tokens, class, allows, &mut out);
    rule_float_eq(tokens, class, allows, test_lines, &mut out);
    rule_nondeterminism(tokens, class, allows, &mut out);
    rule_obs_clock(tokens, class, allows, test_lines, &mut out);
    rule_no_unwrap(tokens, class, allows, test_lines, &mut out);
    rule_forbid_unsafe(tokens, class, &mut out);
    rule_invariant_usage(tokens, class, test_lines, &mut out);
    rule_fault_sites(tokens, class, allows, test_lines, &mut out);
    rule_net_io(tokens, class, allows, test_lines, &mut out);
    rule_fs_discipline(tokens, class, allows, test_lines, &mut out);

    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Lines carrying a `lint:` marker, with the rules the marker allows. The
/// marker covers its own line and the next line, so both trailing
/// comments and full-line comments above the code work.
fn allow_sites(tokens: &[Token]) -> Vec<AllowSite> {
    let mut out = Vec::new();
    for token in tokens {
        let TokenKind::Comment(text) = &token.kind else {
            continue;
        };
        // Doc comments only *describe* the directive syntax; a
        // suppression must be a plain `//` comment.
        if text.starts_with("///") || text.starts_with("//!") {
            continue;
        }
        let Some(idx) = text.find("lint:") else {
            continue;
        };
        let directive = text[idx + "lint:".len()..].trim();
        if directive.starts_with("sorted") {
            out.push(AllowSite {
                line: token.line,
                rule: RULE_HASH.to_string(),
                used: Cell::new(false),
            });
        } else if let Some(rest) = directive.strip_prefix("allow(") {
            if let Some(end) = rest.find(')') {
                let rule = rest[..end].trim();
                // Rule ids are kebab-case; anything else (`<rule>`, `...`)
                // is prose quoting the syntax, not a suppression.
                if !rule.is_empty() && rule.chars().all(|c| c.is_ascii_lowercase() || c == '-') {
                    out.push(AllowSite {
                        line: token.line,
                        rule: rule.to_string(),
                        used: Cell::new(false),
                    });
                }
            }
        }
    }
    out
}

/// The set of lines inside `#[cfg(test)]` items (typically the in-file
/// `mod tests { … }` block).
pub fn cfg_test_lines(tokens: &[Token]) -> BTreeSet<usize> {
    let mut lines = BTreeSet::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_punct('#') {
            i += 1;
            continue;
        }
        // Parse the attribute `#[ ... ]` and check it mentions cfg + test.
        let mut j = i + 1;
        if j < tokens.len() && tokens[j].is_punct('!') {
            j += 1; // inner attribute
        }
        if j >= tokens.len() || !tokens[j].is_punct('[') {
            i += 1;
            continue;
        }
        let attr_start = j + 1;
        let mut depth = 1usize;
        j += 1;
        let (mut saw_cfg, mut saw_test) = (false, false);
        while j < tokens.len() && depth > 0 {
            match &tokens[j].kind {
                TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(']') => depth -= 1,
                TokenKind::Ident(s) if j >= attr_start => {
                    saw_cfg |= s == "cfg";
                    saw_test |= s == "test";
                }
                _ => {}
            }
            j += 1;
        }
        if !(saw_cfg && saw_test) {
            i = j;
            continue;
        }
        // Skip any further attributes, then swallow the annotated item:
        // everything to the matching `}` of its first brace (or to `;`).
        while j + 1 < tokens.len() && tokens[j].is_punct('#') && tokens[j + 1].is_punct('[') {
            let mut d = 1usize;
            j += 2;
            while j < tokens.len() && d > 0 {
                match tokens[j].kind {
                    TokenKind::Punct('[') => d += 1,
                    TokenKind::Punct(']') => d -= 1,
                    _ => {}
                }
                j += 1;
            }
        }
        let item_start_line = tokens.get(j).map_or(0, |t| t.line);
        let mut brace_depth = 0usize;
        let mut entered = false;
        while j < tokens.len() {
            match tokens[j].kind {
                TokenKind::Punct('{') => {
                    brace_depth += 1;
                    entered = true;
                }
                TokenKind::Punct('}') => {
                    brace_depth = brace_depth.saturating_sub(1);
                    if entered && brace_depth == 0 {
                        break;
                    }
                }
                TokenKind::Punct(';') if !entered => break,
                _ => {}
            }
            j += 1;
        }
        let item_end_line = tokens.get(j).map_or(usize::MAX, |t| t.line);
        for line in item_start_line..=item_end_line {
            lines.insert(line);
        }
        i = j + 1;
    }
    lines
}

fn rule_hash_collections(
    tokens: &[Token],
    class: &FileClass,
    allows: &Allows,
    out: &mut Vec<Violation>,
) {
    if !ESTIMATION_CRATES.contains(&class.crate_name.as_str())
        || !matches!(class.section, Section::Src | Section::Benches)
    {
        return;
    }
    for token in tokens {
        let Some(name) = token.ident() else { continue };
        if (name == "HashMap" || name == "HashSet") && !allows.check(token.line, RULE_HASH) {
            out.push(Violation {
                file: class.rel_path.clone(),
                line: token.line,
                rule: RULE_HASH,
                message: format!(
                    "{name} in an estimation crate: iteration order is \
                     nondeterministic and can reach AIC/BIC selection — use \
                     BTreeMap/BTreeSet, or justify with `// lint: sorted`"
                ),
            });
        }
    }
}

fn rule_float_eq(
    tokens: &[Token],
    class: &FileClass,
    allows: &Allows,
    test_lines: &BTreeSet<usize>,
    out: &mut Vec<Violation>,
) {
    let in_scope = (DETERMINISTIC_CRATES.contains(&class.crate_name.as_str())
        || class.crate_name == "bench")
        && matches!(class.section, Section::Src | Section::Bin)
        && !FLOAT_EQ_HELPERS.contains(&class.rel_path.as_str());
    if !in_scope {
        return;
    }
    let float_operand = |idx: usize, forward: bool| -> bool {
        // A float literal right at the operand position, optionally behind
        // a unary minus, or a `f64::`/`f32::` associated constant.
        let get = |k: usize| tokens.get(k);
        if forward {
            let mut k = idx;
            if get(k).is_some_and(|t| t.is_punct('-')) {
                k += 1;
            }
            match get(k).map(|t| &t.kind) {
                Some(TokenKind::Float) => true,
                Some(TokenKind::Ident(s)) if s == "f64" || s == "f32" => {
                    get(k + 1).is_some_and(|t| t.is_punct(':'))
                }
                _ => false,
            }
        } else {
            matches!(get(idx).map(|t| &t.kind), Some(TokenKind::Float))
        }
    };
    let mut i = 0usize;
    while i + 1 < tokens.len() {
        let (a, b) = (&tokens[i], &tokens[i + 1]);
        let is_eq = a.is_punct('=') && b.is_punct('=');
        let is_ne = a.is_punct('!') && b.is_punct('=');
        if !(is_eq || is_ne) {
            i += 1;
            continue;
        }
        // Not a comparison: `<=`, `>=`, `+=`, `=>`, `..=` and friends.
        if is_eq
            && i > 0
            && matches!(
                tokens[i - 1].kind,
                TokenKind::Punct('<')
                    | TokenKind::Punct('>')
                    | TokenKind::Punct('!')
                    | TokenKind::Punct('=')
                    | TokenKind::Punct('+')
                    | TokenKind::Punct('-')
                    | TokenKind::Punct('*')
                    | TokenKind::Punct('/')
                    | TokenKind::Punct('%')
                    | TokenKind::Punct('&')
                    | TokenKind::Punct('|')
                    | TokenKind::Punct('^')
                    | TokenKind::Punct('.')
            )
        {
            i += 1;
            continue;
        }
        if tokens.get(i + 2).is_some_and(|t| t.is_punct('=')) {
            i += 1;
            continue;
        }
        let line = a.line;
        let float_involved = (i > 0 && float_operand(i - 1, false)) || float_operand(i + 2, true);
        if float_involved && !test_lines.contains(&line) && !allows.check(line, RULE_FLOAT_EQ) {
            out.push(Violation {
                file: class.rel_path.clone(),
                line,
                rule: RULE_FLOAT_EQ,
                message: String::from(
                    "exact float comparison: use ghosts_stats::approx \
                     (bits_eq / rel_close / is_exact_zero), or justify with \
                     `// lint: allow(float-eq) <reason>`",
                ),
            });
        }
        i += 2;
    }
}

fn rule_nondeterminism(
    tokens: &[Token],
    class: &FileClass,
    allows: &Allows,
    out: &mut Vec<Violation>,
) {
    if !DETERMINISTIC_CRATES.contains(&class.crate_name.as_str())
        || !matches!(class.section, Section::Src)
        || class.rel_path == WALL_CLOCK_FILE
    {
        return;
    }
    for token in tokens {
        let Some(name) = token.ident() else { continue };
        if matches!(name, "SystemTime" | "Instant" | "thread_rng")
            && !allows.check(token.line, RULE_NONDETERMINISM)
        {
            out.push(Violation {
                file: class.rel_path.clone(),
                line: token.line,
                rule: RULE_NONDETERMINISM,
                message: format!(
                    "{name} in a deterministic crate: results must be a pure \
                     function of the seed (use ghosts_stats::rng::component_rng \
                     for randomness; timing belongs in the bench harness)"
                ),
            });
        }
    }
}

/// Clock access is a capability handed out by `ghosts_obs`: raw
/// `Instant`/`SystemTime` reads are confined to [`WALL_CLOCK_FILE`] so that
/// every timestamp in the system is attributable to exactly one clock
/// (deterministic logical, or the explicitly-volatile wall clock). Unlike
/// [`rule_nondeterminism`] this also covers binaries and benches — they may
/// time things, but through `WallClock`, never by calling the OS directly.
fn rule_obs_clock(
    tokens: &[Token],
    class: &FileClass,
    allows: &Allows,
    test_lines: &BTreeSet<usize>,
    out: &mut Vec<Violation>,
) {
    if class.crate_name.is_empty()
        || class.crate_name.starts_with("vendor/")
        || class.rel_path == WALL_CLOCK_FILE
        || !matches!(
            class.section,
            Section::Src | Section::Bin | Section::Benches
        )
    {
        return;
    }
    // `WallClock` itself is part of the capability scheme: only binaries
    // and benches may construct one. Deterministic library code takes the
    // recorder's clock (a `Scope` or `Arc<dyn Clock>`) from its caller.
    let wall_clock_banned = DETERMINISTIC_CRATES.contains(&class.crate_name.as_str())
        && class.crate_name != "obs"
        && matches!(class.section, Section::Src);
    for token in tokens {
        let Some(name) = token.ident() else { continue };
        if test_lines.contains(&token.line) {
            continue;
        }
        // Only consult (and thereby mark) the allow at a would-be firing
        // site — otherwise unrelated allows read as used.
        let fires =
            matches!(name, "Instant" | "SystemTime") || (name == "WallClock" && wall_clock_banned);
        if !fires || allows.check(token.line, RULE_OBS_CLOCK) {
            continue;
        }
        match name {
            "Instant" | "SystemTime" => out.push(Violation {
                file: class.rel_path.clone(),
                line: token.line,
                rule: RULE_OBS_CLOCK,
                message: format!(
                    "direct {name} use: wall-clock reads go through ghosts_obs \
                     (WallClock in binaries/benches, the recorder's Clock in \
                     libraries)"
                ),
            }),
            "WallClock" if wall_clock_banned => out.push(Violation {
                file: class.rel_path.clone(),
                line: token.line,
                rule: RULE_OBS_CLOCK,
                message: String::from(
                    "WallClock in deterministic library code: accept the \
                     recorder's clock (a Scope or Arc<dyn Clock>) from the \
                     caller — only binaries and benches construct wall clocks",
                ),
            }),
            _ => {}
        }
    }
}

fn rule_no_unwrap(
    tokens: &[Token],
    class: &FileClass,
    allows: &Allows,
    test_lines: &BTreeSet<usize>,
    out: &mut Vec<Violation>,
) {
    if !DETERMINISTIC_CRATES.contains(&class.crate_name.as_str())
        || !matches!(class.section, Section::Src)
    {
        return;
    }
    for i in 0..tokens.len().saturating_sub(2) {
        if !tokens[i].is_punct('.') {
            continue;
        }
        let Some(name) = tokens[i + 1].ident() else {
            continue;
        };
        if (name == "unwrap" || name == "expect")
            && tokens[i + 2].is_punct('(')
            && !test_lines.contains(&tokens[i + 1].line)
            && !allows.check(tokens[i + 1].line, RULE_UNWRAP)
        {
            out.push(Violation {
                file: class.rel_path.clone(),
                line: tokens[i + 1].line,
                rule: RULE_UNWRAP,
                message: format!(
                    "{name}() in library code: propagate a Result, or state \
                     the invariant with `// lint: allow(no-unwrap) <why it \
                     cannot fail>`"
                ),
            });
        }
    }
}

fn rule_forbid_unsafe(tokens: &[Token], class: &FileClass, out: &mut Vec<Violation>) {
    if !class.is_crate_root {
        return;
    }
    // Look for `#![forbid(unsafe_code)]` — `#` `!` `[` forbid `(`
    // unsafe_code `)` `]`, possibly with other lints in the same list.
    let mut found = false;
    for i in 0..tokens.len().saturating_sub(2) {
        if tokens[i].is_punct('#') && tokens[i + 1].is_punct('!') && tokens[i + 2].is_punct('[') {
            let mut j = i + 3;
            let mut depth = 1usize;
            let (mut saw_forbid, mut saw_unsafe) = (false, false);
            while j < tokens.len() && depth > 0 {
                match &tokens[j].kind {
                    TokenKind::Punct('[') => depth += 1,
                    TokenKind::Punct(']') => depth -= 1,
                    TokenKind::Ident(s) => {
                        saw_forbid |= s == "forbid" || s == "deny";
                        saw_unsafe |= s == "unsafe_code";
                    }
                    _ => {}
                }
                j += 1;
            }
            if saw_forbid && saw_unsafe {
                found = true;
                break;
            }
        }
    }
    if !found {
        out.push(Violation {
            file: class.rel_path.clone(),
            line: 1,
            rule: RULE_FORBID_UNSAFE,
            message: String::from("crate root is missing `#![forbid(unsafe_code)]`"),
        });
    }
}

fn rule_invariant_usage(
    tokens: &[Token],
    class: &FileClass,
    test_lines: &BTreeSet<usize>,
    out: &mut Vec<Violation>,
) {
    if !INVARIANT_CALLERS.contains(&class.rel_path.as_str()) {
        return;
    }
    let called = tokens.windows(3).any(|w| {
        w[0].ident() == Some("invariant")
            && w[1].is_punct(':')
            && w[2].is_punct(':')
            && !test_lines.contains(&w[0].line)
    });
    if !called {
        out.push(Violation {
            file: class.rel_path.clone(),
            line: 1,
            rule: RULE_INVARIANT,
            message: String::from(
                "estimation entry point never calls the runtime validators \
                 (ghosts_core::invariant::check_*)",
            ),
        });
    }
}

/// Every mention of `ghosts_faultinject::<item>` (paths and `use` lists)
/// is classified as either plan management ([`FAULT_PLAN_IDENTS`]) or a
/// probe. Management is reserved for binaries/benches; probes may appear
/// only in the [`FAULT_SITE_CRATES`]. Tests are exempt — they serialise
/// plan installs behind a lock.
fn rule_fault_sites(
    tokens: &[Token],
    class: &FileClass,
    allows: &Allows,
    test_lines: &BTreeSet<usize>,
    out: &mut Vec<Violation>,
) {
    if class.crate_name == "faultinject"
        || class.crate_name.starts_with("vendor/")
        || !matches!(
            class.section,
            Section::Src | Section::Bin | Section::Benches
        )
    {
        return;
    }
    let mut flag = |line: usize, item: &str| {
        if test_lines.contains(&line) {
            return;
        }
        // Classify first; the allow is consulted (and marked used) only
        // when a finding would actually fire.
        if FAULT_PLAN_IDENTS.contains(&item) {
            if matches!(class.section, Section::Src) {
                if allows.check(line, RULE_FAULT_SITES) {
                    return;
                }
                out.push(Violation {
                    file: class.rel_path.clone(),
                    line,
                    rule: RULE_FAULT_SITES,
                    message: format!(
                        "ghosts_faultinject::{item} in library code: fault \
                         plans are installed and drained only by binaries, \
                         benches and tests"
                    ),
                });
            }
        } else if !FAULT_SITE_CRATES.contains(&class.crate_name.as_str()) {
            if allows.check(line, RULE_FAULT_SITES) {
                return;
            }
            out.push(Violation {
                file: class.rel_path.clone(),
                line,
                rule: RULE_FAULT_SITES,
                message: format!(
                    "ghosts_faultinject::{item} outside the documented \
                     fault-site crates ({}): declare new fault points there \
                     and record them in DESIGN.md §11",
                    FAULT_SITE_CRATES.join(", ")
                ),
            });
        }
    };
    let mut i = 0usize;
    while i + 2 < tokens.len() {
        if tokens[i].ident() != Some("ghosts_faultinject")
            || !tokens[i + 1].is_punct(':')
            || !tokens[i + 2].is_punct(':')
        {
            i += 1;
            continue;
        }
        let mut j = i + 3;
        if tokens.get(j).is_some_and(|t| t.is_punct('{')) {
            // `use ghosts_faultinject::{a, b, …};` — classify each name.
            let mut depth = 1usize;
            j += 1;
            while j < tokens.len() && depth > 0 {
                match &tokens[j].kind {
                    TokenKind::Punct('{') => depth += 1,
                    TokenKind::Punct('}') => depth -= 1,
                    TokenKind::Ident(name) => flag(tokens[j].line, name),
                    _ => {}
                }
                j += 1;
            }
        } else if let Some(name) = tokens.get(j).and_then(|t| t.ident()) {
            flag(tokens[j].line, name);
            j += 1;
        }
        i = j;
    }
}

/// Socket I/O is a capability of the serving layer: any mention of the
/// `std::net` socket types outside [`NET_IO_CRATES`] means estimation
/// code has grown a network dependency. Tests and benches are exempt —
/// they spin up loopback servers — as are vendored shims and
/// workspace-root files.
fn rule_net_io(
    tokens: &[Token],
    class: &FileClass,
    allows: &Allows,
    test_lines: &BTreeSet<usize>,
    out: &mut Vec<Violation>,
) {
    if class.crate_name.is_empty()
        || class.crate_name.starts_with("vendor/")
        || NET_IO_CRATES.contains(&class.crate_name.as_str())
        || !matches!(class.section, Section::Src | Section::Bin)
    {
        return;
    }
    for token in tokens {
        let Some(name) = token.ident() else { continue };
        if matches!(name, "TcpListener" | "TcpStream" | "UdpSocket")
            && !test_lines.contains(&token.line)
            && !allows.check(token.line, RULE_NET_IO)
        {
            out.push(Violation {
                file: class.rel_path.clone(),
                line: token.line,
                rule: RULE_NET_IO,
                message: format!(
                    "{name} outside the serving layer (crates: {}): \
                     estimation code stays pure over in-memory tables — \
                     route socket I/O through ghosts-serve, or justify with \
                     `// lint: allow(net-io) <reason>`",
                    NET_IO_CRATES.join(", ")
                ),
            });
        }
    }
}

/// Crash-safe file writes: raw `File::create`/`File::create_new`/
/// `fs::write`/`OpenOptions` in library or binary code outside
/// [`FS_DISCIPLINE_CRATE`] mean a kill at the wrong instant leaves a torn
/// file at its final path. Durable artifacts go through
/// `ghosts_durable::atomic_write`; reads (`File::open`, `fs::read*`) are
/// untouched. Tests and benches plant corrupt fixtures on purpose and are
/// exempt, as are vendored shims and workspace-root files.
fn rule_fs_discipline(
    tokens: &[Token],
    class: &FileClass,
    allows: &Allows,
    test_lines: &BTreeSet<usize>,
    out: &mut Vec<Violation>,
) {
    if class.crate_name == FS_DISCIPLINE_CRATE
        || class.crate_name.is_empty()
        || class.crate_name.starts_with("vendor/")
        || !matches!(class.section, Section::Src | Section::Bin)
    {
        return;
    }
    let mut flag = |line: usize, what: &str| {
        if test_lines.contains(&line) || allows.check(line, RULE_FS_DISCIPLINE) {
            return;
        }
        out.push(Violation {
            file: class.rel_path.clone(),
            line,
            rule: RULE_FS_DISCIPLINE,
            message: format!(
                "{what} outside ghosts_durable: a crash mid-write leaves a \
                 torn file at its final path — write through \
                 ghosts_durable::atomic_write (temp + fsync + rename), or \
                 justify with `// lint: allow(fs-discipline) <reason>`"
            ),
        });
    };
    let mut i = 0usize;
    while i < tokens.len() {
        let Some(name) = tokens[i].ident() else {
            i += 1;
            continue;
        };
        if name == "OpenOptions" {
            flag(tokens[i].line, "OpenOptions");
        } else if (name == "File" || name == "fs")
            && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            if let Some(method) = tokens.get(i + 3).and_then(|t| t.ident()) {
                match (name, method) {
                    ("File", "create") | ("File", "create_new") | ("fs", "write") => {
                        flag(tokens[i + 3].line, &format!("{name}::{method}"));
                    }
                    _ => {}
                }
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn class(crate_name: &str, section: Section, rel: &str) -> FileClass {
        FileClass {
            crate_name: crate_name.into(),
            section,
            rel_path: rel.into(),
            is_crate_root: false,
        }
    }

    fn lint(src: &str, c: &FileClass) -> Vec<Violation> {
        lint_tokens(&tokenize(src), c)
    }

    #[test]
    fn cfg_test_region_detection() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let lines = cfg_test_lines(&tokenize(src));
        assert!(lines.contains(&3) && lines.contains(&4) && lines.contains(&5));
        assert!(!lines.contains(&1) && !lines.contains(&6));
    }

    #[test]
    fn escape_hatch_applies_to_own_and_next_line() {
        let c = class("core", Section::Src, "crates/core/src/x.rs");
        let trailing = "use std::collections::HashMap; // lint: sorted\n";
        assert!(lint(trailing, &c).is_empty());
        let above = "// lint: sorted probe-only\nuse std::collections::HashMap;\n";
        assert!(lint(above, &c).is_empty());
        let missing = "use std::collections::HashMap;\n";
        assert_eq!(lint(missing, &c).len(), 1);
    }

    #[test]
    fn float_eq_ignores_compound_operators_and_ints() {
        let c = class("core", Section::Src, "crates/core/src/x.rs");
        for ok in [
            "fn f(x: f64) -> bool { x <= 1.0 }",
            "fn f(x: f64) -> f64 { let mut y = 0.0; y += 1.0; y }",
            "fn f(x: usize) -> bool { x == 1 }",
            "fn f(x: f64) -> f64 { if x > 2.0 { x } else { 2.0 } }",
        ] {
            assert!(lint(ok, &c).is_empty(), "false positive on: {ok}");
        }
        for bad in [
            "fn f(x: f64) -> bool { x == 1.0 }",
            "fn f(x: f64) -> bool { 0.5 != x }",
            "fn f(x: f64) -> bool { x == -1.0 }",
            "fn f(x: f64) -> bool { x == f64::INFINITY }",
        ] {
            let v = lint(bad, &c);
            assert_eq!(v.len(), 1, "missed: {bad}");
            assert_eq!(v[0].rule, RULE_FLOAT_EQ);
        }
    }

    #[test]
    fn unwrap_rule_spares_tests_and_unwrap_or() {
        let c = class("net", Section::Src, "crates/net/src/x.rs");
        let src = "\
fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }
fn g(x: Option<u32>) -> u32 { x.unwrap() }
#[cfg(test)]
mod tests {
    fn h(x: Option<u32>) -> u32 { x.unwrap() }
}
";
        let v = lint(src, &c);
        assert_eq!(v.len(), 1);
        assert_eq!((v[0].line, v[0].rule), (2, RULE_UNWRAP));
    }

    #[test]
    fn nondeterminism_only_in_deterministic_crates() {
        let src = "fn t() { let _ = std::time::Instant::now(); }";
        // Deterministic library source: both the nondeterminism rule and
        // the clock-capability rule object.
        let in_sim = class("sim", Section::Src, "crates/sim/src/x.rs");
        let rules: Vec<&str> = lint(src, &in_sim).iter().map(|v| v.rule).collect();
        assert_eq!(rules, vec![RULE_NONDETERMINISM, RULE_OBS_CLOCK]);
        // The bench harness may time things — but through WallClock, not
        // by calling the OS clock directly.
        let in_bench = class("bench", Section::Bin, "crates/bench/src/bin/repro.rs");
        let rules: Vec<&str> = lint(src, &in_bench).iter().map(|v| v.rule).collect();
        assert_eq!(rules, vec![RULE_OBS_CLOCK]);
        let wall = "fn t(w: &WallClock) -> u64 { w.now() }";
        assert!(lint(wall, &in_bench).is_empty());
    }

    #[test]
    fn obs_clock_spares_the_wall_module_and_bans_wallclock_in_libs() {
        // The one sanctioned Instant site.
        let src = "fn t() { let _ = std::time::Instant::now(); }";
        let in_wall = class("obs", Section::Src, "crates/obs/src/wall.rs");
        assert!(lint(src, &in_wall).is_empty());
        // Elsewhere in the obs crate it is still banned.
        let in_obs = class("obs", Section::Src, "crates/obs/src/clock.rs");
        assert!(!lint(src, &in_obs).is_empty());
        // WallClock is a binary/bench capability, not a library one…
        let wall = "fn t(w: &WallClock) -> u64 { w.now() }";
        let in_core = class("core", Section::Src, "crates/core/src/x.rs");
        let rules: Vec<&str> = lint(wall, &in_core).iter().map(|v| v.rule).collect();
        assert_eq!(rules, vec![RULE_OBS_CLOCK]);
        // …except in the obs crate itself, which defines and re-exports it.
        let in_obs_lib = class("obs", Section::Src, "crates/obs/src/lib.rs");
        assert!(lint(wall, &in_obs_lib).is_empty());
        // Vendored shims and tests are out of scope.
        let in_vendor = class(
            "vendor/criterion",
            Section::Src,
            "vendor/criterion/src/lib.rs",
        );
        assert!(lint(src, &in_vendor).is_empty());
        let in_tests = class("core", Section::Tests, "crates/core/tests/x.rs");
        assert!(lint(src, &in_tests).is_empty());
    }

    #[test]
    fn forbid_unsafe_checks_crate_roots_only() {
        let mut c = class("net", Section::Src, "crates/net/src/lib.rs");
        c.is_crate_root = true;
        assert_eq!(lint("pub fn f() {}", &c).len(), 1);
        assert!(lint("#![forbid(unsafe_code)]\npub fn f() {}", &c).is_empty());
        let inner = class("net", Section::Src, "crates/net/src/other.rs");
        assert!(lint("pub fn f() {}", &inner).is_empty());
    }

    #[test]
    fn invariant_usage_required_in_entry_points() {
        let c = class("core", Section::Src, "crates/core/src/fit.rs");
        let bad = "pub fn fit_llm() {}";
        let v = lint(bad, &c);
        assert!(v.iter().any(|v| v.rule == RULE_INVARIANT));
        let good = "use crate::invariant;\npub fn fit_llm(t: &T) { invariant::check_table(t); }";
        assert!(lint(good, &c).iter().all(|v| v.rule != RULE_INVARIANT));
    }

    #[test]
    fn fault_probes_confined_to_site_crates() {
        let probe = "fn f() { let _ = ghosts_faultinject::fire(\"x.y\"); }";
        let in_core = class("core", Section::Src, "crates/core/src/x.rs");
        assert!(lint(probe, &in_core).is_empty());
        let in_net = class("net", Section::Src, "crates/net/src/x.rs");
        let v = lint(probe, &in_net);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RULE_FAULT_SITES);
    }

    #[test]
    fn fault_plan_management_confined_to_binaries_and_tests() {
        let src = "fn f() { ghosts_faultinject::clear(); }";
        let in_core = class("core", Section::Src, "crates/core/src/x.rs");
        assert_eq!(lint(src, &in_core).len(), 1);
        let in_bin = class("bench", Section::Bin, "crates/bench/src/bin/repro.rs");
        assert!(lint(src, &in_bin).is_empty());
        // Inside #[cfg(test)] even library files may manage plans.
        let test_mod = format!("#[cfg(test)]\nmod tests {{\n{src}\n}}\n");
        assert!(lint(&test_mod, &in_core).is_empty());
    }

    #[test]
    fn net_io_confined_to_the_serving_layer() {
        let src = "fn f() { let _ = std::net::TcpStream::connect(\"x\"); }";
        // The serving layer owns sockets.
        let in_serve = class("serve", Section::Src, "crates/serve/src/server.rs");
        assert!(lint(src, &in_serve).is_empty());
        // Everywhere else, library and binary code must not open sockets…
        let in_core = class("core", Section::Src, "crates/core/src/x.rs");
        let v = lint(src, &in_core);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RULE_NET_IO);
        let in_bin = class("bench", Section::Bin, "crates/bench/src/bin/repro.rs");
        assert_eq!(lint(src, &in_bin).len(), 1);
        // …but tests drive loopback servers freely.
        let in_tests = class("core", Section::Tests, "crates/core/tests/x.rs");
        assert!(lint(src, &in_tests).is_empty());
        // And the escape hatch works as everywhere else.
        let allowed = format!("// lint: allow(net-io) diagnostics only\n{src}");
        assert!(lint(&allowed, &in_core).is_empty());
    }

    #[test]
    fn strings_and_comments_do_not_trip_rules() {
        let c = class("core", Section::Src, "crates/core/src/x.rs");
        let src = r#"
/// Docs may say HashMap and x == 1.0 freely.
fn f() -> &'static str { "HashMap .unwrap() == 1.0 Instant" }
"#;
        assert!(lint(src, &c).is_empty());
    }
}
