//! Workspace discovery: find every `.rs` file ghost-lint should see and
//! classify it with a [`FileClass`].
//!
//! No external walker crates (the build is offline), so this is a plain
//! recursive `std::fs` traversal with a deny-list.

use crate::rules::{FileClass, Section};
use std::fs;
use std::path::{Path, PathBuf};

/// Directories never descended into, relative names.
const SKIP_DIRS: [&str; 4] = ["target", ".git", "results", "data"];

/// Path fragments excluded from linting: the lint self-test fixtures are
/// deliberate violations.
const SKIP_FRAGMENTS: [&str; 1] = ["crates/xtask/tests/fixtures"];

/// Discovers every lintable `.rs` file under `root`, classified and sorted
/// by path (deterministic output order).
pub fn discover(root: &Path) -> std::io::Result<Vec<(PathBuf, FileClass)>> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort_by(|a, b| a.1.rel_path.cmp(&b.1.rel_path));
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<(PathBuf, FileClass)>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = rel_path(root, &path);
            if SKIP_FRAGMENTS.iter().any(|f| rel.starts_with(f)) {
                continue;
            }
            let class = classify(&rel);
            out.push((path, class));
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Classifies a repo-relative path (`/`-separated).
pub fn classify(rel: &str) -> FileClass {
    let parts: Vec<&str> = rel.split('/').collect();
    let (crate_name, rest): (String, &[&str]) = match parts.as_slice() {
        ["crates", name, rest @ ..] => ((*name).to_string(), rest),
        ["vendor", name, rest @ ..] => (format!("vendor/{name}"), rest),
        rest => (String::new(), rest),
    };
    let section = match rest {
        ["src", "bin", ..] => Section::Bin,
        ["src", ..] => Section::Src,
        ["tests", ..] => Section::Tests,
        ["benches", ..] => Section::Benches,
        ["examples", ..] => Section::Examples,
        _ => Section::Other,
    };
    let is_crate_root =
        !crate_name.is_empty() && (rest == ["src", "lib.rs"] || rest == ["src", "main.rs"]);
    FileClass {
        crate_name,
        section,
        rel_path: rel.to_string(),
        is_crate_root,
    }
}

/// Locates the workspace root: walks up from this crate's manifest dir.
pub fn workspace_root() -> PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .find(|p| p.join("Cargo.toml").is_file() && p.join("crates").is_dir())
        .unwrap_or(manifest)
        .to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_sections() {
        let c = classify("crates/core/src/fit.rs");
        assert_eq!(c.crate_name, "core");
        assert!(matches!(c.section, Section::Src));
        assert!(!c.is_crate_root);

        let c = classify("crates/bench/src/bin/repro.rs");
        assert!(matches!(c.section, Section::Bin));

        let c = classify("crates/net/src/lib.rs");
        assert!(c.is_crate_root);

        let c = classify("vendor/rand/src/lib.rs");
        assert_eq!(c.crate_name, "vendor/rand");
        assert!(c.is_crate_root);

        let c = classify("crates/stats/tests/prop.rs");
        assert!(matches!(c.section, Section::Tests));

        let c = classify("crates/bench/benches/bench_addrset.rs");
        assert!(matches!(c.section, Section::Benches));
    }

    #[test]
    fn discover_finds_this_file_and_skips_fixtures() {
        let root = workspace_root();
        let files = discover(&root).expect("walk workspace");
        let rels: Vec<&str> = files.iter().map(|(_, c)| c.rel_path.as_str()).collect();
        assert!(rels.contains(&"crates/xtask/src/workspace.rs"));
        assert!(rels.iter().all(|r| !r.contains("tests/fixtures")));
        assert!(rels.iter().all(|r| !r.starts_with("target/")));
    }
}
