//! Fixture: counting-overflow — unchecked arithmetic on declared counters.

pub fn tally(total: u64, n: u64) -> u64 {
    let doubled = total * 2;
    let mask = 1u32 << 24;
    // lint: allow(counting-overflow) totals are < 2^32 by the table invariant
    let ok = total + n;
    let safe = total.checked_add(n).unwrap_or(u64::MAX);
    let as_float = total as f64 + 0.5;
    doubled + ok + safe + u64::from(mask) + as_float as u64
}

pub fn popcounts(words: &[u64]) -> u64 {
    let mut narrow = 0u32;
    for w in words {
        narrow += w.count_ones();
    }
    let skewed = words.first().copied().unwrap_or(0).count_ones() as u64 * 8;
    let mut wide = 0u64;
    for w in words {
        wide += u64::from(w.count_ones());
    }
    u64::from(narrow) + wide + skewed
}
