//! Fixture: counting-overflow — unchecked arithmetic on declared counters.

pub fn tally(total: u64, n: u64) -> u64 {
    let doubled = total * 2;
    let mask = 1u32 << 24;
    // lint: allow(counting-overflow) totals are < 2^32 by the table invariant
    let ok = total + n;
    let safe = total.checked_add(n).unwrap_or(u64::MAX);
    let as_float = total as f64 + 0.5;
    doubled + ok + safe + u64::from(mask) + as_float as u64
}
