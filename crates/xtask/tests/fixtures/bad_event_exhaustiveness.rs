//! Fixture: event-exhaustiveness — unregistered and kind-mismatched events.

use ghosts_obs::Scope;

pub fn emit(scope: &Scope) {
    scope.event("filter", &[]);
    scope.event("bogus_event", &[]);
    scope.error("fit", &[]);
    // lint: allow(event-exhaustiveness) experimental event, registry entry pending
    scope.event("prototype_event", &[]);
}
