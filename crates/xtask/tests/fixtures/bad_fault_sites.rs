//! Known-bad fixture for the `fault-sites` rule: a probe in a crate with
//! no documented fault sites, and plan management in library code.
fn probe() {
    let _ = ghosts_faultinject::fire("net.lookup");
}
fn manage() {
    ghosts_faultinject::install(ghosts_faultinject::FaultPlan::default()).ok();
}
use ghosts_faultinject::{drain_fires, task_scope};
fn excused() {
    // lint: allow(fault-sites) justified probe for the fixture
    let _ = ghosts_faultinject::fire("net.lookup");
}
