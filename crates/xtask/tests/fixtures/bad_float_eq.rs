// Fixture: float-eq fires on lines 4, 9, 14; quiet on the integer compare
// (line 19), compound operators (lines 25-26) and the test module.

fn direct(x: f64) -> bool { x == 1.0 }

fn reversed(x: f64) -> bool {
    // The literal is on the left this time.

    0.5 != x
}

fn against_const(x: f64) -> bool {
    let nan = f64::NAN;
    x == f64::INFINITY && !(x == nan)
}

fn ints_are_fine(x: usize) -> bool {

    x == 1
}

fn compound(mut x: f64) -> f64 {
    // `+=`, `<=`, `>=` are not equality tests.

    x += 1.0;
    if x <= 2.0 || x >= 3.0 { x } else { -x }
}

#[cfg(test)]
mod tests {
    #[test]
    fn exact_in_tests_is_fine() {
        let y = 0.25;
        assert!(y == 0.25);
    }
}
