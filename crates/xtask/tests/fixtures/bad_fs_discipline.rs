// Known-bad fixture for the fs-discipline rule: raw file creation in
// library code. Reads and the justified site are fine.
use std::fs::File;

fn torn_writes(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    let _f = File::create(path)?;
    std::fs::write(path, bytes)?;
    let _o = std::fs::OpenOptions::new().append(true).open(path)?;
    File::create_new(path)?;
    // lint: allow(fs-discipline) lock file holds no data, torn is fine
    std::fs::write(path, b"lock")?;
    Ok(())
}

fn reads_are_untouched(path: &std::path::Path) -> std::io::Result<Vec<u8>> {
    let _f = File::open(path)?;
    std::fs::read(path)
}

#[cfg(test)]
mod tests {
    #[test]
    fn fixtures_may_write_raw() {
        std::fs::write("scratch", b"x").unwrap();
    }
}
