// Fixture: hash-collections must fire on lines 4 and 7, but not on the
// justified use on line 11 or the comment/string mentions on lines 15-16.

use std::collections::HashMap;

fn build() {
    let mut m: HashMap<u32, u32> = Default::default();
    m.insert(1, 2);
}

fn justified() -> std::collections::HashSet<u32> { /* lint: sorted drained into a Vec and sorted before use */
    Default::default()
}

// A doc mention of HashMap is fine.
fn strings() -> &'static str { "HashMap" }
