//! Fixture: lock-discipline — nested guards, guards across fan-out and I/O.

use std::sync::Mutex;

pub struct S {
    a: Mutex<u64>,
    b: Mutex<u64>,
}

impl S {
    pub fn nested(&self) {
        let g = self.a.lock().unwrap();
        let h = self.b.lock().unwrap();
        drop(h);
        drop(g);
    }

    pub fn ordered(&self) {
        let g = self.a.lock().unwrap();
        // lint: allow(lock-discipline) order: a then b, everywhere
        let h = self.b.lock().unwrap();
        drop(h);
        drop(g);
    }

    pub fn scoped(&self) {
        {
            let g = self.a.lock().unwrap();
            drop(g);
        }
        let h = self.b.lock().unwrap();
        drop(h);
    }

    pub fn fanout(&self, xs: &[u64]) -> u64 {
        let g = self.a.lock().unwrap();
        let ys = par_map(xs, |x| x + 1);
        *g + ys.len() as u64
    }

    pub fn writes(&self, stream: &mut std::net::TcpStream) {
        use std::io::Write;
        let g = self.a.lock().unwrap();
        let _ = stream.write_all(b"x");
        drop(g);
    }
}
