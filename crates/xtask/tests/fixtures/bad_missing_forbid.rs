//! Fixture: a crate root without `#![forbid(unsafe_code)]` — forbid-unsafe
//! must fire at line 1 when this text is classified as a crate root.

pub fn harmless() -> u32 {
    7
}
