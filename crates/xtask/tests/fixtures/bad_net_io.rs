// Fixture for the net-io rule: socket types outside the serving layer.
use std::net::{TcpListener, TcpStream};

fn serve_from_the_wrong_place() -> std::io::Result<TcpListener> {
    TcpListener::bind("127.0.0.1:0")
}

fn probe(addr: &str) -> bool {
    std::net::UdpSocket::bind(addr).is_ok()
}

fn allowed(addr: &str) -> bool {
    // lint: allow(net-io) diagnostics helper, never reached from estimation
    std::net::TcpStream::connect(addr).is_ok()
}
