//! Fixture: an estimation entry point that never calls the runtime
//! validators — invariant-usage must fire when this text is classified as
//! `crates/core/src/fit.rs`. The mention inside the test module must not
//! count as a real call.

pub fn fit_llm(y: &[f64]) -> f64 {
    y.iter().sum()
}

#[cfg(test)]
mod tests {
    #[test]
    fn mentions_do_not_count() {
        crate::invariant::check_table;
    }
}
