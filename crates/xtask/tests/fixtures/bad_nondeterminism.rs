// Fixture: nondeterminism must fire on lines 4, 6 and 8, and accept the
// justified timing read on line 12.

use std::time::Instant;

fn stamp() { let _ = std::time::SystemTime::now(); }

fn roll() { let _ = rand::thread_rng(); }

fn justified() {
    // lint: allow(nondeterminism) coarse progress logging, never in results
    let _ = Instant::now();
}
