//! Fixture: direct clock access that must go through ghosts_obs.

use std::time::Instant;
use std::time::SystemTime;

fn elapsed_us() -> u64 {
    let t0 = Instant::now();
    let _ = SystemTime::now();
    t0.elapsed().as_micros() as u64
}

// lint: allow(obs-clock) fixture-sanctioned operator feedback
fn sanctioned() -> std::time::Instant {
    std::time::Instant::now() // lint: allow(obs-clock) same, trailing form
}

struct Pinned {
    clock: WallClock,
}

#[cfg(test)]
mod tests {
    fn tests_may_time() {
        let _ = std::time::Instant::now();
    }
}
