//! Fixture: panic-path — panics reachable from a public entrypoint.

pub fn estimate_table(xs: &[u64]) -> u64 {
    helper(xs)
}

fn helper(xs: &[u64]) -> u64 {
    let a = xs[0];
    let b = xs.iter().next().unwrap();
    if xs.is_empty() {
        panic!("empty");
    }
    // lint: allow(panic-path) the caller guarantees at least three items
    let c = xs[2];
    a + b + c
}

fn not_reachable(xs: &[u64]) -> u64 {
    xs[0]
}
