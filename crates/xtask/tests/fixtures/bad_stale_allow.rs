//! Fixture: stale-allow — suppressions that no longer suppress anything.

// lint: allow(no-unwrap) nothing on the next line unwraps anymore
pub fn tidy(x: Option<u64>) -> u64 {
    x.unwrap_or(0)
}

// lint: allow(definitely-not-a-rule) typo'd rule name
pub fn other() -> u64 {
    7
}
