// Fixture: no-unwrap must fire on lines 4 and 7, skip the justified site on
// line 11, skip `unwrap_or` (line 14) and skip the test module entirely.

fn first(v: &[u32]) -> u32 { *v.first().unwrap() }

fn named(v: &[u32]) -> u32 {
    *v.first().expect("caller guarantees non-empty")
}

fn justified(v: &[u32]) -> u32 {
    *v.first().expect("non-empty") // lint: allow(no-unwrap) checked by caller
}

fn fallback(v: &[u32]) -> u32 { v.first().copied().unwrap_or(0) }

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(super::fallback(&[]), [0u32].first().copied().unwrap());
    }
}
