//! Self-tests for ghost-lint v2's interprocedural rules: each fixture
//! under `tests/fixtures/` is a known-bad file for one rule family and the
//! tests pin exactly which lines fire. The final tests check the two
//! workspace-level guarantees: the JSON report is byte-identical at every
//! thread count, and the committed baseline round-trips.

use ghosts_core::parallel::Parallelism;
use xtask::report::{Baseline, ReportEntry};
use xtask::rules::{FileClass, Section, Violation};
use xtask::{analyze_sources, lint_workspace, report, workspace};

fn fixture(name: &str) -> String {
    let path = workspace::workspace_root()
        .join("crates/xtask/tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read fixture {name}: {e}"))
}

fn class(crate_name: &str, rel_path: &str) -> FileClass {
    FileClass {
        crate_name: crate_name.to_string(),
        section: Section::Src,
        rel_path: rel_path.to_string(),
        is_crate_root: false,
    }
}

/// Runs the full pipeline over one fixture and returns the lines where
/// `rule` fired.
fn fired(name: &str, crate_name: &str, rule: &str) -> Vec<usize> {
    let src = fixture(name);
    let c = class(crate_name, &format!("crates/{crate_name}/src/{name}"));
    let violations = analyze_sources(&[(c, src)], Parallelism::SEQUENTIAL);
    violations
        .iter()
        .filter(|v| v.rule == rule)
        .map(|v| v.line)
        .collect()
}

#[test]
fn panic_path_fires_on_reachable_sites_only() {
    // Line 8: indexing, line 9: unwrap, line 11: panic!. Line 14 is
    // justified; line 19 is in a function no entrypoint reaches.
    assert_eq!(
        fired("bad_panic_path.rs", "core", "panic-path"),
        vec![8, 9, 11]
    );
}

#[test]
fn panic_path_findings_carry_the_call_chain() {
    let src = fixture("bad_panic_path.rs");
    let c = class("core", "crates/core/src/bad_panic_path.rs");
    let violations = analyze_sources(&[(c, src)], Parallelism::SEQUENTIAL);
    let v = violations
        .iter()
        .find(|v| v.rule == "panic-path")
        .expect("at least one finding");
    assert!(
        v.message.contains("estimate_table -> helper"),
        "chain missing from message: {}",
        v.message
    );
}

#[test]
fn lock_discipline_fires_on_nested_fanout_and_socket_io() {
    // Line 13: nested acquisition; line 37: par_map with a guard live;
    // line 44: socket write with a guard live. Line 21 declares an order,
    // and the scoped block releases its guard before line 31.
    assert_eq!(
        fired("bad_lock_discipline.rs", "serve", "lock-discipline"),
        vec![13, 37, 44]
    );
}

#[test]
fn counting_overflow_fires_on_declared_counters() {
    // Line 4: `total * 2`; line 5: `1u32 << 24`; line 10: `+ as_float as
    // u64` (a cast is a counting value). Line 7 is justified and the
    // f64 cast on line 9 is float arithmetic, not counting. Line 16: a
    // bare `.count_ones()` accumulated into a `u32`; line 18: a popcount
    // cast to `u64` then multiplied. Lines 21/23 widen via `u64::from`
    // before any arithmetic — the sanctioned idiom stays silent.
    assert_eq!(
        fired("bad_counting_overflow.rs", "core", "counting-overflow"),
        vec![4, 5, 10, 16, 18]
    );
}

#[test]
fn event_exhaustiveness_fires_on_unregistered_and_mismatched() {
    // Line 7: unregistered name; line 8: "fit" emitted as `error` but
    // registered as `event`. Line 6 matches the registry and line 10 is
    // justified.
    assert_eq!(
        fired(
            "bad_event_exhaustiveness.rs",
            "pipeline",
            "event-exhaustiveness"
        ),
        vec![7, 8]
    );
}

#[test]
fn stale_allow_fires_on_unused_and_unknown_suppressions() {
    // Line 3: allow that no longer suppresses anything; line 8: allow
    // naming a rule that does not exist.
    assert_eq!(
        fired("bad_stale_allow.rs", "core", "stale-allow"),
        vec![3, 8]
    );
}

#[test]
fn used_allows_are_not_stale() {
    // The panic-path fixture's justification on line 13 is consumed by
    // the rule, so the sweep reports nothing.
    assert_eq!(
        fired("bad_panic_path.rs", "core", "stale-allow"),
        Vec::<usize>::new()
    );
}

#[test]
fn json_report_is_byte_identical_across_thread_counts() {
    let root = workspace::workspace_root();
    let render = |par: Parallelism| {
        let violations = lint_workspace(&root, par).expect("lint workspace");
        let entries: Vec<ReportEntry<'_>> = violations
            .iter()
            .map(|violation| ReportEntry {
                violation,
                baselined: false,
            })
            .collect();
        report::render_json(&entries)
    };
    let sequential = render(Parallelism::Fixed(1));
    let parallel = render(Parallelism::Fixed(4));
    assert_eq!(sequential, parallel, "report bytes depend on thread count");
}

#[test]
fn committed_baseline_parses_and_matches_schema() {
    let root = workspace::workspace_root();
    let text = std::fs::read_to_string(root.join(report::BASELINE_PATH))
        .expect("committed lint-baseline.json");
    let baseline = Baseline::load(&text).expect("baseline parses");
    // Serialization round-trips to the exact committed bytes, so
    // --update-baseline output is stable.
    assert_eq!(baseline.to_json_bytes(), text);
}

#[test]
fn baseline_accepts_multiset_counts() {
    let v = |line: usize| Violation {
        file: "crates/core/src/x.rs".to_string(),
        line,
        rule: "panic-path",
        message: "m".to_string(),
    };
    let base = Baseline::from_violations(&[v(3), v(3)]);
    let flags = base.apply(&[v(3), v(3), v(3)]);
    assert_eq!(flags, vec![true, true, false]);
}
