//! Self-tests for ghost-lint: each fixture under `tests/fixtures/` is a
//! known-bad file for one rule; the test pins exactly which lines fire.
//! The final test runs the real linter over the real workspace — the
//! tree must be clean, which is the same gate `scripts/ci.sh` enforces.

use ghosts_core::parallel::Parallelism;
use xtask::rules::{FileClass, Section, Violation};
use xtask::{lint_source, lint_workspace, workspace};

fn fixture(name: &str) -> String {
    let path = workspace::workspace_root()
        .join("crates/xtask/tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()))
}

fn class(crate_name: &str, section: Section, rel: &str, root: bool) -> FileClass {
    FileClass {
        crate_name: crate_name.into(),
        section,
        rel_path: rel.into(),
        is_crate_root: root,
    }
}

/// (rule, line) pairs of the violations, for compact comparison.
fn fired(violations: &[Violation]) -> Vec<(&str, usize)> {
    violations.iter().map(|v| (v.rule, v.line)).collect()
}

#[test]
fn hash_collections_fixture() {
    let c = class("core", Section::Src, "crates/core/src/bad.rs", false);
    let v = lint_source(&fixture("bad_hash.rs"), &c);
    assert_eq!(
        fired(&v),
        vec![("hash-collections", 4), ("hash-collections", 7)]
    );
    // Out of scope (net is not an estimation crate): no violations at all.
    let c = class("net", Section::Src, "crates/net/src/bad.rs", false);
    assert!(lint_source(&fixture("bad_hash.rs"), &c).is_empty());
}

#[test]
fn float_eq_fixture() {
    let c = class("stats", Section::Src, "crates/stats/src/bad.rs", false);
    let v = lint_source(&fixture("bad_float_eq.rs"), &c);
    assert_eq!(
        fired(&v),
        vec![("float-eq", 4), ("float-eq", 9), ("float-eq", 14)]
    );
    // The approved-helper file is allowlisted wholesale.
    let c = class("stats", Section::Src, "crates/stats/src/approx.rs", false);
    assert!(lint_source(&fixture("bad_float_eq.rs"), &c).is_empty());
}

#[test]
fn nondeterminism_fixture() {
    let c = class("sim", Section::Src, "crates/sim/src/bad.rs", false);
    let v = lint_source(&fixture("bad_nondeterminism.rs"), &c);
    assert_eq!(
        fired(&v),
        vec![
            ("nondeterminism", 4),
            ("obs-clock", 4),
            ("nondeterminism", 6),
            ("obs-clock", 6),
            ("nondeterminism", 8),
            // allow(nondeterminism) on line 11 covers that rule only; the
            // clock-capability rule still wants the read behind WallClock.
            ("obs-clock", 12),
        ]
    );
    // The bench binary harness is exempt from the nondeterminism rule but
    // must still reach the clock through ghosts_obs.
    let c = class(
        "bench",
        Section::Bin,
        "crates/bench/src/bin/repro.rs",
        false,
    );
    let v = lint_source(&fixture("bad_nondeterminism.rs"), &c);
    assert_eq!(
        fired(&v),
        vec![("obs-clock", 4), ("obs-clock", 6), ("obs-clock", 12)]
    );
}

#[test]
fn obs_clock_fixture() {
    // In a binary the OS clock is off-limits (WallClock is the sanctioned
    // way to time) but holding a WallClock is exactly what binaries do.
    let c = class("bench", Section::Bin, "crates/bench/src/bin/bad.rs", false);
    let v = lint_source(&fixture("bad_obs_clock.rs"), &c);
    assert_eq!(
        fired(&v),
        vec![
            ("obs-clock", 3),
            ("obs-clock", 4),
            ("obs-clock", 7),
            ("obs-clock", 8)
        ]
    );
    // In deterministic library source the WallClock field fires too (the
    // raw reads additionally trip the nondeterminism rule, filtered here).
    let c = class("core", Section::Src, "crates/core/src/bad.rs", false);
    let v = lint_source(&fixture("bad_obs_clock.rs"), &c);
    let obs: Vec<(&str, usize)> = fired(&v)
        .into_iter()
        .filter(|(rule, _)| *rule == "obs-clock")
        .collect();
    assert_eq!(
        obs,
        vec![
            ("obs-clock", 3),
            ("obs-clock", 4),
            ("obs-clock", 7),
            ("obs-clock", 8),
            ("obs-clock", 18)
        ]
    );
    // The one sanctioned wall-clock file is exempt wholesale.
    let c = class("obs", Section::Src, "crates/obs/src/wall.rs", false);
    assert!(lint_source(&fixture("bad_obs_clock.rs"), &c).is_empty());
}

#[test]
fn no_unwrap_fixture() {
    let c = class("net", Section::Src, "crates/net/src/bad.rs", false);
    let v = lint_source(&fixture("bad_unwrap.rs"), &c);
    assert_eq!(fired(&v), vec![("no-unwrap", 4), ("no-unwrap", 7)]);
}

#[test]
fn forbid_unsafe_fixture() {
    let src = fixture("bad_missing_forbid.rs");
    let root = class("net", Section::Src, "crates/net/src/lib.rs", true);
    assert_eq!(fired(&lint_source(&src, &root)), vec![("forbid-unsafe", 1)]);
    // Same text as a non-root module: fine.
    let inner = class("net", Section::Src, "crates/net/src/inner.rs", false);
    assert!(lint_source(&src, &inner).is_empty());
    // With the pragma present: fine.
    let fixed = format!("#![forbid(unsafe_code)]\n{src}");
    assert!(lint_source(&fixed, &root).is_empty());
}

#[test]
fn invariant_usage_fixture() {
    let src = fixture("bad_no_invariant.rs");
    let c = class("core", Section::Src, "crates/core/src/fit.rs", false);
    let v = lint_source(&src, &c);
    assert!(
        fired(&v).contains(&("invariant-usage", 1)),
        "mention inside #[cfg(test)] must not satisfy the rule: {v:?}"
    );
    // A real call site outside tests satisfies it.
    let fixed =
        format!("use crate::invariant;\nfn f(t: &T) {{ invariant::check_table(t); }}\n{src}");
    let v = lint_source(&fixed, &c);
    assert!(v.iter().all(|v| v.rule != "invariant-usage"), "{v:?}");
}

#[test]
fn fault_sites_fixture() {
    let src = fixture("bad_fault_sites.rs");
    // In a crate with no documented fault sites, every probe fires and the
    // plan management fires too; the allow() escape covers line 12.
    let c = class("net", Section::Src, "crates/net/src/bad.rs", false);
    let v = lint_source(&src, &c);
    assert_eq!(
        fired(&v),
        vec![
            ("fault-sites", 4),
            ("fault-sites", 7),
            ("fault-sites", 7),
            ("fault-sites", 9),
            ("fault-sites", 9),
        ]
    );
    // In a fault-site crate the probes are fine but plan management in
    // library code still fires (install, FaultPlan, drain_fires).
    let c = class("core", Section::Src, "crates/core/src/bad.rs", false);
    let v = lint_source(&src, &c);
    assert_eq!(
        fired(&v),
        vec![("fault-sites", 7), ("fault-sites", 7), ("fault-sites", 9)]
    );
    // Binaries drive plans: nothing fires for the repro harness.
    let c = class(
        "bench",
        Section::Bin,
        "crates/bench/src/bin/repro.rs",
        false,
    );
    assert!(lint_source(&src, &c).is_empty());
    // Tests are exempt wholesale.
    let c = class("core", Section::Tests, "crates/core/tests/bad.rs", false);
    assert!(lint_source(&src, &c).is_empty());
}

#[test]
fn net_io_fixture() {
    let src = fixture("bad_net_io.rs");
    // Library code outside the serving layer: the use-list names both
    // types, then each call site fires; the allow() escape covers the
    // diagnostics helper.
    let c = class("core", Section::Src, "crates/core/src/bad.rs", false);
    let v = lint_source(&src, &c);
    assert_eq!(
        fired(&v),
        vec![
            ("net-io", 2),
            ("net-io", 2),
            ("net-io", 4),
            ("net-io", 5),
            ("net-io", 9),
        ]
    );
    // Binaries are equally confined…
    let c = class(
        "bench",
        Section::Bin,
        "crates/bench/src/bin/repro.rs",
        false,
    );
    assert_eq!(lint_source(&src, &c).len(), 5);
    // …the serving layer owns sockets, and tests drive loopback freely.
    let c = class("serve", Section::Src, "crates/serve/src/server.rs", false);
    assert!(lint_source(&src, &c).is_empty());
    let c = class("core", Section::Tests, "crates/core/tests/bad.rs", false);
    assert!(lint_source(&src, &c).is_empty());
}

#[test]
fn fs_discipline_fixture() {
    let src = fixture("bad_fs_discipline.rs");
    // Library code: every raw-creation site fires (the use-list `File` is
    // not a write by itself); the allow() escape covers the lock file, and
    // reads plus the #[cfg(test)] block stay silent.
    let c = class("serve", Section::Src, "crates/serve/src/bad.rs", false);
    let v = lint_source(&src, &c);
    assert_eq!(
        fired(&v),
        vec![
            ("fs-discipline", 6),
            ("fs-discipline", 7),
            ("fs-discipline", 8),
            ("fs-discipline", 9),
        ]
    );
    // Binaries write results files and are equally confined…
    let c = class(
        "bench",
        Section::Bin,
        "crates/bench/src/bin/repro.rs",
        false,
    );
    assert_eq!(lint_source(&src, &c).len(), 4);
    // …the durable crate owns the atomic writer, and tests plant corrupt
    // fixtures freely.
    let c = class(
        "durable",
        Section::Src,
        "crates/durable/src/atomic.rs",
        false,
    );
    assert!(lint_source(&src, &c).is_empty());
    let c = class("serve", Section::Tests, "crates/serve/tests/bad.rs", false);
    assert!(lint_source(&src, &c).is_empty());
}

#[test]
fn workspace_is_clean_modulo_baseline() {
    let root = workspace::workspace_root();
    let violations = lint_workspace(&root, Parallelism::SEQUENTIAL).expect("lint workspace");
    let baseline_text = std::fs::read_to_string(root.join(xtask::report::BASELINE_PATH))
        .expect("committed lint-baseline.json");
    let baseline = xtask::report::Baseline::load(&baseline_text).expect("baseline parses");
    let flags = baseline.apply(&violations);
    let fresh: Vec<String> = violations
        .iter()
        .zip(&flags)
        .filter(|(_, &baselined)| !baselined)
        .map(|(v, _)| v.to_string())
        .collect();
    assert!(
        fresh.is_empty(),
        "ghost-lint found non-baselined violations in the tree:\n{}",
        fresh.join("\n")
    );
}
