//! End-to-end mini-Internet census: generate a synthetic Internet, probe
//! it, collect all nine sources over one window, and estimate the used
//! space — then compare with the simulator's ground truth.
//!
//! This is the paper's whole §4–§6 pipeline in one sitting, at test scale.
//!
//! Run: `cargo run -p ghosts --example ipv4_census --release`

use ghosts::prelude::*;

fn main() {
    println!("== Mini-Internet census and capture-recapture ==\n");

    let mut cfg = SimConfig::tiny(42);
    cfg.allocated_budget = 1_200_000;
    let scenario = Scenario::new(cfg);
    let gt = &scenario.gt;

    println!("synthetic Internet:");
    println!("  allocations     : {}", gt.registry.len());
    println!(
        "  allocated addrs : {}",
        gt.registry.allocated_address_count()
    );
    println!("  routed addrs    : {}", gt.routed.address_count());
    println!("  routed /24s     : {}", gt.routed.subnet24_count());

    // --- Probe one allocation with the packet-level engine (§4.4). -----
    let engine = ProbeEngine::new(gt);
    let prefix = gt.registry.allocations()[0].prefix;
    let q = Quarter(13);
    let census = engine.census(prefix, q, true);
    println!("\nICMP census of {prefix}:");
    println!("  echo replies    : {}", census.positive);
    println!("  unreachables    : {}", census.unreachable);
    println!("  silent          : {}", census.silent);
    println!("  counted as used : {}", census.used.len());

    // --- Full nine-source window (§4.1). --------------------------------
    let window = *paper_windows().last().expect("paper has 11 windows");
    let data = scenario.window_data_clean(window);
    println!("\nsources over the {window}:");
    for s in &data.sources {
        println!(
            "  {:6} {:>8} addrs  {:>7} /24s",
            s.name,
            s.addrs.len(),
            s.subnets().len()
        );
    }

    let observed = data.observed_union();
    let truth = scenario.truth_addrs(window);
    println!("\nobserved union : {} addrs", observed.len());
    println!("ground truth   : {} addrs", truth.len());

    // --- Capture-recapture (§3, §6.2). ----------------------------------
    let sets = data.addr_sets();
    let table = ContingencyTable::from_addr_sets(&sets);
    let cfg = CrConfig::paper();
    let est =
        estimate_table(&table, Some(gt.routed.address_count()), &cfg).expect("estimable window");
    println!("\ncapture-recapture:");
    println!("  selected model : {}", est.model);
    println!("  ghosts         : {:.0}", est.unseen);
    println!("  estimated used : {:.0}", est.total);
    println!(
        "  truth coverage : observed {:.1}% -> estimated {:.1}%",
        100.0 * observed.len() as f64 / truth.len() as f64,
        100.0 * est.total / truth.len() as f64
    );

    let obs_err = truth.len() as f64 - observed.len() as f64;
    let est_err = (truth.len() as f64 - est.total).abs();
    assert!(
        est_err < obs_err,
        "CR must recover ghosts the union misses ({est_err:.0} vs {obs_err:.0})"
    );
    println!(
        "\nCR closed {:.0}% of the gap the union leaves.",
        100.0 * (1.0 - est_err / obs_err)
    );
}
