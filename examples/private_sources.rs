//! Multi-party capture–recapture without sharing addresses — the paper's
//! stated future work (§8, their ref [33]).
//!
//! Three organisations each hold a log of observed IPv4 addresses that
//! privacy rules forbid them from pooling. They exchange only k-minhash
//! sketches and k membership bits each, yet the coordinator recovers a
//! population estimate close to what full data sharing would give.
//!
//! Run: `cargo run -p ghosts --release --example private_sources`

use ghosts::core::mpcr::{mpcr_estimate, MinHashSketch};
use ghosts::prelude::*;
use ghosts::stats::rng::component_rng;
use rand::Rng;

fn main() {
    println!("== Multi-party CR from sketches (paper section 8) ==\n");

    // A shared population observed by three privacy-constrained parties.
    let n_true = 60_000u32;
    let mut rng = component_rng(33, "private");
    let mut parties: Vec<AddrSet> = (0..3).map(|_| AddrSet::new()).collect();
    for i in 0..n_true {
        let busy = rng.gen_bool(0.45);
        for set in parties.iter_mut() {
            let p = if busy { 0.6 } else { 0.18 };
            if rng.gen_bool(p) {
                set.insert(i.wrapping_mul(2_654_435_761));
            }
        }
    }
    let refs: Vec<&AddrSet> = parties.iter().collect();
    for (i, p) in parties.iter().enumerate() {
        println!("party {}: {} addresses (kept private)", i + 1, p.len());
    }

    let cfg = CrConfig {
        truncated: false,
        ..CrConfig::paper()
    };

    // What full data sharing would give.
    let exact_table = ContingencyTable::from_addr_sets(&refs);
    let exact = estimate_table(&exact_table, None, &cfg).expect("estimable");
    println!("\nfull-data CR estimate      : {:.0}", exact.total);

    // The sketch protocol at increasing k.
    println!("\nsketch protocol (k hashes + k bits revealed per party):");
    for k in [256usize, 1024, 4096] {
        let result = mpcr_estimate(&refs, k, 0xC0FFEE, None, &cfg).expect("estimable");
        let rel = 100.0 * (result.estimate.total - exact.total) / exact.total;
        println!(
            "  k = {k:5}: union ≈ {:>7.0}, estimate {:>7.0} ({rel:+.1}% vs full data)",
            result.union_estimate, result.estimate.total,
        );
    }

    // What actually crossed the wire at k = 1024.
    let k = 1024;
    let sketches: Vec<MinHashSketch> = parties
        .iter()
        .map(|p| MinHashSketch::build(p, k, 0xC0FFEE))
        .collect();
    let srefs: Vec<&MinHashSketch> = sketches.iter().collect();
    let union = MinHashSketch::union(&srefs);
    println!(
        "\nwire cost per party: {} sketch hashes + {} membership bits\n\
         (vs {} raw addresses under full sharing)",
        k,
        union.sample_hashes().len(),
        parties.iter().map(|p| p.len()).max().unwrap_or(0),
    );
    println!(
        "\nNote: the production design (the paper's ref [33]) replaces the\n\
         shared salt with cryptographic primitives; this prototype\n\
         reproduces the estimation mechanics and accuracy trade-off."
    );
}
