//! Quickstart: capture–recapture from two sources to nine.
//!
//! Walks through the paper's §3 on synthetic data with a known truth:
//! Lincoln–Petersen on two sources, why dependence breaks it, and how the
//! log-linear model with model selection fixes it.
//!
//! Run: `cargo run -p ghosts --example quickstart`

use ghosts::core::jackknife_select;
use ghosts::prelude::*;
use ghosts::stats::rng::component_rng;
use rand::Rng;

fn main() {
    println!("== Capturing Ghosts: quickstart ==\n");

    // --- A population of 50,000 'addresses', two latent classes. -------
    // Sociable hosts (servers, busy clients) are easy to capture; shy
    // hosts (firewalled, rarely active) are hard. Exactly the
    // heterogeneity §3.2.2 warns about.
    let n_true = 50_000u32;
    let mut rng = component_rng(2014, "quickstart");
    let t = 4; // four measurement sources
    let mut table = ContingencyTable::new(t);
    let mut seen_by_12 = (0u64, 0u64, 0u64); // M, C, R for sources 1 & 2
    for _ in 0..n_true {
        let sociable = rng.gen_bool(0.4);
        let mut mask = 0u16;
        for i in 0..t {
            let p = if sociable { 0.55 } else { 0.12 };
            if rng.gen_bool(p) {
                mask |= 1 << i;
            }
        }
        table.record(mask);
        if mask & 1 != 0 {
            seen_by_12.0 += 1;
        }
        if mask & 2 != 0 {
            seen_by_12.1 += 1;
        }
        if mask & 3 == 3 {
            seen_by_12.2 += 1;
        }
    }
    let observed = table.observed_total();
    println!("true population        : {n_true}");
    println!("observed by any source : {observed}\n");

    // --- Two-source Lincoln-Petersen (§3.2). ---------------------------
    let (m, c, r) = seen_by_12;
    let lp = lincoln_petersen(m, c, r).expect("overlap exists");
    println!("Lincoln-Petersen (sources 1+2): N = {:.0}", lp.n_hat);
    println!(
        "  -> biased low: heterogeneity makes the sources positively\n\
         \x20    correlated, so R/C > M/N and N is underestimated (3.2.2).\n"
    );

    // --- Chao's lower bound and the Mh jackknife. -----------------------
    let chao = chao_lower_bound(&table);
    println!(
        "Chao lower bound: N >= {:.0} (f1 = {}, f2 = {})",
        chao.n_hat, chao.f1, chao.f2
    );
    let jack = jackknife_select(&table).expect("enough occasions");
    println!(
        "Burnham-Overton jackknife (order {}): N = {:.0}\n",
        jack.order, jack.n_hat
    );

    // --- Log-linear model with model selection (§3.3). -----------------
    let cfg = CrConfig {
        truncated: false,
        ..CrConfig::paper()
    };
    let est = estimate_table(&table, None, &cfg).expect("estimable table");
    println!("Log-linear CR estimate:");
    println!("  model    : {}", est.model);
    println!("  observed : {}", est.observed);
    println!("  ghosts   : {:.0}", est.unseen);
    println!("  total    : {:.0}  (truth {n_true})", est.total);

    let (_, range) = estimate_table_with_range(&table, None, &cfg).expect("range");
    println!(
        "  range    : [{:.0}, {:.0}] at alpha = 1e-7\n",
        range.lower, range.upper
    );

    let lp_err = (lp.n_hat - f64::from(n_true)).abs();
    let obs_err = (observed as f64 - f64::from(n_true)).abs();
    let llm_err = (est.total - f64::from(n_true)).abs();
    let jack_err = (jack.n_hat - f64::from(n_true)).abs();
    println!(
        "absolute errors: observed {obs_err:.0}, L-P {lp_err:.0}, \
         jackknife {jack_err:.0}, LLM {llm_err:.0}"
    );
    println!(
        "\nNote: under *pure latent* heterogeneity the Mh jackknife can win —\n\
         the LLM's interaction terms model (apparent) source dependence, which\n\
         is what the paper's real sources exhibit (3.2.2)."
    );
    assert!(llm_err < obs_err, "the LLM should beat raw observation");
}
