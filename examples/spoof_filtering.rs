//! Spoofed-address filtering (§4.5) on a NetFlow feed under attack.
//!
//! Injects random-source DDoS/decoy-scan spoofing into the SWIN dataset —
//! including the CALT-style March-2014 spike — and shows the two-stage
//! filter recovering the real usage signal.
//!
//! Run: `cargo run -p ghosts --example spoof_filtering --release`

use ghosts::prelude::*;
use ghosts::stats::rng::component_rng;

fn main() {
    println!("== Spoofed-address removal (paper section 4.5) ==\n");

    let mut cfg = SimConfig::tiny(7);
    cfg.allocated_budget = 1_000_000;
    // Crank the spoofing up: a DDoS-heavy quarter.
    cfg.spoof.swin_per_quarter = 25_000;
    let scenario = Scenario::new(cfg);

    let window = *paper_windows().last().expect("windows");
    let dirty = scenario.window_data(window);
    let clean_truth = scenario.window_data_clean(window);

    let swin_dirty = &dirty.source("SWIN").expect("SWIN online").addrs;
    let swin_clean = &clean_truth.source("SWIN").expect("SWIN online").addrs;
    let spoof_free = dirty.spoof_free_union();

    println!(
        "SWIN raw          : {:>7} addrs, {:>6} /24s",
        swin_dirty.len(),
        swin_dirty.to_subnet24().len()
    );
    println!(
        "SWIN without spoof: {:>7} addrs, {:>6} /24s (counterfactual)",
        swin_clean.len(),
        swin_clean.to_subnet24().len()
    );

    // At mini-Internet scale the spoofable universe is the routed space,
    // so the filter normalises spoof rates per routed /8 (DESIGN.md §2).
    let fcfg = SpoofFilterConfig::with_universe(scenario.routed_per_eight());
    let mut rng = component_rng(99, "spoof-example");
    let report = filter_spoofed(swin_dirty, &spoof_free, &fcfg, &mut rng);

    println!("\nfilter internals:");
    println!("  empty /8s used  : {:?}", report.empty_eights);
    println!(
        "  S estimate      : {:.0} spoofed per /8",
        report.s_estimate
    );
    println!("  threshold m     : {}", report.m);
    println!("  /24s removed    : {}", report.removed_subnets);
    println!("  stage-1 addrs   : {}", report.removed_stage1);
    println!("  stage-2 addrs   : {}", report.removed_stage2);

    println!(
        "\nSWIN filtered     : {:>7} addrs, {:>6} /24s",
        report.filtered.len(),
        report.filtered.to_subnet24().len()
    );

    // How much of the real signal survived, and how much spoof leaked?
    let kept_real = report
        .filtered
        .iter()
        .filter(|&a| swin_clean.contains(a))
        .count();
    let leaked = report.filtered.len() as usize - kept_real;
    println!(
        "\nreal addresses kept : {kept_real} of {} ({:.1}%)",
        swin_clean.len(),
        100.0 * kept_real as f64 / swin_clean.len() as f64
    );
    println!("spoofed leaked      : {leaked}");

    let dirty24 = swin_dirty.to_subnet24().len() as f64;
    let filt24 = report.filtered.to_subnet24().len() as f64;
    let real24 = swin_clean.to_subnet24().len() as f64;
    println!(
        "\n/24 inflation: raw {:.0}% -> filtered {:.0}% of the true count",
        100.0 * dirty24 / real24,
        100.0 * filt24 / real24
    );
}
