//! Unused-space prediction (§7): where do the ghosts live?
//!
//! Builds the free-block census of the observed space, estimates the
//! merge ratios f₁…f₃₂ from real source merges, and distributes the CR
//! ghost estimate into the vacant blocks — then sanity-checks the ghost
//! /24-equivalents against the independent LLM subnet estimate, the same
//! cross-validation of models the paper performs in §7.2.
//!
//! Run: `cargo run -p ghosts --example unused_space --release`

use ghosts::analysis::unused::{
    census_addrs, distribute_ghosts, estimate_ratios, ghost_subnet_equivalents, CensusDepth,
};
use ghosts::prelude::*;

fn main() {
    println!("== Unused-space prediction (paper section 7) ==\n");

    let mut cfg = SimConfig::tiny(17);
    cfg.allocated_budget = 1_000_000;
    let scenario = Scenario::new(cfg);
    let window = *paper_windows().last().expect("windows");
    let data = scenario.window_data_clean(window);

    // Universe: the routed prefixes (see DESIGN.md on the scale-driven
    // deviation from the paper's allocatable universe).
    let universe = scenario.gt.routed.prefixes();

    // S = union of everything except the NetFlow feeds (§7.1 does the
    // same: "in each case, S is the union of all remaining datasets,
    // except SWIN and CALT").
    let merge_names = ["IPING", "GAME", "WEB", "WIKI"];
    let mut experiments = Vec::new();
    for held in merge_names {
        let mut s = AddrSet::new();
        for d in &data.sources {
            if d.name != held && d.name != "SWIN" && d.name != "CALT" {
                s.union_with(&d.addrs);
            }
        }
        let before = census_addrs(&universe, &s);
        let mut merged = s.clone();
        merged.union_with(&data.source(held).expect("source online").addrs);
        let after = census_addrs(&universe, &merged);
        experiments.push((before, after));
        println!("merge experiment: {held} added to the rest");
    }
    let ratios = estimate_ratios(&experiments, CensusDepth::Addresses);
    println!("\nmerge ratios f (selected levels):");
    for len in [10usize, 14, 16, 20, 24, 28, 32] {
        println!("  f_/{:<2} = {:.4}", len, ratios.f[len]);
    }

    // CR ghost estimate over all sources.
    let sets = data.addr_sets();
    let table = ContingencyTable::from_addr_sets(&sets);
    let est = estimate_table(
        &table,
        Some(scenario.gt.routed.address_count()),
        &CrConfig::paper(),
    )
    .expect("estimable");
    println!("\nCR ghosts to place: {:.0}", est.unseen);

    // Distribute the ghosts into the observed free blocks.
    let mut all = AddrSet::new();
    for d in &data.sources {
        if d.name != "SWIN" && d.name != "CALT" {
            all.union_with(&d.addrs);
        }
    }
    let x0 = census_addrs(&universe, &all);
    let n = distribute_ghosts(&x0, &ratios, est.unseen, CensusDepth::Addresses);
    println!("\nghost placements by vacant-block size (top levels):");
    #[allow(clippy::needless_range_loop)]
    for len in 8..=24usize {
        if n[len] > 0.5 {
            println!("  /{:<2}: {:>8.0}", len, n[len]);
        }
    }
    let ghost24 = ghost_subnet_equivalents(&n);
    println!("\nghost /24-equivalents (merge model) : {ghost24:.0}");

    // Independent cross-check: the LLM's own /24 ghost estimate.
    let subnet_sets: Vec<_> = data.sources.iter().map(|d| d.subnets()).collect();
    let refs: Vec<&SubnetSet> = subnet_sets.iter().collect();
    let table24 = ContingencyTable::from_subnet_sets(&refs);
    let est24 = estimate_table(
        &table24,
        Some(scenario.gt.routed.subnet24_count()),
        &CrConfig::paper(),
    )
    .expect("estimable");
    println!("ghost /24s (independent LLM)        : {:.0}", est24.unseen);
    println!(
        "\nThe two models agree within a small factor — the paper's own\n\
         consistency check (section 7.2): 0.3M vs 0.26-0.36M at full scale."
    );
}
