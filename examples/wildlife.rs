//! Capture–recapture is older than the Internet: the same estimator the
//! paper applies to IPv4 addresses was born tagging fish and waterfowl
//! (Petersen 1895, Lincoln 1930 — the paper's refs [7, 8]).
//!
//! This example runs the library on a classic ecology-style setting — a
//! closed population of animals sampled on several trapping occasions,
//! with trap-shyness (behavioural response) as the dependence structure —
//! demonstrating the estimator is domain-agnostic.
//!
//! Run: `cargo run -p ghosts --example wildlife`

use ghosts::prelude::*;
use ghosts::stats::rng::component_rng;
use rand::Rng;

fn main() {
    println!("== Wildlife capture-recapture with log-linear models ==\n");

    // 2,500 animals, 5 trapping nights. Animals caught once become
    // trap-shy: capture probability drops afterwards — a classic source
    // of dependence between occasions that independence models miss.
    let n_true = 2_500u32;
    let nights = 5usize;
    let p_naive = 0.30;
    let p_shy = 0.18;

    let mut rng = component_rng(1895, "petersen");
    let mut table = ContingencyTable::new(nights);
    for _ in 0..n_true {
        let mut mask = 0u16;
        let mut caught_before = false;
        for night in 0..nights {
            let p = if caught_before { p_shy } else { p_naive };
            if rng.gen_bool(p) {
                mask |= 1 << night;
                caught_before = true;
            }
        }
        table.record(mask);
    }
    println!("true herd size : {n_true}");
    println!("ever trapped   : {}\n", table.observed_total());

    // Naive two-occasion Lincoln-Petersen (nights 1 and 2).
    let lp = lincoln_petersen(
        table.source_total(0),
        table.source_total(1),
        table.pair_overlap(0, 1),
    )
    .expect("recaptures exist");
    println!("Lincoln-Petersen (nights 1-2) : {:.0}", lp.n_hat);
    println!("  trap-shyness = negative dependence -> overestimate\n");

    // Log-linear model over all five occasions.
    let cfg = CrConfig {
        truncated: false,
        ..CrConfig::paper()
    };
    let est = estimate_table(&table, None, &cfg).expect("estimable");
    println!("log-linear CR (5 nights)      : {:.0}", est.total);
    println!("  selected model: {}\n", est.model);

    // Truncation: the ranger knows the reserve cannot hold more than
    // 3,000 animals — the same right-truncation trick the paper uses with
    // the routed-space bound (3.3.1).
    let capped = CrConfig::paper();
    let est_capped = estimate_table(&table, Some(3_000), &capped).expect("estimable");
    println!(
        "with habitat cap of 3,000     : {:.0} (never exceeds the cap)",
        est_capped.total
    );
    assert!(est_capped.total <= 3_000.0);

    let lp_err = (lp.n_hat - f64::from(n_true)).abs();
    let llm_err = (est.total - f64::from(n_true)).abs();
    println!("\nabsolute errors: L-P {lp_err:.0}, LLM {llm_err:.0}");
}
