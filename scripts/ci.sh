#!/usr/bin/env bash
# Tier-1 gate: everything a change must pass before it lands.
# Usage: scripts/ci.sh  (run from anywhere; operates on the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> ghost-lint (cargo run -p xtask -- lint)"
cargo run -q -p xtask -- lint

echo "==> observability smoke (repro --trace / --metrics-out + schema check)"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
repo_root="$(pwd)"
# Run from the temp dir so the smoke run's results/ don't clobber the
# committed default-scale artifacts.
(cd "$smoke_dir" && "$repo_root/target/release/repro" table4 --denom 16384 --seed 7 --quiet \
    --trace trace.jsonl --metrics-out manifest.json)
cargo run -q -p xtask -- lint --check-events "$smoke_dir/trace.jsonl"
test -s "$smoke_dir/manifest.json"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> ci.sh: all green"
