#!/usr/bin/env bash
# Tier-1 gate: everything a change must pass before it lands.
# Usage: scripts/ci.sh  (run from anywhere; operates on the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> ghost-lint (cargo run -p xtask -- lint)"
cargo run -q -p xtask -- lint

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> ci.sh: all green"
