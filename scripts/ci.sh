#!/usr/bin/env bash
# Tier-1 gate: everything a change must pass before it lands.
# Usage: scripts/ci.sh  (run from anywhere; operates on the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release (workspace + examples)"
cargo build --release
cargo build --release --examples

echo "==> cargo test -q"
cargo test -q

echo "==> ghost-lint (JSON report vs committed baseline)"
# Fails only on findings not in lint-baseline.json; the machine-readable
# report is kept as a build artifact for diffing across runs.
mkdir -p target
cargo run -q -p xtask -- lint --format json >target/lint-report.json
test -s target/lint-report.json
grep -q '"schema":"ghost-lint-report/1"' target/lint-report.json || {
    echo "ci.sh: lint report lacks the ghost-lint-report/1 schema tag" >&2
    exit 1
}

echo "==> addrplane smoke (bitwise 2^t kernel ≡ per-address table on the repro scenario)"
# The plane kernel must agree cell-for-cell with the per-address build at
# multiple thread counts before anything downstream trusts it (DESIGN.md
# §17.2); the membership half of the smoke runs against the live server
# below.
cargo test -q -p ghosts-bench --release --lib \
    plane_kernel_matches_per_address_on_repro_windows >/dev/null

echo "==> observability smoke (repro --trace / --metrics-out + schema check)"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
repo_root="$(pwd)"
# Run from the temp dir so the smoke run's results/ don't clobber the
# committed default-scale artifacts.
(cd "$smoke_dir" && "$repo_root/target/release/repro" table4 --denom 16384 --seed 7 --quiet \
    --profile --trace trace.jsonl --metrics-out manifest.json)
cargo run -q -p xtask -- lint --check-events "$smoke_dir/trace.jsonl"
test -s "$smoke_dir/manifest.json"
grep -q '"section":"stage_profile"' "$smoke_dir/manifest.json" || {
    echo "ci.sh: --profile manifest lacks the stage_profile section" >&2
    exit 1
}

echo "==> fault-injection smoke (repro --fault-plan + degraded exit code)"
# The multi-class plan must leave partial results, a schema-valid trace
# and the dedicated degraded exit code (3) — anything else is a regression
# in the graceful-degradation ladder (DESIGN.md §11).
fault_plan="$repo_root/crates/bench/tests/fixtures/table4_faults.plan"
fault_rc=0
(cd "$smoke_dir" && "$repo_root/target/release/repro" table4 --denom 16384 --seed 7 --quiet \
    --fault-plan "$fault_plan" --trace fault_trace.jsonl) || fault_rc=$?
if [ "$fault_rc" -ne 3 ]; then
    echo "ci.sh: repro --fault-plan exited $fault_rc, expected 3 (degraded)" >&2
    exit 1
fi
cargo run -q -p xtask -- lint --check-events "$smoke_dir/fault_trace.jsonl"
grep -q '"kind":"fault_injected"' "$smoke_dir/fault_trace.jsonl" || {
    echo "ci.sh: no fault_injected events in the degraded trace" >&2
    exit 1
}
test -s "$smoke_dir/results/table4.json"

echo "==> reliability smoke (repro reliability: bounded B, fixed seed, manifest section)"
# Small scale keeps the bootstrap/coverage budgets low (the experiment
# scales its replicate counts by --denom); the trace must stay
# schema-valid and the manifest must carry the reliability section.
(cd "$smoke_dir" && "$repo_root/target/release/repro" reliability --denom 16384 --seed 7 --quiet \
    --trace rel_trace.jsonl --metrics-out rel_manifest.json)
cargo run -q -p xtask -- lint --check-events "$smoke_dir/rel_trace.jsonl"
grep -q '"kind":"reliability"' "$smoke_dir/rel_trace.jsonl" || {
    echo "ci.sh: no reliability events in the reliability trace" >&2
    exit 1
}
grep -q '"section":"reliability"' "$smoke_dir/rel_manifest.json" || {
    echo "ci.sh: manifest lacks the reliability section" >&2
    exit 1
}
test -s "$smoke_dir/results/reliability.json"

echo "==> serve smoke (ephemeral port, cache hit, clean SIGTERM shutdown)"
serve_log="$smoke_dir/serve.log"
"$repo_root/target/release/serve" run --port 0 --denom 16384 --seed 7 --workers 2 \
    --quiet >"$serve_log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 300); do
    addr="$(sed -n 's#^ghosts-serve listening on http://##p' "$serve_log" | head -n 1)"
    [ -n "$addr" ] && break
    kill -0 "$serve_pid" 2>/dev/null || break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "ci.sh: serve never announced a listening address" >&2
    cat "$serve_log" >&2
    exit 1
fi
serve_req() { "$repo_root/target/release/serve" req "$@"; }
serve_req GET "http://$addr/healthz" --expect-status 200 >/dev/null 2>&1
# Membership answers come from one PrefixPlane trie descent plus one
# bit probe of the observed plane; the shape and the always-bogon
# loopback classification are scenario-independent.
serve_req GET "http://$addr/v1/membership/8.8.8.8" --expect-status 200 \
    >"$smoke_dir/membership.json" 2>/dev/null
grep -q '"addr":"8.8.8.8"' "$smoke_dir/membership.json" && \
    grep -q '"routed":' "$smoke_dir/membership.json" || {
    echo "ci.sh: membership response lacks the addr/routed fields" >&2
    cat "$smoke_dir/membership.json" >&2
    exit 1
}
serve_req GET "http://$addr/v1/membership/127.0.0.1" --expect-status 200 \
    >"$smoke_dir/membership_bogon.json" 2>/dev/null
grep -q '"bogon":true' "$smoke_dir/membership_bogon.json" || {
    echo "ci.sh: membership did not classify loopback as bogon" >&2
    cat "$smoke_dir/membership_bogon.json" >&2
    exit 1
}
serve_req POST "http://$addr/v1/estimate" '{"window":0}' --expect-status 200 \
    >"$smoke_dir/est1.json" 2>/dev/null
serve_req POST "http://$addr/v1/estimate" '{"window":0}' --expect-status 200 \
    >"$smoke_dir/est2.json" 2>"$smoke_dir/est2.headers"
cmp -s "$smoke_dir/est1.json" "$smoke_dir/est2.json" || {
    echo "ci.sh: repeated estimate responses are not byte-identical" >&2
    exit 1
}
grep -q '^x-cache: hit-mem$' "$smoke_dir/est2.headers" || {
    echo "ci.sh: second estimate was not served from the cache" >&2
    cat "$smoke_dir/est2.headers" >&2
    exit 1
}
serve_req GET "http://$addr/metrics" >"$smoke_dir/serve_metrics.txt" 2>/dev/null
grep -q '^serve_cache_hit_mem 1$' "$smoke_dir/serve_metrics.txt" || {
    echo "ci.sh: /metrics does not report the cache hit" >&2
    cat "$smoke_dir/serve_metrics.txt" >&2
    exit 1
}
grep -q '^serve_request_us{lane="volatile",quantile="0.99"}' "$smoke_dir/serve_metrics.txt" || {
    echo "ci.sh: /metrics lacks the volatile latency quantiles" >&2
    cat "$smoke_dir/serve_metrics.txt" >&2
    exit 1
}
# Non-mutating reads: a second scrape of the quiescent server must be
# byte-identical to the first (the drain-on-read wart stays dead).
serve_req GET "http://$addr/metrics" >"$smoke_dir/serve_metrics2.txt" 2>/dev/null
cmp -s "$smoke_dir/serve_metrics.txt" "$smoke_dir/serve_metrics2.txt" || {
    echo "ci.sh: consecutive /metrics scrapes differ (drain-on-read regression)" >&2
    diff "$smoke_dir/serve_metrics.txt" "$smoke_dir/serve_metrics2.txt" >&2 || true
    exit 1
}
serve_req GET "http://$addr/v1/profile" >"$smoke_dir/serve_profile.json" 2>/dev/null
grep -q '"clock":"wall"' "$smoke_dir/serve_profile.json" || {
    echo "ci.sh: /v1/profile lacks the stage table" >&2
    cat "$smoke_dir/serve_profile.json" >&2
    exit 1
}
grep -q 'serve/parse' "$smoke_dir/serve_profile.json" || {
    echo "ci.sh: /v1/profile does not attribute the serve stages" >&2
    cat "$smoke_dir/serve_profile.json" >&2
    exit 1
}
serve_req GET "http://$addr/v1/trace/tail?n=8" >"$smoke_dir/serve_tail.jsonl" 2>/dev/null
cargo run -q -p xtask -- lint --check-events "$smoke_dir/serve_tail.jsonl"
grep -q '"name":"tail_retention"' "$smoke_dir/serve_tail.jsonl" || {
    echo "ci.sh: /v1/trace/tail lacks the retention accounting event" >&2
    cat "$smoke_dir/serve_tail.jsonl" >&2
    exit 1
}
kill -TERM "$serve_pid"
serve_rc=0
wait "$serve_pid" || serve_rc=$?
if [ "$serve_rc" -ne 143 ]; then
    echo "ci.sh: serve exited $serve_rc on SIGTERM, expected 143" >&2
    exit 1
fi

echo "==> crash smoke (SIGKILL mid-ingest, restart, acked observations survive)"
# The durability contract end to end: observations acked before a kill -9
# must all be present after recovery, and the recovered estimate must be
# byte-identical — then a drain checkpoints and exits 0.
ingest_dir="$smoke_dir/ingest"
start_ingest_serve() {
    local log="$1"
    "$repo_root/target/release/serve" run --port 0 --denom 65536 --quiet \
        --ingest-dir "$ingest_dir" >"$log" 2>&1 &
    ingest_pid=$!
    ingest_addr=""
    for _ in $(seq 1 300); do
        ingest_addr="$(sed -n 's#^ghosts-serve listening on http://##p' "$log" | head -n 1)"
        [ -n "$ingest_addr" ] && break
        kill -0 "$ingest_pid" 2>/dev/null || break
        sleep 0.1
    done
    if [ -z "$ingest_addr" ]; then
        echo "ci.sh: ingest serve never announced a listening address" >&2
        cat "$log" >&2
        exit 1
    fi
}
start_ingest_serve "$smoke_dir/serve_ingest1.log"
for i in $(seq 0 5); do
    serve_req POST "http://$ingest_addr/v1/observations" \
        "{\"key\":\"c$i\",\"source\":\"s$((i % 3))\",\"addrs\":[\"8.0.$i.1\",\"8.0.$i.2\"]}" \
        --expect-status 201 >/dev/null 2>&1
done
serve_req GET "http://$ingest_addr/v1/observations/stats" \
    >"$smoke_dir/ingest_stats1.json" 2>/dev/null
serve_req GET "http://$ingest_addr/v1/observations/estimate" \
    >"$smoke_dir/ingest_est1.json" 2>/dev/null
kill -9 "$ingest_pid"
wait "$ingest_pid" 2>/dev/null || true

start_ingest_serve "$smoke_dir/serve_ingest2.log"
serve_req GET "http://$ingest_addr/v1/observations/stats" \
    >"$smoke_dir/ingest_stats2.json" 2>/dev/null
digest1="$(sed -n 's/.*"digest":"\([0-9a-f]*\)".*/\1/p' "$smoke_dir/ingest_stats1.json")"
digest2="$(sed -n 's/.*"digest":"\([0-9a-f]*\)".*/\1/p' "$smoke_dir/ingest_stats2.json")"
if [ -z "$digest1" ] || [ "$digest1" != "$digest2" ]; then
    echo "ci.sh: state digest changed across kill -9 ($digest1 -> $digest2)" >&2
    cat "$smoke_dir/ingest_stats2.json" >&2
    exit 1
fi
grep -q '"applied":6' "$smoke_dir/ingest_stats2.json" || {
    echo "ci.sh: acked observations lost across kill -9" >&2
    cat "$smoke_dir/ingest_stats2.json" >&2
    exit 1
}
serve_req GET "http://$ingest_addr/v1/observations/estimate" \
    >"$smoke_dir/ingest_est2.json" 2>/dev/null
cmp -s "$smoke_dir/ingest_est1.json" "$smoke_dir/ingest_est2.json" || {
    echo "ci.sh: recovered estimate is not byte-identical" >&2
    diff "$smoke_dir/ingest_est1.json" "$smoke_dir/ingest_est2.json" >&2 || true
    exit 1
}
# Idempotency: re-sending an acked key must dedup, not double-apply.
serve_req POST "http://$ingest_addr/v1/observations" \
    '{"key":"c0","source":"s0","addrs":["8.0.0.1","8.0.0.2"]}' \
    --expect-status 200 >"$smoke_dir/ingest_dup.json" 2>/dev/null
grep -q '"status":"duplicate"' "$smoke_dir/ingest_dup.json" || {
    echo "ci.sh: idempotent re-send did not dedup" >&2
    cat "$smoke_dir/ingest_dup.json" >&2
    exit 1
}
# Graceful path: drain checkpoints and the process exits 0.
serve_req POST "http://$ingest_addr/v1/admin/drain" '' --expect-status 200 >/dev/null 2>&1
drain_rc=0
wait "$ingest_pid" || drain_rc=$?
if [ "$drain_rc" -ne 0 ]; then
    echo "ci.sh: drained serve exited $drain_rc, expected 0" >&2
    exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> ci.sh: all green"
