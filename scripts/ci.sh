#!/usr/bin/env bash
# Tier-1 gate: everything a change must pass before it lands.
# Usage: scripts/ci.sh  (run from anywhere; operates on the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> ghost-lint (cargo run -p xtask -- lint)"
cargo run -q -p xtask -- lint

echo "==> observability smoke (repro --trace / --metrics-out + schema check)"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
repo_root="$(pwd)"
# Run from the temp dir so the smoke run's results/ don't clobber the
# committed default-scale artifacts.
(cd "$smoke_dir" && "$repo_root/target/release/repro" table4 --denom 16384 --seed 7 --quiet \
    --trace trace.jsonl --metrics-out manifest.json)
cargo run -q -p xtask -- lint --check-events "$smoke_dir/trace.jsonl"
test -s "$smoke_dir/manifest.json"

echo "==> fault-injection smoke (repro --fault-plan + degraded exit code)"
# The multi-class plan must leave partial results, a schema-valid trace
# and the dedicated degraded exit code (3) — anything else is a regression
# in the graceful-degradation ladder (DESIGN.md §11).
fault_plan="$repo_root/crates/bench/tests/fixtures/table4_faults.plan"
fault_rc=0
(cd "$smoke_dir" && "$repo_root/target/release/repro" table4 --denom 16384 --seed 7 --quiet \
    --fault-plan "$fault_plan" --trace fault_trace.jsonl) || fault_rc=$?
if [ "$fault_rc" -ne 3 ]; then
    echo "ci.sh: repro --fault-plan exited $fault_rc, expected 3 (degraded)" >&2
    exit 1
fi
cargo run -q -p xtask -- lint --check-events "$smoke_dir/fault_trace.jsonl"
grep -q '"kind":"fault_injected"' "$smoke_dir/fault_trace.jsonl" || {
    echo "ci.sh: no fault_injected events in the degraded trace" >&2
    exit 1
}
test -s "$smoke_dir/results/table4.json"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> ci.sh: all green"
