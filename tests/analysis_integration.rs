//! Analysis integration: cross-validation, growth series and the
//! unused-space model over simulator output.

use ghosts::analysis::unused::{
    census_subnets, distribute_ghosts, estimate_ratios, ghost_subnet_equivalents, CensusDepth,
};
use ghosts::prelude::*;

fn scenario() -> Scenario {
    Scenario::new(SimConfig::tiny(31337))
}

#[test]
fn cross_validation_beats_observed_baseline() {
    // §5.3: "the LLM CR estimates are a substantial improvement over just
    // using the number of observed IPs."
    let s = scenario();
    let w = paper_windows()[8]; // window 9 in the paper's 1-based count
    let data = s.window_data_clean(w);
    let cfg = CrConfig {
        min_stratum_observed: 0,
        ..CrConfig::paper()
    };
    let report = cross_validate_window(&data, Granularity::Addresses, &cfg, false);
    assert!(report.is_complete(), "no source should be skipped or fail");
    let results = report.results;
    assert_eq!(results.len(), data.sources.len());

    let cr = aggregate_errors(&results);
    let baseline = ghosts::analysis::observed_baseline_errors(&results);
    assert!(
        cr.mae < baseline.mae,
        "CR MAE {} must beat observed-only MAE {}",
        cr.mae,
        baseline.mae
    );
    for r in &results {
        assert!(r.estimate <= r.truth as f64 + 1e-6, "{}", r.source);
        assert!(r.estimate >= r.observed_by_others as f64 - 1e-6);
    }
}

#[test]
fn cross_validation_distinguishes_skips_from_failures() {
    // A window with only two sources cannot cross-validate: holding one
    // out leaves a single source, which is below the CR minimum. That is
    // a *skip* (structurally impossible), not a fit *failure* — the two
    // must land in different buckets of the report.
    let s = scenario();
    let w = paper_windows()[8];
    let mut data = s.window_data_clean(w);
    data.sources.truncate(2);
    let cfg = CrConfig {
        min_stratum_observed: 0,
        ..CrConfig::paper()
    };
    let report = cross_validate_window(&data, Granularity::Addresses, &cfg, false);
    assert!(report.results.is_empty());
    assert!(
        report.failed.is_empty(),
        "too-few-sources must not be reported as a fit failure: {:?}",
        report.failed
    );
    assert_eq!(report.skipped.len(), 2, "both held-out sources skip");
    for skip in &report.skipped {
        assert_eq!(
            skip.remaining, 1,
            "{} skipped with 1 source left",
            skip.source
        );
    }
    assert!(!report.is_complete());
    assert!(report.errors().is_none(), "no errors without results");
}

#[test]
fn growth_series_shapes_match_paper() {
    let s = scenario();
    let windows = paper_windows();
    let mut observed = Vec::new();
    let mut truth = Vec::new();
    for w in &windows {
        let data = s.window_data_clean(*w);
        observed.push(data.observed_union().len() as f64);
        truth.push(s.truth_addrs(*w).len() as f64);
    }
    let obs_series = Series::new("Observed", &windows, &observed);
    let truth_series = Series::new("Truth", &windows, &truth);

    // Both grow; the trends are positive and roughly linear (R² high).
    let obs_fit = obs_series.trend().unwrap();
    let truth_fit = truth_series.trend().unwrap();
    assert!(obs_fit.slope > 0.0 && truth_fit.slope > 0.0);
    assert!(
        truth_fit.r_squared > 0.95,
        "truth R² {}",
        truth_fit.r_squared
    );
    // Normalised growth of the observed union outpaces the routed space
    // (which is constant here), as in Fig 5.
    let norm = obs_series.normalised();
    assert!(*norm.last().unwrap() > 1.15);
}

#[test]
fn unused_space_model_places_all_ghosts_and_crosschecks_llm() {
    let s = scenario();
    let w = *paper_windows().last().unwrap();
    let data = s.window_data_clean(w);
    let universe = s.gt.routed.prefixes();

    // Subnet-level censuses from source merges.
    let union_without = |exclude: &str| {
        let mut u = SubnetSet::new();
        for d in &data.sources {
            if d.name != exclude && d.name != "SWIN" && d.name != "CALT" {
                u.union_with(&d.subnets());
            }
        }
        u
    };
    let mut experiments = Vec::new();
    for held in ["IPING", "WEB"] {
        let before_set = union_without(held);
        let before = census_subnets(&universe, &before_set);
        let mut merged = before_set.clone();
        merged.union_with(&data.source(held).unwrap().subnets());
        let after = census_subnets(&universe, &merged);
        experiments.push((before, after));
    }
    let ratios = estimate_ratios(&experiments, CensusDepth::Subnets);

    // LLM ghost /24s.
    let subnet_sets: Vec<SubnetSet> = data.sources.iter().map(|d| d.subnets()).collect();
    let refs: Vec<&SubnetSet> = subnet_sets.iter().collect();
    let table = ContingencyTable::from_subnet_sets(&refs);
    let est = estimate_table(
        &table,
        Some(s.gt.routed.subnet24_count()),
        &CrConfig::paper(),
    )
    .unwrap();

    // Place the ghosts into vacant blocks.
    let mut all = SubnetSet::new();
    for d in &data.sources {
        if d.name != "SWIN" && d.name != "CALT" {
            all.union_with(&d.subnets());
        }
    }
    let x0 = census_subnets(&universe, &all);
    let n = distribute_ghosts(&x0, &ratios, est.unseen, CensusDepth::Subnets);
    let placed: f64 = n.iter().sum();
    assert!(
        (placed - est.unseen).abs() < est.unseen * 0.01 + 1.0,
        "placed {placed} of {} ghosts",
        est.unseen
    );
    // At subnet depth every placement is a whole /24-equivalent or larger.
    let equivalents = ghost_subnet_equivalents(&n);
    assert!(equivalents >= placed * 0.99);
}

#[test]
fn supply_projection_runs_out_in_the_future() {
    let s = scenario();
    let windows = paper_windows();
    let mut estimates = Vec::new();
    for w in &windows {
        let data = s.window_data_clean(*w);
        // Cheap proxy for the estimate series: observed union scaled by a
        // constant ghost factor (the full CR series is exercised in the
        // repro harness; here we test the projection plumbing).
        estimates.push(data.observed_union().len() as f64 * 1.4);
    }
    let series = Series::new("Estimated", &windows, &estimates);
    let routed = s.gt.routed.address_count() as f64;
    let used = *estimates.last().unwrap();
    let row = ghosts::analysis::project(None, routed * 0.02, routed, used, &series, 1.0);
    let runout = row.runout_year.expect("positive growth");
    assert!(
        runout > 2014.5 && runout < 2100.0,
        "implausible run-out {runout}"
    );
    // A 75% cap cannot extend the run-out.
    let capped = ghosts::analysis::project(None, routed * 0.02, routed, used, &series, 0.75);
    assert!(capped.runout_year.unwrap() <= runout);
}

#[test]
fn fig3_style_ranges_cover_most_sources() {
    // Fig 3: normalised CV ranges should bracket 1.0 for most sources.
    let s = scenario();
    let w = paper_windows()[8];
    let data = s.window_data_clean(w);
    let cfg = CrConfig {
        min_stratum_observed: 0,
        ..CrConfig::paper()
    };
    let report = cross_validate_window(&data, Granularity::Addresses, &cfg, true);
    assert!(report.is_complete(), "every source must yield a range");
    let results = report.results;
    let mut covered = 0usize;
    for r in &results {
        let range = r.range.expect("requested");
        let lo = range.lower / r.truth as f64;
        let hi = range.upper / r.truth as f64;
        assert!(lo <= hi);
        if (lo..=hi).contains(&1.0) {
            covered += 1;
        }
    }
    // The paper itself reports a few slightly-off ranges (TPING, CALT,
    // GAME); require a majority, not perfection.
    assert!(
        covered * 2 >= results.len(),
        "only {covered}/{} ranges cover the truth",
        results.len()
    );
}
