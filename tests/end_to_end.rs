//! End-to-end integration: simulator → pipeline → estimator → truth.
//!
//! The central claim of the paper — capture–recapture over heterogeneous
//! sources recovers used space that no source observed — must hold on the
//! simulated Internet with known ground truth.

use ghosts::prelude::*;

fn scenario() -> Scenario {
    Scenario::new(SimConfig::tiny(1234))
}

#[test]
fn cr_beats_observed_union_on_addresses() {
    let s = scenario();
    let w = *paper_windows().last().unwrap();
    let data = s.window_data_clean(w);
    let truth = s.truth_addrs(w).len() as f64;

    let sets = data.addr_sets();
    let table = ContingencyTable::from_addr_sets(&sets);
    let observed = table.observed_total() as f64;
    let est = estimate_table(
        &table,
        Some(s.gt.routed.address_count()),
        &CrConfig::paper(),
    )
    .expect("window estimable");

    assert!(observed < truth, "the union must undercount");
    assert!(est.total > observed, "CR must add ghosts");
    assert!(est.total <= s.gt.routed.address_count() as f64, "plausible");
    let obs_err = truth - observed;
    let est_err = (truth - est.total).abs();
    assert!(
        est_err < obs_err * 0.75,
        "CR should close at least a quarter of the gap: \
         observed {observed}, estimated {}, truth {truth}",
        est.total
    );
}

#[test]
fn cr_beats_observed_union_on_subnets() {
    let s = scenario();
    let w = *paper_windows().last().unwrap();
    let data = s.window_data_clean(w);
    let truth = s.truth_subnets(w).len() as f64;

    let subnet_sets: Vec<SubnetSet> = data.sources.iter().map(|d| d.subnets()).collect();
    let refs: Vec<&SubnetSet> = subnet_sets.iter().collect();
    let table = ContingencyTable::from_subnet_sets(&refs);
    let observed = table.observed_total() as f64;
    let est = estimate_table(
        &table,
        Some(s.gt.routed.subnet24_count()),
        &CrConfig::paper(),
    )
    .expect("window estimable");

    assert!(observed < truth);
    assert!(est.total >= observed);
    // §6.3: the /24 estimate is only 5–10% above observed — the union
    // already sees most used /24s.
    let ratio = est.total / observed;
    assert!(
        (1.0..1.35).contains(&ratio),
        "estimated/observed /24 ratio {ratio} out of band"
    );
}

#[test]
fn address_estimate_exceeds_subnet_estimate_relative_to_observed() {
    // §6.3: "the number of estimated /24 networks is only 5–10% above the
    // number of observed /24 networks, whereas the number of estimated
    // IPs is 50–60% above the number of observed IPs".
    let s = scenario();
    let w = *paper_windows().last().unwrap();
    let data = s.window_data_clean(w);

    let sets = data.addr_sets();
    let addr_table = ContingencyTable::from_addr_sets(&sets);
    let addr_est = estimate_table(
        &addr_table,
        Some(s.gt.routed.address_count()),
        &CrConfig::paper(),
    )
    .unwrap();
    let addr_ratio = addr_est.total / addr_est.observed as f64;

    let subnet_sets: Vec<SubnetSet> = data.sources.iter().map(|d| d.subnets()).collect();
    let refs: Vec<&SubnetSet> = subnet_sets.iter().collect();
    let sub_table = ContingencyTable::from_subnet_sets(&refs);
    let sub_est = estimate_table(
        &sub_table,
        Some(s.gt.routed.subnet24_count()),
        &CrConfig::paper(),
    )
    .unwrap();
    let sub_ratio = sub_est.total / sub_est.observed as f64;

    assert!(
        addr_ratio > sub_ratio,
        "address ghosts ratio {addr_ratio} must exceed subnet ratio {sub_ratio}"
    );
}

#[test]
fn estimates_grow_roughly_linearly_over_windows() {
    let s = scenario();
    let windows = paper_windows();
    // Sample a subset of windows to keep the test fast in debug builds.
    let picks = [0usize, 5, 10];
    let mut estimates = Vec::new();
    for &i in &picks {
        let data = s.window_data_clean(windows[i]);
        let sets = data.addr_sets();
        let table = ContingencyTable::from_addr_sets(&sets);
        let est = estimate_table(
            &table,
            Some(s.gt.routed.address_count()),
            &CrConfig::paper(),
        )
        .unwrap();
        estimates.push(est.total);
    }
    assert!(
        estimates[0] < estimates[1] && estimates[1] < estimates[2],
        "estimates must grow: {estimates:?}"
    );
    // Roughly linear: the middle point near the chord's midpoint.
    let chord_mid = (estimates[0] + estimates[2]) / 2.0;
    let rel_dev = (estimates[1] - chord_mid).abs() / chord_mid;
    assert!(rel_dev < 0.15, "growth far from linear: {estimates:?}");
}

#[test]
fn spoofed_netflow_inflates_and_filter_recovers() {
    let s = scenario();
    let w = *paper_windows().last().unwrap();
    let dirty = s.window_data(w);
    let clean = s.window_data_clean(w);

    let swin_dirty = &dirty.source("SWIN").unwrap().addrs;
    let swin_clean = &clean.source("SWIN").unwrap().addrs;
    assert!(
        swin_dirty.to_subnet24().len() > swin_clean.to_subnet24().len() * 2,
        "spoofing must inflate the raw /24 count substantially"
    );

    let fcfg = SpoofFilterConfig::with_universe(s.routed_per_eight());
    let mut rng = ghosts::stats::rng::component_rng(5, "e2e-spoof");
    let report = filter_spoofed(swin_dirty, &dirty.spoof_free_union(), &fcfg, &mut rng);
    let filtered24 = report.filtered.to_subnet24().len() as f64;
    let clean24 = swin_clean.to_subnet24().len() as f64;
    assert!(
        (filtered24 - clean24).abs() / clean24 < 0.25,
        "filtered /24 count {filtered24} far from spoof-free {clean24}"
    );
}
