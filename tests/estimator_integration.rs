//! Estimator integration: stratified estimation over simulator output
//! (§3.4, Table 5) and the ground-truth network comparison (§5.2,
//! Table 4).

use ghosts::core::estimator::estimate_stratified;
use ghosts::net::Rir;
use ghosts::prelude::*;

fn scenario() -> Scenario {
    Scenario::new(SimConfig::tiny(4242))
}

/// Builds per-RIR stratified tables for a window.
fn rir_tables(s: &Scenario, data: &WindowData) -> (Vec<ContingencyTable>, Vec<u64>) {
    let sets = data.addr_sets();
    let tables =
        ghosts::core::ContingencyTable::stratified_from_addr_sets(&sets, Rir::ALL.len(), |addr| {
            s.gt.registry
                .lookup(addr)
                .map(|(_, a)| Rir::ALL.iter().position(|r| *r == a.rir).unwrap())
        });
    let mut limits = vec![0u64; Rir::ALL.len()];
    for p in s.gt.routed.prefixes() {
        if let Some((_, a)) = s.gt.registry.lookup(p.base()) {
            let idx = Rir::ALL.iter().position(|r| *r == a.rir).unwrap();
            limits[idx] += p.num_addresses();
        }
    }
    (tables, limits)
}

#[test]
fn stratified_total_consistent_with_unstratified() {
    // Table 5: "The estimated used IPs are fairly consistent across
    // stratifications".
    let s = scenario();
    let w = *paper_windows().last().unwrap();
    let data = s.window_data_clean(w);

    let sets = data.addr_sets();
    let table = ContingencyTable::from_addr_sets(&sets);
    let flat = estimate_table(
        &table,
        Some(s.gt.routed.address_count()),
        &CrConfig::paper(),
    )
    .expect("flat estimate");

    let (tables, limits) = rir_tables(&s, &data);
    let strat = estimate_stratified(&tables, Some(&limits), &CrConfig::paper());
    assert!(strat.is_clean(), "stratified estimate is clean");

    let rel = (strat.estimated_total - flat.total).abs() / flat.total;
    assert!(
        rel < 0.15,
        "stratified {} vs flat {} differ by {:.1}%",
        strat.estimated_total,
        flat.total,
        rel * 100.0
    );
    // Observed totals must agree exactly up to dropped strata.
    assert!(strat.observed_total <= flat.observed);
    assert!(strat.observed_total as f64 > flat.observed as f64 * 0.95);
}

#[test]
fn per_rir_estimates_order_like_allocations() {
    let s = scenario();
    let w = *paper_windows().last().unwrap();
    let data = s.window_data_clean(w);
    let (tables, limits) = rir_tables(&s, &data);
    let strat = estimate_stratified(&tables, Some(&limits), &CrConfig::paper());

    // APNIC (index 1) should dominate AfriNIC (index 0) — as in Fig 6.
    let apnic = strat.strata[1].as_ref().map(|e| e.total).unwrap_or(0.0);
    let afrinic = strat.strata[0].as_ref().map(|e| e.total).unwrap_or(0.0);
    assert!(
        apnic > afrinic,
        "APNIC {apnic} should exceed AfriNIC {afrinic}"
    );
    // Every stratum estimate stays below its routed limit.
    for (i, est) in strat.strata.iter().enumerate() {
        if let Some(e) = est {
            assert!(
                e.total <= limits[i] as f64 + 1e-6,
                "{}: estimate above routed space",
                Rir::ALL[i]
            );
        }
    }
}

#[test]
fn truth_networks_estimated_better_than_observed() {
    // Table 4's core claim: "the CR estimates are always much closer to
    // the truth" than observed (and pingable) counts.
    let mut cfg = SimConfig::tiny(99);
    cfg.allocated_budget = 900_000;
    cfg.with_truth_networks = true;
    let s = Scenario::new(cfg);
    let w = *paper_windows().last().unwrap();
    let data = s.window_data_clean(w);
    let truth = s.truth_addrs(w);

    let mut improved = 0usize;
    let mut total = 0usize;
    for n in &s.gt.truth_networks {
        // Restrict every source to the network.
        let restricted: Vec<AddrSet> = data
            .sources
            .iter()
            .map(|d| {
                let mut r = AddrSet::new();
                for a in d.addrs.iter() {
                    if n.prefix.contains(a) {
                        r.insert(a);
                    }
                }
                r
            })
            .collect();
        let refs: Vec<&AddrSet> = restricted.iter().collect();
        let table = ContingencyTable::from_addr_sets(&refs);
        if table.observed_total() < 100 {
            continue; // network barely sampled at this scale
        }
        let net_truth = truth.count_in_prefix(n.prefix) as f64;
        let est = estimate_table(&table, Some(n.prefix.num_addresses()), &CrConfig::paper())
            .expect("network estimable");
        total += 1;
        let obs_err = (net_truth - est.observed as f64).abs();
        let est_err = (net_truth - est.total).abs();
        if est_err < obs_err {
            improved += 1;
        }
        // Estimates stay within the network's size.
        assert!(est.total <= n.prefix.num_addresses() as f64 + 1e-6);
    }
    assert!(total >= 4, "too few networks sampled ({total})");
    assert!(
        improved * 3 >= total * 2,
        "CR should beat observation on most networks ({improved}/{total})"
    );
}

#[test]
fn truncated_beats_poisson_on_small_strata() {
    // §5.2: "Using right-truncated Poisson distributions gives better
    // estimates than using Poisson distributions" — on small, nearly
    // saturated strata.
    let mut cfg = SimConfig::tiny(55);
    cfg.allocated_budget = 900_000;
    cfg.with_truth_networks = true;
    let s = Scenario::new(cfg);
    let w = *paper_windows().last().unwrap();
    let data = s.window_data_clean(w);
    let truth = s.truth_addrs(w);

    let mut trunc_wins = 0usize;
    let mut cases = 0usize;
    for n in &s.gt.truth_networks {
        let restricted: Vec<AddrSet> = data
            .sources
            .iter()
            .map(|d| {
                let mut r = AddrSet::new();
                for a in d.addrs.iter() {
                    if n.prefix.contains(a) {
                        r.insert(a);
                    }
                }
                r
            })
            .collect();
        let refs: Vec<&AddrSet> = restricted.iter().collect();
        let table = ContingencyTable::from_addr_sets(&refs);
        if table.observed_total() < 200 {
            continue;
        }
        let net_truth = truth.count_in_prefix(n.prefix) as f64;
        let plain_cfg = CrConfig {
            truncated: false,
            ..CrConfig::paper()
        };
        let plain = estimate_table(&table, None, &plain_cfg).unwrap();
        let trunc =
            estimate_table(&table, Some(n.prefix.num_addresses()), &CrConfig::paper()).unwrap();
        cases += 1;
        if (net_truth - trunc.total).abs() <= (net_truth - plain.total).abs() {
            trunc_wins += 1;
        }
    }
    assert!(cases >= 4, "too few cases ({cases})");
    assert!(
        trunc_wins * 2 >= cases,
        "truncation should win at least half the cases ({trunc_wins}/{cases})"
    );
}
