//! Pipeline integration: routed filtering, spoof filtering and yearly
//! aggregation over simulator output.

use ghosts::pipeline::aggregate::{window_observed, yearly_summaries};
use ghosts::prelude::*;

fn scenario() -> Scenario {
    Scenario::new(SimConfig::tiny(777))
}

#[test]
fn routed_filter_is_identity_on_simulated_observations() {
    // The simulator only emits used (routed) addresses, so routed
    // filtering must keep everything — a consistency check between sim
    // and pipeline.
    let s = scenario();
    let w = paper_windows()[3];
    let data = s.window_data_clean(w);
    for d in &data.sources {
        let (kept, stats) = filter_to_routed(&d.addrs, &s.gt.routed);
        assert_eq!(kept.len(), d.addrs.len(), "{} lost addresses", d.name);
        assert_eq!(stats.dropped_reserved, 0);
        assert_eq!(stats.dropped_unrouted, 0);
    }
}

#[test]
fn routed_filter_drops_injected_garbage() {
    let s = scenario();
    let w = paper_windows()[3];
    let data = s.window_data_clean(w);
    let mut polluted = data.sources[0].addrs.clone();
    let before = polluted.len();
    polluted.insert(addr_from_str("10.1.2.3").unwrap()); // reserved
    polluted.insert(addr_from_str("192.168.7.7").unwrap()); // reserved
                                                            // An address in public but unrouted space: find one.
    let mut unrouted = None;
    for candidate in (0..20_000u32).map(|i| 0xDD00_0000 + i * 131) {
        if !s.gt.routed.is_routed(candidate) && !ghosts::net::bogons::is_reserved(candidate) {
            unrouted = Some(candidate);
            break;
        }
    }
    polluted.insert(unrouted.expect("unrouted space exists"));
    let (kept, stats) = filter_to_routed(&polluted, &s.gt.routed);
    assert_eq!(kept.len(), before);
    assert_eq!(stats.dropped_reserved, 2);
    assert_eq!(stats.dropped_unrouted, 1);
}

#[test]
fn yearly_summaries_mirror_table2_availability() {
    let s = scenario();
    // Collect per-quarter observations for two quarters of 2011 and one
    // of 2013 for a couple of sources.
    let q1 = Quarter(0);
    let q2 = Quarter(2);
    let q2013 = Quarter(8);
    let obs1 = s.quarter_observations(q1);
    let obs2 = s.quarter_observations(q2);
    let obs3 = s.quarter_observations(q2013);

    let mut rows = Vec::new();
    for (name, set) in obs1.iter().chain(&obs2).chain(&obs3) {
        rows.push((*name, set));
    }
    let quarters = [q1, q2, q2013];
    let mut flat = Vec::new();
    for (i, obs) in [&obs1, &obs2, &obs3].into_iter().enumerate() {
        for (name, set) in obs {
            flat.push((*name, quarters[i], set));
        }
    }
    let summaries = yearly_summaries(flat);

    // SPAM starts May 2012 → no 2011 row; TPING starts Mar 2012.
    assert!(!summaries
        .iter()
        .any(|r| r.source == "SPAM" && r.year == 2011));
    assert!(!summaries
        .iter()
        .any(|r| r.source == "TPING" && r.year == 2011));
    // IPING has rows in both years and its 2013 census sees more.
    let iping_2011 = summaries
        .iter()
        .find(|r| r.source == "IPING" && r.year == 2011)
        .expect("IPING 2011");
    let iping_2013 = summaries
        .iter()
        .find(|r| r.source == "IPING" && r.year == 2013)
        .expect("IPING 2013");
    assert!(iping_2013.unique_ips > iping_2011.unique_ips);
    // /24 counts never exceed IP counts.
    for r in &summaries {
        assert!(r.unique_subnets <= r.unique_ips, "{r:?}");
    }
}

#[test]
fn spoof_filter_never_removes_confirmed_addresses() {
    let s = scenario();
    let w = *paper_windows().last().unwrap();
    let dirty = s.window_data(w);
    let spoof_free = dirty.spoof_free_union();
    let swin = &dirty.source("SWIN").unwrap().addrs;

    let fcfg = SpoofFilterConfig::with_universe(s.routed_per_eight());
    let mut rng = ghosts::stats::rng::component_rng(3, "pipe-spoof");
    let report = filter_spoofed(swin, &spoof_free, &fcfg, &mut rng);
    for addr in swin.iter() {
        if spoof_free.contains(addr) {
            assert!(
                report.filtered.contains(addr),
                "confirmed address {addr} was removed"
            );
        }
    }
}

#[test]
fn window_observed_counts_match_union() {
    let s = scenario();
    let w = paper_windows()[6];
    let data = s.window_data_clean(w);
    let obs = window_observed(&data);
    let union = data.observed_union();
    assert_eq!(obs.ips, union.len());
    assert_eq!(obs.subnets, union.to_subnet24().len());
    assert!(obs.subnets <= obs.ips);
}

#[test]
fn calt_spike_hits_march_2014_window_only() {
    let s = scenario();
    let ws = paper_windows();
    // Window 9 ends Mar 2014 (contains the spike quarter 12); window 7
    // ends Sep 2013 (no spike).
    let w_before = ws[7];
    let w_spike = ws[9];
    assert!(w_spike.contains(Quarter(12)));
    assert!(!w_before.contains(Quarter(12)));
    let calt_before = s.window_data(w_before).take_source("CALT").unwrap();
    let calt_spike = s.window_data(w_spike).take_source("CALT").unwrap();
    assert!(
        calt_spike.addrs.len() as f64 > calt_before.addrs.len() as f64 * 1.5,
        "CALT spike missing: {} vs {}",
        calt_spike.addrs.len(),
        calt_before.addrs.len()
    );
}
