//! Offline vendored shim for the subset of the `criterion` bench API this
//! workspace uses: [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's full statistical machinery it runs a short
//! warm-up, then `sample_size` timed samples, and reports the median,
//! minimum and maximum per-iteration time. That is enough to compare
//! sequential and parallel variants of the same workload, which is what
//! the workspace's benches exist for. `cargo bench -- <filter>` substring
//! filtering and the `--test` smoke-run flag (used by `cargo test
//! --benches`) are honoured.

#![forbid(unsafe_code)]
// A bench harness measures wall-clock time by definition.
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

/// An opaque-to-the-optimiser identity function.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortises setup cost; the shim treats all variants
/// the same (setup is always outside the timed section).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One invocation per batch.
    PerIteration,
}

/// Passed to each benchmark closure; runs and times the workload.
pub struct Bencher<'a> {
    samples: usize,
    test_mode: bool,
    result: &'a mut Vec<Duration>,
}

impl Bencher<'_> {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up: one untimed call, then calibrate an inner batch so each
        // sample lasts long enough for the clock to resolve.
        black_box(routine());
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed();
        let inner = (Duration::from_millis(2).as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000)
            as usize;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..inner {
                black_box(routine());
            }
            self.result.push(start.elapsed() / inner as u32);
        }
    }

    /// Times `routine` on fresh inputs from `setup` (setup untimed).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        if self.test_mode {
            black_box(routine(setup()));
            return;
        }
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.result.push(start.elapsed());
        }
    }
}

/// The top-level harness handle.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    /// Reads the bench CLI: an optional substring filter plus the flags
    /// cargo passes (`--bench`, and `--test` for smoke runs).
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => {}
                "--test" => test_mode = true,
                a if a.starts_with('-') => {} // unknown flags: ignore
                a => filter = Some(a.to_string()),
            }
        }
        Self { filter, test_mode }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: 30,
        }
    }

    /// Benchmarks outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, f: F) -> &mut Self {
        let id = id.to_string();
        run_one(self, &id, 30, f);
        self
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Shim no-op, kept for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(self.parent, &full, self.sample_size, f);
        self
    }

    /// Ends the group (shim no-op).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(c: &mut Criterion, id: &str, samples: usize, mut f: F) {
    if let Some(filter) = &c.filter {
        if !id.contains(filter.as_str()) {
            return;
        }
    }
    let mut result = Vec::with_capacity(samples);
    let mut b = Bencher {
        samples,
        test_mode: c.test_mode,
        result: &mut result,
    };
    f(&mut b);
    if c.test_mode {
        println!("{id}: ok (smoke run)");
        return;
    }
    result.sort_unstable();
    if result.is_empty() {
        println!("{id}: no samples collected");
        return;
    }
    let median = result[result.len() / 2];
    let (lo, hi) = (result[0], result[result.len() - 1]);
    println!(
        "{id:<55} time: [{} {} {}]",
        fmt_duration(lo),
        fmt_duration(median),
        fmt_duration(hi),
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a group runner, mirroring criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_collects_samples() {
        let mut result = Vec::new();
        let mut b = Bencher {
            samples: 5,
            test_mode: false,
            result: &mut result,
        };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(black_box(17));
            acc
        });
        assert_eq!(result.len(), 5);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut result = Vec::new();
        let mut b = Bencher {
            samples: 3,
            test_mode: false,
            result: &mut result,
        };
        let mut setups = 0;
        b.iter_batched(
            || {
                setups += 1;
                vec![1u32; 8]
            },
            |v| v.iter().sum::<u32>(),
            BatchSize::SmallInput,
        );
        assert_eq!(setups, 4); // 1 warm-up + 3 samples
        assert_eq!(result.len(), 3);
    }

    #[test]
    fn test_mode_skips_timing() {
        let mut result = Vec::new();
        let mut b = Bencher {
            samples: 50,
            test_mode: true,
            result: &mut result,
        };
        let mut calls = 0;
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert!(result.is_empty());
    }
}
