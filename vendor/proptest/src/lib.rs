//! Offline vendored shim for the subset of `proptest` this workspace uses:
//! the [`Strategy`] trait, range / collection / union strategies, and the
//! [`proptest!`] / `prop_assert*` / [`prop_oneof!`] / [`prop_assume!`]
//! macros.
//!
//! Differences from crates.io `proptest`, by design:
//!
//! * **No shrinking.** A failing case reports its generated inputs and the
//!   case seed; inputs here are small enough to debug directly.
//! * **Deterministic seeds.** Case `i` of test `name` uses a seed derived
//!   from FNV-1a(name) and `i`, so failures are reproducible across runs
//!   without a persistence file.
//! * `PROPTEST_CASES` overrides the per-test case count (default 64).

#![forbid(unsafe_code)]
// API parity with real proptest requires exposing HashSet strategies;
// test reference models are outside the determinism boundary.
#![allow(clippy::disallowed_types)]

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;
use std::fmt::Debug;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

/// The RNG driving value generation.
pub type TestRng = ChaCha8Rng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`, like upstream `prop_map`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }

    /// Type-erases this strategy (needed by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased alternatives ([`prop_oneof!`]).
pub struct UnionStrategy<V> {
    /// The alternatives; one is drawn uniformly per case.
    pub options: Vec<BoxedStrategy<V>>,
}

impl<V: Debug> Strategy for UnionStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        assert!(!self.options.is_empty(), "prop_oneof! needs an option");
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Whole-domain generation, backing [`any`].
pub trait Arbitrary: Debug + Sized {
    /// Draws a uniform value over the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

/// The strategy returned by [`any`].
#[derive(Debug, Default, Clone, Copy)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the whole domain of `T`, like upstream `any::<T>()`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

pub mod collection {
    //! Collection strategies: `vec` and `hash_set`.

    use super::*;

    /// Size specifications accepted by the collection strategies.
    pub trait IntoSizeRange {
        /// Lower (inclusive) and upper (exclusive) size bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end.max(self.start + 1))
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        lo: usize,
        hi: usize,
    }

    /// Generates vectors whose length lies in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy { elem, lo, hi }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.lo..self.hi);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` with target size drawn from `size`.
    pub struct HashSetStrategy<S> {
        elem: S,
        lo: usize,
        hi: usize,
    }

    /// Generates hash sets whose size lies in `size` (best effort when the
    /// element domain is too small to reach the lower bound).
    pub fn hash_set<S: Strategy>(elem: S, size: impl IntoSizeRange) -> HashSetStrategy<S>
    where
        S::Value: Eq + Hash,
    {
        let (lo, hi) = size.bounds();
        HashSetStrategy { elem, lo, hi }
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.gen_range(self.lo..self.hi);
            let mut out = HashSet::with_capacity(target);
            // Collisions shrink the set, so allow generous retries before
            // accepting an undersized result.
            let max_draws = target * 16 + 64;
            let mut draws = 0;
            while out.len() < target && draws < max_draws {
                out.insert(self.elem.generate(rng));
                draws += 1;
            }
            out
        }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the case is a counterexample.
    Fail(String),
    /// The case was rejected by [`prop_assume!`]; try another.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure from a rendered message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection from a rendered message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// One `Result` per test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// FNV-1a over the test name; the per-test base seed.
fn name_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The number of cases per property (`PROPTEST_CASES`, default 64).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Drives one property: calls `run_case(rng)` for each case seed.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) on the first failing case, or
/// if too many cases are rejected by `prop_assume!`.
pub fn run_property(name: &str, mut run_case: impl FnMut(&mut TestRng) -> TestCaseResult) {
    let base = name_seed(name);
    let wanted = cases();
    let mut passed = 0u64;
    let mut rejected = 0u64;
    let mut case = 0u64;
    while passed < wanted {
        let seed = base ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = TestRng::seed_from_u64(seed);
        match run_case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= wanted * 16,
                    "property {name}: too many prop_assume! rejections \
                     ({rejected} rejects for {passed} passes)"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property {name} failed at case {case} (seed {seed:#x}):\n{msg}\n\
                     (re-run deterministically: the seed depends only on the \
                     test name and case index)"
                );
            }
        }
        case += 1;
    }
}

/// Defines property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running [`run_property`] over generated inputs.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let strategies = ( $(&($strat),)+ );
            $crate::run_property(stringify!($name), |rng| {
                let ( $($arg,)+ ) = strategies;
                $(
                    let $arg = $crate::Strategy::generate($arg, rng);
                )+
                let formatted_inputs = format!(
                    concat!($(stringify!($arg), " = {:?}\n",)+),
                    $(&$arg,)+
                );
                #[allow(unused_mut)]
                let mut body = move || -> $crate::TestCaseResult {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                };
                body().map_err(|e| match e {
                    $crate::TestCaseError::Fail(msg) => $crate::TestCaseError::Fail(
                        format!("{msg}\ninputs:\n{formatted_inputs}")),
                    reject => reject,
                })
            });
        }
    )*};
}

/// Asserts inside a property body; failure reports the case inputs instead
/// of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert!` for equality, with optional context message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), l, r
        );
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case (not a failure): the runner draws a fresh one.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::UnionStrategy {
            options: vec![ $( $crate::Strategy::boxed($strat) ),+ ],
        }
    };
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(a in 3u32..17, b in 1u8..=4, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((1..=4).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn collections_obey_sizes(
            v in crate::collection::vec(0u32..100, 2..9),
            s in crate::collection::hash_set(0u32..1000, 1..30),
        ) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(!s.is_empty() && s.len() < 30);
        }

        #[test]
        fn oneof_and_map_cover_options(x in prop_oneof![
            (0u32..10).prop_map(|v| (0u8, v)),
            (10u32..20).prop_map(|v| (1u8, v)),
        ]) {
            match x {
                (0, v) => prop_assert!(v < 10),
                (1, v) => prop_assert!((10..20).contains(&v)),
                other => prop_assert!(false, "impossible tag {:?}", other),
            }
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn determinism_same_name_same_values() {
        use crate::Strategy;
        use rand::SeedableRng;
        let strat = crate::collection::vec(0u64..1_000_000, 5..6);
        let mut r1 = crate::TestRng::seed_from_u64(super::name_seed("x"));
        let mut r2 = crate::TestRng::seed_from_u64(super::name_seed("x"));
        assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
    }

    #[test]
    #[should_panic(expected = "property sometimes_fails failed")]
    fn failures_panic_with_context() {
        crate::run_property("sometimes_fails", |rng| {
            use rand::Rng;
            let v: u32 = rng.gen_range(0u32..10);
            crate::prop_assert!(v < 5, "v = {v}");
            Ok(())
        });
    }
}
