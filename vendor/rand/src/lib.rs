//! Offline vendored shim for the subset of the `rand` 0.8 API used by this
//! workspace: the [`RngCore`] / [`SeedableRng`] core traits and the [`Rng`]
//! extension trait with `gen`, `gen_range` and `gen_bool`.
//!
//! The real crates.io `rand` cannot be downloaded in the build environment,
//! so the workspace patches `rand` to this crate (see the root
//! `Cargo.toml`'s `[patch.crates-io]` table). Only the APIs exercised by
//! the workspace are provided; the uniform-sampling algorithms follow the
//! same widening-multiply rejection scheme as upstream, but the exact
//! output streams are this crate's own (all workspace expectations are
//! derived from these streams, not upstream's).

#![forbid(unsafe_code)]

/// The core of a random number generator, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed, mirroring
/// `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed type, typically a byte array.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 the
    /// same way `rand_core` 0.6 does.
    fn seed_from_u64(mut state: u64) -> Self {
        // SplitMix64 (Vigna), the expansion used by rand_core 0.6.
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut state).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly over their whole domain by
/// [`Rng::gen`] (the shim's stand-in for the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniform value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    u64 => next_u64, i64 => next_u64, usize => next_u64, isize => next_u64);

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (the upstream
    /// `Standard` convention).
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with a uniform sampler over half-open and inclusive intervals,
/// mirroring `rand::distributions::uniform::SampleUniform`. The blanket
/// [`SampleRange`] impls below are generic over this trait — exactly like
/// upstream — so integer-literal ranges unify with the surrounding
/// expression's type instead of falling back to `i32`.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi - lo) as u64;
                lo + (uniform_u64(rng, span) as $t)
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                (lo as i64).wrapping_add(uniform_u64(rng, span) as i64) as $t
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(uniform_u64(rng, span + 1) as i64) as $t
            }
        }
    )*};
}

impl_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Ranges acceptable to [`Rng::gen_range`], mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Unbiased uniform draw from `[0, span)` via Lemire's widening-multiply
/// rejection method (`span = 0` means the full 64-bit domain).
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(span as u128);
        let lo = m as u64;
        if lo >= span {
            return (m >> 64) as u64;
        }
        // Rejection zone: only `span` may divide 2^64 unevenly.
        let threshold = span.wrapping_neg() % span;
        if lo >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Extension methods on every [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniform value over the whole domain of `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a uniform value from `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} out of [0, 1]");
        // Scaled-integer comparison (upstream's Bernoulli): exact for the
        // boundary cases and free of double rounding in the common path.
        if p >= 1.0 {
            return true;
        }
        let scale = (p * (1u64 << 63) as f64 * 2.0) as u64;
        self.next_u64() < scale
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Minimal stand-ins for `rand::rngs`.

    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic PCG-64-DXSM-style generator, used
    /// where the workspace asks for an unspecified "small" RNG.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u128,
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 16];

        fn from_seed(seed: Self::Seed) -> Self {
            Self {
                state: u128::from_le_bytes(seed) | 1,
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // PCG-DXSM output permutation over a 128-bit LCG.
            const MUL: u128 = 0x2360_ed05_1fc6_5da4_4385_df64_9fcc_f645;
            self.state = self
                .state
                .wrapping_mul(MUL)
                .wrapping_add(0xda3e_39cb_94b9_5bdb);
            let mut hi = (self.state >> 64) as u64;
            let lo = (self.state as u64) | 1;
            hi ^= hi >> 32;
            hi = hi.wrapping_mul(0xda94_2042_e4dd_58b5);
            hi ^= hi >> 48;
            hi.wrapping_mul(lo)
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u8 = rng.gen_range(3..=5);
            assert!((3..=5).contains(&w));
            let f: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn standard_f64_in_unit_interval() {
        let mut rng = Counter(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = Counter(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
