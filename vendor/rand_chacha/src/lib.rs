//! Offline vendored shim for `rand_chacha`: a genuine ChaCha stream-cipher
//! RNG (8, 12 or 20 rounds) implementing the vendored `rand` crate's
//! [`RngCore`]/[`SeedableRng`] traits.
//!
//! The keystream is the RFC 8439 ChaCha block function (with a 64-bit
//! block counter as in the original Bernstein construction), so streams
//! have the full cryptographic equidistribution properties the simulator's
//! per-component stream derivation relies on. Output word order matches
//! the natural little-endian state serialisation. Exact byte-for-byte
//! equality with crates.io `rand_chacha` streams is not guaranteed and not
//! relied upon anywhere in the workspace.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// Generic ChaCha core over `R` double-rounds pairs (8, 12 or 20 rounds).
#[derive(Debug, Clone)]
pub struct ChaChaRng<const ROUNDS: usize> {
    /// Key words 0..8, counter, nonce — the 16-word input block minus the
    /// constants.
    key: [u32; 8],
    nonce: [u32; 2],
    counter: u64,
    /// Buffered keystream block and read position (in words).
    buf: [u32; 16],
    pos: usize,
}

/// ChaCha with 8 rounds — the workspace's deterministic stream generator.
pub type ChaCha8Rng = ChaChaRng<8>;
/// ChaCha with 12 rounds.
pub type ChaCha12Rng = ChaChaRng<12>;
/// ChaCha with 20 rounds.
pub type ChaCha20Rng = ChaChaRng<20>;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl<const ROUNDS: usize> ChaChaRng<ROUNDS> {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.nonce[0];
        state[15] = self.nonce[1];
        let input = state;
        for _ in 0..(ROUNDS / 2) {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buf = state;
        self.pos = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.pos >= 16 {
            self.refill();
        }
        let w = self.buf[self.pos];
        self.pos += 1;
        w
    }

    /// Sets the 64-bit word-stream position to the start of block
    /// `block_index` (mainly for tests).
    pub fn set_block_counter(&mut self, block_index: u64) {
        self.counter = block_index;
        self.pos = 16; // force refill on next draw
    }
}

impl<const ROUNDS: usize> SeedableRng for ChaChaRng<ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            key,
            nonce: [0, 0],
            counter: 0,
            buf: [0; 16],
            pos: 16, // empty buffer: refill on first use
        }
    }
}

impl<const ROUNDS: usize> RngCore for ChaChaRng<ROUNDS> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.3.2 test vector (ChaCha20 block function): checks the
    /// core permutation is the real thing.
    #[test]
    fn rfc8439_block_vector() {
        let mut rng = ChaCha20Rng::from_seed([
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f, 0x10, 0x11, 0x12, 0x13, 0x14, 0x15, 0x16, 0x17, 0x18, 0x19, 0x1a, 0x1b,
            0x1c, 0x1d, 0x1e, 0x1f,
        ]);
        // RFC nonce: 00:00:00:09:00:00:00:4a:00:00:00:00, counter 1.
        // Our layout has a 64-bit counter followed by a 64-bit nonce, so
        // place the RFC's third state word (0x00000009) in counter-high and
        // the rest in the nonce to reproduce the same 16-word input state.
        rng.counter = 1 | (0x0900_0000u64 << 32);
        rng.nonce = [0x4a00_0000, 0x0000_0000];
        rng.pos = 16;
        let first_words: Vec<u32> = (0..4).map(|_| rng.next_u32()).collect();
        assert_eq!(
            first_words,
            vec![0xe4e7_f110, 0x1559_3bd1, 0x1fdd_0f50, 0xc471_20a3]
        );
    }

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let mut diff = 0;
        for _ in 0..256 {
            let x = a.next_u64();
            assert_eq!(x, b.next_u64());
            if x != c.next_u64() {
                diff += 1;
            }
        }
        assert!(diff > 250);
    }

    #[test]
    fn blocks_advance() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
        // Rewinding reproduces block 0 exactly.
        rng.set_block_counter(0);
        let again: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_eq!(first, again);
    }
}
