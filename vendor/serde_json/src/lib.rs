//! Offline vendored shim for the subset of `serde_json` this workspace
//! uses: the [`Value`] tree, the [`json!`] literal macro, and the
//! [`to_string`]/[`to_string_pretty`] serialisers.
//!
//! There is no deserialiser and no `Serialize` trait plumbing — values are
//! built with `json!` from primitives, strings, arrays, vectors and
//! nested maps. Object keys keep insertion order, matching the crates.io
//! crate's `preserve_order` feature that result files were designed
//! around.

#![forbid(unsafe_code)]

use std::fmt;

/// A JSON number: integers are kept exact, everything else is an `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Number {
    /// A negative (or any signed) integer.
    Int(i64),
    /// A non-negative integer too large for `i64` representation concerns.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::Int(v) => write!(f, "{v}"),
            Number::UInt(v) => write!(f, "{v}"),
            Number::Float(v) => {
                if v.is_finite() {
                    // Shortest round-trip representation, always with a
                    // decimal point or exponent so the token stays a float.
                    // Rust's `{}` never uses exponent form, so switch to
                    // `{:e}` for extreme magnitudes to keep tokens short.
                    let a = v.abs();
                    let s = if a != 0.0 && !(1e-5..1e17).contains(&a) {
                        format!("{v:e}")
                    } else {
                        format!("{v}")
                    };
                    if s.contains('.') || s.contains('e') || s.contains('E') {
                        write!(f, "{s}")
                    } else {
                        write!(f, "{s}.0")
                    }
                } else {
                    // JSON has no NaN/inf; serialise as null like serde_json
                    // does for non-finite floats.
                    write!(f, "null")
                }
            }
        }
    }
}

/// An ordered JSON object (insertion order preserved).
pub type Map = Vec<(String, Value)>;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Map),
}

impl Value {
    /// The value under `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This value as an `f64` if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::Int(v)) => Some(*v as f64),
            Value::Number(Number::UInt(v)) => Some(*v as f64),
            Value::Number(Number::Float(v)) => Some(*v),
            _ => None,
        }
    }

    /// This value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array slice if it is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    /// `value["key"]`: the entry if present, `Null` otherwise (matching
    /// serde_json's non-panicking object indexing).
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<String> for Value {
    type Output = Value;
    fn index(&self, key: String) -> &Value {
        &self[key.as_str()]
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    /// `value[i]`: the array element if present, `Null` otherwise.
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::IndexMut<&str> for Value {
    /// `value["key"] = v`: auto-vivifies `Null` into an object and inserts
    /// missing keys as `Null`, like serde_json; panics on other types.
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if matches!(self, Value::Null) {
            *self = Value::Object(Map::new());
        }
        match self {
            Value::Object(map) => {
                if let Some(pos) = map.iter().position(|(k, _)| k == key) {
                    &mut map[pos].1
                } else {
                    map.push((key.to_string(), Value::Null));
                    &mut map.last_mut().expect("just pushed").1
                }
            }
            other => panic!("cannot index {other:?} with a string key"),
        }
    }
}

impl std::ops::IndexMut<String> for Value {
    fn index_mut(&mut self, key: String) -> &mut Value {
        &mut self[key.as_str()]
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                escape_into(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        write_value(&mut s, self, None, 0);
        f.write_str(&s)
    }
}

/// The error type of the (infallible) serialisers, kept for signature
/// compatibility with crates.io `serde_json`.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serialisation error")
    }
}

impl std::error::Error for Error {}

/// Serialises compactly.
///
/// # Errors
///
/// Never fails for [`Value`] inputs; the `Result` mirrors the upstream
/// signature.
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, None, 0);
    Ok(out)
}

/// Serialises with two-space indentation (the upstream pretty format).
///
/// # Errors
///
/// Never fails for [`Value`] inputs; the `Result` mirrors the upstream
/// signature.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, Some(2), 0);
    Ok(out)
}

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::Number(Number::Int(v as i64))
            }
        }
    )*};
}

impl_from_int!(i8, i16, i32, i64, isize);

macro_rules! impl_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::Number(Number::UInt(v as u64))
            }
        }
    )*};
}

impl_from_uint!(u8, u16, u32, u64, usize);

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(Number::Float(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Number(Number::Float(v as f64))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Self {
        Value::String(v.clone())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Into::into)
    }
}

/// By-reference conversion used by [`json!`] leaves, mirroring how the
/// upstream macro serialises through `&expr` (so `json!` never moves its
/// operands).
pub trait ToJson {
    /// Converts to a [`Value`] without consuming `self`.
    fn to_json(&self) -> Value;
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

macro_rules! impl_tojson_copy {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::from(*self)
            }
        }
    )*};
}

impl_tojson_copy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64, bool);

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        self.as_ref().map_or(Value::Null, ToJson::to_json)
    }
}

/// Builds a [`Value`] from a JSON-like literal, mirroring
/// `serde_json::json!`: objects, arrays, `null`, and arbitrary
/// `Into<Value>` expressions as leaves.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($items:tt)* ]) => {
        $crate::Value::Array($crate::json_array_internal!([] $($items)*))
    };
    ({ $($body:tt)* }) => {
        $crate::Value::Object($crate::json_object_internal!([] () $($body)*))
    };
    ($other:expr) => { $crate::ToJson::to_json(&$other) };
}

/// Internal array muncher for [`json!`]; not public API.
#[macro_export]
#[doc(hidden)]
macro_rules! json_array_internal {
    // Termination.
    ([ $($done:expr,)* ]) => { vec![ $($done,)* ] };
    // Next item is an object literal.
    ([ $($done:expr,)* ] { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_array_internal!([ $($done,)* $crate::json!({ $($inner)* }), ] $($($rest)*)?)
    };
    // Next item is a nested array literal.
    ([ $($done:expr,)* ] [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_array_internal!([ $($done,)* $crate::json!([ $($inner)* ]), ] $($($rest)*)?)
    };
    // Next item is null.
    ([ $($done:expr,)* ] null $(, $($rest:tt)*)?) => {
        $crate::json_array_internal!([ $($done,)* $crate::Value::Null, ] $($($rest)*)?)
    };
    // Next item is a general expression.
    ([ $($done:expr,)* ] $next:expr $(, $($rest:tt)*)?) => {
        $crate::json_array_internal!([ $($done,)* $crate::ToJson::to_json(&$next), ] $($($rest)*)?)
    };
}

/// Internal object muncher for [`json!`]; not public API.
///
/// State: `[done pairs] (current key tokens) remaining tokens`.
#[macro_export]
#[doc(hidden)]
macro_rules! json_object_internal {
    // Termination.
    ([ $($done:expr,)* ] ()) => { vec![ $($done,)* ] };
    // Key found: string literal followed by a colon.
    ([ $($done:expr,)* ] () $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_object_internal!(
            [ $($done,)* (($key).to_string(), $crate::json!({ $($inner)* })), ] () $($($rest)*)?)
    };
    ([ $($done:expr,)* ] () $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_object_internal!(
            [ $($done,)* (($key).to_string(), $crate::json!([ $($inner)* ])), ] () $($($rest)*)?)
    };
    ([ $($done:expr,)* ] () $key:literal : null $(, $($rest:tt)*)?) => {
        $crate::json_object_internal!(
            [ $($done,)* (($key).to_string(), $crate::Value::Null), ] () $($($rest)*)?)
    };
    ([ $($done:expr,)* ] () $key:literal : $value:expr , $($rest:tt)*) => {
        $crate::json_object_internal!(
            [ $($done,)* (($key).to_string(), $crate::ToJson::to_json(&$value)), ] () $($rest)*)
    };
    ([ $($done:expr,)* ] () $key:literal : $value:expr) => {
        $crate::json_object_internal!(
            [ $($done,)* (($key).to_string(), $crate::ToJson::to_json(&$value)), ] ())
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_and_nesting() {
        let rows = vec![1u64, 2, 3];
        let v = json!({
            "a": 1,
            "b": [1, 2.5, "x", null, { "inner": true }],
            "c": { "d": rows, "e": "s" },
            "f": null,
        });
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"a":1,"b":[1,2.5,"x",null,{"inner":true}],"c":{"d":[1,2,3],"e":"s"},"f":null}"#
        );
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = json!({ "k": [1] });
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"k\": [\n    1\n  ]\n}"
        );
    }

    #[test]
    fn top_level_array_of_pairs() {
        let (y, x) = (2014u16, 2.9f64);
        let v = json!([y, x]);
        assert_eq!(to_string(&v).unwrap(), "[2014,2.9]");
    }

    #[test]
    fn expressions_as_values() {
        let name = String::from("AIC");
        let opt: Option<u32> = None;
        let v = json!({ "n": name.clone(), "m": 1 + 2, "o": opt });
        assert_eq!(v.get("n").unwrap().as_str(), Some("AIC"));
        assert_eq!(v.get("m").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("o"), Some(&Value::Null));
    }

    #[test]
    fn float_formatting_keeps_tokens_distinct() {
        assert_eq!(to_string(&json!(2.0)).unwrap(), "2.0");
        assert_eq!(to_string(&json!(f64::NAN)).unwrap(), "null");
        assert_eq!(to_string(&json!(1e300)).unwrap(), "1e300");
    }

    #[test]
    fn string_escaping() {
        let v = json!({ "s": "a\"b\\c\nd" });
        assert_eq!(to_string(&v).unwrap(), r#"{"s":"a\"b\\c\nd"}"#);
    }
}
